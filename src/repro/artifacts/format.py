"""The ``pigeon-model/1`` binary container: header, digest, mmapped sections.

A model artifact is a single file::

    pigeon-model/1\\n                   <- 15 magic bytes
    <8-byte little-endian header size>
    <header: digest-stamped compact JSON>
    <zero padding to a 64-byte boundary>
    <sections: 64-byte-aligned numpy-ready byte ranges>

The **header** carries the format tag, the saved pipeline's
:class:`~repro.api.spec.RunSpec`, the learner name, per-learner ``meta``
(scalars like the CRF ``label_base``), optional prune provenance, a
section table (name, dtype, shape, offset, nbytes -- offsets relative to
the payload region), and two blake2b digests: ``payload_digest`` over
the whole section region, and the header's own stamp as its last key
(the same convention as :func:`repro.resilience.atomicio.stamped_json_bytes`).

**Opening is O(header)**: :meth:`ModelArtifact.open` reads the magic and
the header, verifies the header stamp, checks the file size against the
section table (a torn ``write`` is caught without hashing megabytes of
weights), then mmaps the file.  Sections come back as zero-copy numpy
views over the mapping -- N serving processes on one box share one copy
of the weights through the OS page cache.  :meth:`ModelArtifact.verify`
(``pigeon model verify``) additionally hashes the payload region against
``payload_digest``.

Integrity failures raise the stack's structured
:class:`~repro.resilience.atomicio.CorruptArtifactError`, never a
format-specific traceback.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..resilience.atomicio import (
    DIGEST_KEY,
    CorruptArtifactError,
    artifact_digest,
    atomic_write_bytes,
)

#: On-disk format tag.  Bump when the header or section layout changes;
#: readers refuse other versions with a clear error.
MODEL_FORMAT = "pigeon-model/1"

#: First bytes of every binary model artifact (the sniffing key).
MODEL_MAGIC = (MODEL_FORMAT + "\n").encode("ascii")

#: Section alignment: every section (and the payload region itself)
#: starts on a 64-byte boundary, so any dtype's views are aligned and
#: section starts never straddle cache lines.
ALIGN = 64

_HEADER_SIZE_STRUCT = struct.Struct("<Q")


def _aligned(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def is_model_artifact(path: str) -> bool:
    """Whether ``path`` starts with the ``pigeon-model/1`` magic bytes."""
    try:
        with open(os.fspath(path), "rb") as handle:
            return handle.read(len(MODEL_MAGIC)) == MODEL_MAGIC
    except OSError:
        return False


def sniff_format(path: str) -> str:
    """``"binary"`` for a ``pigeon-model/1`` file, else ``"json"``."""
    return "binary" if is_model_artifact(path) else "json"


class ArtifactWriter:
    """Accumulates named numpy sections and writes one artifact atomically.

    Sections keep insertion order; strings and other non-numeric state
    belong in ``meta`` (they ride in the header) or in packed
    blob+offsets array pairs.
    """

    def __init__(
        self,
        spec: Dict[str, Any],
        learner: str,
        meta: Optional[Dict[str, Any]] = None,
        prune: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.spec = spec
        self.learner = learner
        self.meta = dict(meta or {})
        self.prune = prune
        self._sections: List[Tuple[str, np.ndarray]] = []
        self._names: set = set()

    def add(self, name: str, array: np.ndarray) -> None:
        """Add one named section (C-contiguous; dtype/shape ride along)."""
        if name in self._names:
            raise ValueError(f"duplicate artifact section {name!r}")
        self._names.add(name)
        self._sections.append((name, np.ascontiguousarray(array)))

    def tobytes(self) -> bytes:
        """The complete artifact file image."""
        table: List[Dict[str, Any]] = []
        payload = bytearray()
        for name, array in self._sections:
            offset = _aligned(len(payload))
            payload.extend(b"\x00" * (offset - len(payload)))
            data = array.tobytes()
            table.append(
                {
                    "name": name,
                    "dtype": array.dtype.str,
                    "shape": list(array.shape),
                    "offset": offset,
                    "nbytes": len(data),
                }
            )
            payload.extend(data)
        header = {
            "format": MODEL_FORMAT,
            "spec": self.spec,
            "learner": self.learner,
            "meta": self.meta,
            "prune": self.prune,
            "sections": table,
            "payload_digest": artifact_digest(bytes(payload)),
        }
        body = json.dumps(header, separators=(",", ":"))
        stamp = artifact_digest(body.encode("utf-8"))
        header_bytes = f'{body[:-1]},"{DIGEST_KEY}":"{stamp}"}}'.encode("utf-8")
        prefix = len(MODEL_MAGIC) + _HEADER_SIZE_STRUCT.size + len(header_bytes)
        payload_start = _aligned(prefix)
        out = bytearray()
        out.extend(MODEL_MAGIC)
        out.extend(_HEADER_SIZE_STRUCT.pack(len(header_bytes)))
        out.extend(header_bytes)
        out.extend(b"\x00" * (payload_start - prefix))
        out.extend(payload)
        return bytes(out)

    def write(self, path: str) -> None:
        """Durably (atomically) write the artifact to ``path``."""
        atomic_write_bytes(os.fspath(path), self.tobytes())


class ModelArtifact:
    """One opened (mmapped) ``pigeon-model/1`` file with lazy section views."""

    def __init__(
        self, path: str, header: Dict[str, Any], mapping, payload_start: int
    ) -> None:
        self.path = path
        self.header = header
        self._map = mapping
        self._payload_start = payload_start
        self._table: Dict[str, Dict[str, Any]] = {
            entry["name"]: entry for entry in header.get("sections", ())
        }

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str, verify_payload: bool = False) -> "ModelArtifact":
        """Open and header-verify an artifact; mmap its payload.

        Cheap by design: the header stamp and the file-size check catch
        torn or truncated files without faulting in the weight pages.
        ``verify_payload=True`` additionally hashes the payload region
        (what ``pigeon model verify`` does).
        """
        path = os.fspath(path)
        hint = (
            "re-pack the artifact with 'pigeon model pack' (or re-save "
            "the pipeline) from a good model file"
        )
        with open(path, "rb") as handle:
            magic = handle.read(len(MODEL_MAGIC))
            if magic != MODEL_MAGIC:
                raise CorruptArtifactError(
                    path,
                    detail=f"not a {MODEL_FORMAT} artifact (bad magic)",
                    hint=hint,
                )
            size_bytes = handle.read(_HEADER_SIZE_STRUCT.size)
            if len(size_bytes) != _HEADER_SIZE_STRUCT.size:
                raise CorruptArtifactError(
                    path, detail="truncated before the header size", hint=hint
                )
            (header_size,) = _HEADER_SIZE_STRUCT.unpack(size_bytes)
            header_bytes = handle.read(header_size)
            if len(header_bytes) != header_size:
                raise CorruptArtifactError(
                    path, detail="truncated inside the header", hint=hint
                )
            header = cls._parse_header(path, header_bytes, hint)
            prefix = len(MODEL_MAGIC) + _HEADER_SIZE_STRUCT.size + header_size
            payload_start = _aligned(prefix)
            payload_size = 0
            for entry in header.get("sections", ()):
                payload_size = max(payload_size, entry["offset"] + entry["nbytes"])
            expected = payload_start + payload_size
            actual = os.fstat(handle.fileno()).st_size
            if actual < expected:
                raise CorruptArtifactError(
                    path,
                    detail=(
                        f"truncated payload ({actual} bytes on disk, section "
                        f"table needs {expected})"
                    ),
                    hint=hint,
                )
            if expected > 0:
                mapping = mmap.mmap(
                    handle.fileno(), expected, access=mmap.ACCESS_READ
                )
            else:  # pragma: no cover - zero-section artifact
                mapping = memoryview(b"")
        artifact = cls(path, header, mapping, payload_start)
        if verify_payload:
            artifact.verify()
        return artifact

    @staticmethod
    def _parse_header(path: str, header_bytes: bytes, hint: str) -> Dict[str, Any]:
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CorruptArtifactError(
                path, detail=f"header is not valid JSON ({error})", hint=hint
            ) from error
        if not isinstance(header, dict) or DIGEST_KEY not in header:
            raise CorruptArtifactError(
                path, detail="header is missing its integrity digest", hint=hint
            )
        expected = header.pop(DIGEST_KEY)
        body = json.dumps(header, separators=(",", ":"))
        actual = artifact_digest(body.encode("utf-8"))
        if actual != expected:
            raise CorruptArtifactError(
                path, expected=expected, actual=actual, hint=hint
            )
        fmt = header.get("format")
        if fmt != MODEL_FORMAT:
            raise CorruptArtifactError(
                path,
                detail=f"unknown model artifact format {fmt!r} (expected {MODEL_FORMAT!r})",
                hint="upgrade this installation, or re-pack the model with it",
            )
        return header

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def spec(self) -> Dict[str, Any]:
        return self.header["spec"]

    @property
    def learner(self) -> str:
        return self.header["learner"]

    @property
    def meta(self) -> Dict[str, Any]:
        return self.header.get("meta", {})

    @property
    def prune(self) -> Optional[Dict[str, Any]]:
        return self.header.get("prune")

    def section_names(self) -> List[str]:
        return [entry["name"] for entry in self.header.get("sections", ())]

    def array(self, name: str) -> np.ndarray:
        """Zero-copy numpy view of one section (backed by the mapping)."""
        entry = self._table.get(name)
        if entry is None:
            raise KeyError(
                f"artifact {self.path!r} has no section {name!r}; "
                f"sections: {self.section_names()}"
            )
        start = self._payload_start + entry["offset"]
        view = memoryview(self._map)[start : start + entry["nbytes"]]
        return np.frombuffer(view, dtype=np.dtype(entry["dtype"])).reshape(
            entry["shape"]
        )

    def string_table(self, name: str) -> Tuple[memoryview, np.ndarray]:
        """The ``(blob, offsets)`` pair behind a packed string section."""
        offsets = self.array(f"{name}/offsets")
        entry = self._table[f"{name}/blob"]
        start = self._payload_start + entry["offset"]
        blob = memoryview(self._map)[start : start + entry["nbytes"]]
        return blob, offsets

    def verify(self) -> None:
        """Hash the payload region against the header's ``payload_digest``."""
        payload_size = 0
        for entry in self.header.get("sections", ()):
            payload_size = max(payload_size, entry["offset"] + entry["nbytes"])
        view = memoryview(self._map)[
            self._payload_start : self._payload_start + payload_size
        ]
        actual = artifact_digest(bytes(view))
        expected = self.header.get("payload_digest")
        if actual != expected:
            raise CorruptArtifactError(
                self.path,
                expected=expected,
                actual=actual,
                hint="the weight sections are corrupt -- re-pack the artifact",
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelArtifact({self.path!r}, learner={self.learner!r}, "
            f"{len(self._table)} sections)"
        )


def pack_strings(values: List[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Encode a string list as ``(blob uint8, offsets int64)`` sections."""
    encoded = [value.encode("utf-8") for value in values]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(part) for part in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    return blob, offsets
