"""Learner state <-> artifact sections, plus the packed (read-only) models.

One codec per built-in learner turns the JSON-ready
``learner.state_dict()`` into numpy sections for
:class:`~repro.artifacts.format.ArtifactWriter`, and restores a loaded
:class:`~repro.artifacts.format.ModelArtifact` back onto a fresh
learner.  Restoring never rebuilds the dict-of-floats representation:

* the CRF learner gets a :class:`PackedCrfModel` whose weight planes are
  the artifact's sorted key/weight arrays (compiled at save time, scored
  through :meth:`CompiledCrfModel.from_buffers
  <repro.learning.crf.compiled.CompiledCrfModel.from_buffers>`), whose
  candidate index serves ``most_common`` prefixes straight from packed
  count arrays, and whose vocab is a
  :class:`~repro.core.interning.PackedVocab` over the mmapped string
  tables;
* the word2vec learner gets an :class:`~repro.learning.word2vec.SgnsModel`
  whose embedding matrices are zero-copy views of the mapping.

**Bit-identity** with the JSON path is the contract: candidate counters
are stored in ``most_common`` order (stable descending count -- so any
``most_common(n)`` prefix is exactly what ``Counter.most_common(n)``
returns, ties included), weights keep their exact float64 bits, and the
packed combined keys use the same ``row * label_base + label`` layout
the live compiler builds.

Packed models are **read-only**: training-path mutators raise with a
pointer at re-packing from a JSON model.  ``state_dict()`` still works
(``pigeon model pack`` can convert binary back to JSON), materializing
plain dicts on demand -- an offline operation, never the serving path.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.interning import FeatureSpace, PackedVocab
from .format import ArtifactWriter, ModelArtifact, pack_strings

#: Mirrors :data:`repro.learning.crf.compiled.UNARY_OTHER` without
#: importing the learning stack at module import time.
_UNARY_OTHER = -1

_READ_ONLY_HINT = (
    "binary-loaded (packed) models are read-only; re-train, or re-pack "
    "from a JSON model with 'pigeon model pack' to modify weights"
)


class PackedModelError(TypeError):
    """A training-path mutation reached a packed (read-only) model."""

    def __init__(self, operation: str) -> None:
        super().__init__(f"{operation}: {_READ_ONLY_HINT}")


# ----------------------------------------------------------------------
# Packed counter / index / weight views (CRF)
# ----------------------------------------------------------------------


class PackedCounts:
    """A read-only stand-in for a candidate ``Counter``.

    Items are stored in ``most_common`` order (count-descending, stable),
    so :meth:`most_common` is a slice -- identical output, ties included,
    to ``Counter.most_common`` over the original insertion order.
    """

    __slots__ = ("_ids", "_counts")

    def __init__(self, ids: np.ndarray, counts: np.ndarray) -> None:
        self._ids = ids
        self._counts = counts

    def most_common(self, n: Optional[int] = None) -> List[Tuple[int, int]]:
        if n is None:
            n = len(self._ids)
        return list(zip(self._ids[:n].tolist(), self._counts[:n].tolist()))

    def items(self) -> List[Tuple[int, int]]:
        return self.most_common()

    def values(self) -> List[int]:
        return self._counts.tolist()

    def __getitem__(self, label_id: int) -> int:
        matches = np.flatnonzero(self._ids == label_id)
        if not len(matches):
            raise KeyError(label_id)
        return int(self._counts[matches[0]])

    def __len__(self) -> int:
        return len(self._ids)

    def __bool__(self) -> bool:
        return len(self._ids) > 0

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids.tolist())


class PackedCandidateIndex:
    """``(rel, other) -> PackedCounts`` over flat packed arrays."""

    __slots__ = ("_row_of", "_offsets", "_labels", "_counts", "_cache")

    def __init__(
        self,
        contexts: np.ndarray,
        offsets: np.ndarray,
        labels: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        if contexts.ndim == 2:
            keys = map(tuple, contexts.tolist())
        else:
            keys = iter(contexts.tolist())
        self._row_of: Dict[Any, int] = {key: i for i, key in enumerate(keys)}
        self._offsets = offsets
        self._labels = labels
        self._counts = counts
        self._cache: Dict[int, PackedCounts] = {}

    def get(self, key) -> Optional[PackedCounts]:
        row = self._row_of.get(key)
        if row is None:
            return None
        cached = self._cache.get(row)
        if cached is None:
            start, end = int(self._offsets[row]), int(self._offsets[row + 1])
            cached = PackedCounts(self._labels[start:end], self._counts[start:end])
            self._cache[row] = cached
        return cached

    def __getitem__(self, key) -> PackedCounts:
        counter = self.get(key)
        if counter is None:
            raise KeyError(key)
        return counter

    def __contains__(self, key) -> bool:
        return key in self._row_of

    def __len__(self) -> int:
        return len(self._row_of)

    def __iter__(self):
        return iter(self._row_of)

    def keys(self):
        return self._row_of.keys()

    def items(self):
        return ((key, self.get(key)) for key in self._row_of)


class _PackedWeightView:
    """Read-only mapping over the packed ``(group, label)`` weight plane.

    Shares the sorted combined-key and weight arrays with the compiled
    scorer; lookups run one dict probe plus one binary search.  ``items``
    decodes keys back to tuples -- the path ``to_dict`` / ``top_features``
    take, never the scoring path.
    """

    __slots__ = ("_pack", "_unary", "_size")

    def __init__(self, pack: "_WeightPack", unary: bool) -> None:
        self._pack = pack
        self._unary = unary
        self._size: Optional[int] = None

    def _position(self, key) -> int:
        pack = self._pack
        if self._unary:
            label, rel = key
            group = (rel, _UNARY_OTHER)
        else:
            label, rel, other = key
            group = (rel, other)
        row = pack.group_of.get(group)
        if row is None:
            return -1
        combined = row * pack.label_base + label
        position = int(np.searchsorted(pack.keys, combined))
        if position < len(pack.keys) and int(pack.keys[position]) == combined:
            return position
        return -1

    def __contains__(self, key) -> bool:
        return self._position(key) >= 0

    def __getitem__(self, key) -> float:
        position = self._position(key)
        if position < 0:
            raise KeyError(key)
        return float(self._pack.weights[position])

    def get(self, key, default=None):
        position = self._position(key)
        return default if position < 0 else float(self._pack.weights[position])

    def _rows_mask(self) -> np.ndarray:
        pack = self._pack
        rows = pack.keys // pack.label_base
        unary_rows = pack.groups[rows, 1] == _UNARY_OTHER
        return unary_rows if self._unary else ~unary_rows

    def __len__(self) -> int:
        if self._size is None:
            self._size = (
                int(np.count_nonzero(self._rows_mask())) if len(self._pack.keys) else 0
            )
        return self._size

    def items(self):
        pack = self._pack
        if not len(pack.keys):
            return
        mask = self._rows_mask()
        for position in np.flatnonzero(mask).tolist():
            combined = int(pack.keys[position])
            label = combined % pack.label_base
            rel, other = pack.groups[combined // pack.label_base]
            weight = float(pack.weights[position])
            if self._unary:
                yield (label, int(rel)), weight
            else:
                yield (label, int(rel), int(other)), weight

    def keys(self):
        return (key for key, _weight in self.items())

    def __iter__(self):
        return self.keys()

    def __setitem__(self, key, value):
        raise PackedModelError("assigning a packed weight")


class _WeightPack:
    """The shared packed weight plane (groups, sorted keys, weights)."""

    __slots__ = ("groups", "group_of", "keys", "weights", "label_base")

    def __init__(
        self, groups: np.ndarray, keys: np.ndarray, weights: np.ndarray, label_base: int
    ) -> None:
        self.groups = groups
        self.keys = keys
        self.weights = weights
        self.label_base = int(label_base)
        rows = groups.tolist()
        self.group_of: Dict[Tuple[int, int], int] = {
            (rel, other): i for i, (rel, other) in enumerate(rows)
        }


# ----------------------------------------------------------------------
# The packed CRF model
# ----------------------------------------------------------------------


def _packed_crf_model(artifact: ModelArtifact):
    """Build a :class:`PackedCrfModel` from one opened artifact."""
    from ..learning.crf.model import CrfModel

    meta = artifact.meta
    space = FeatureSpace(
        PackedVocab(*artifact.string_table("space/paths")),
        PackedVocab(*artifact.string_table("space/values")),
    )
    pack = _WeightPack(
        artifact.array("crf/groups"),
        artifact.array("crf/keys"),
        artifact.array("crf/weights"),
        meta["label_base"],
    )

    class PackedCrfModel(CrfModel):
        """A :class:`CrfModel` whose state are views over one artifact.

        Scoring, candidate generation and the string APIs behave exactly
        like the dict-backed model (the scalar engine resolves weights
        through binary search; the compiled engine reuses the packed
        plane directly via :meth:`compile`).  Mutation raises.
        """

        def compile(self):
            from ..learning.crf.compiled import CompiledCrfModel

            compiled = self._compiled_view
            if compiled is None:
                compiled = CompiledCrfModel.from_buffers(
                    self, pack.group_of, pack.keys, pack.weights, pack.label_base
                )
                self._compiled_view = compiled
            return compiled

        def observe_training_node(self, node, graph):
            raise PackedModelError("observing a training node")

        def add_pair(self, key, delta):
            raise PackedModelError("updating a pair weight")

        def add_unary(self, key, delta):
            raise PackedModelError("updating a unary weight")

        def l2_decay(self, factor):
            raise PackedModelError("decaying weights")

    model = PackedCrfModel(use_unary=bool(meta["use_unary"]), space=space)
    model._compiled_view = None
    model.pair_weights = _PackedWeightView(pack, unary=False)
    model.unary_weights = _PackedWeightView(pack, unary=True)
    model.candidate_index = PackedCandidateIndex(
        artifact.array("crf/cand_ctx"),
        artifact.array("crf/cand_off"),
        artifact.array("crf/cand_labels"),
        artifact.array("crf/cand_counts"),
    )
    model.unary_candidate_index = PackedCandidateIndex(
        artifact.array("crf/ucand_rel"),
        artifact.array("crf/ucand_off"),
        artifact.array("crf/ucand_labels"),
        artifact.array("crf/ucand_counts"),
    )
    model.label_counts = PackedCounts(
        artifact.array("crf/label_ids"), artifact.array("crf/label_freqs")
    )
    return model


def _most_common_order(items: List[List[int]]) -> List[Tuple[int, int]]:
    """Counter items re-ordered as ``most_common()`` would emit them.

    ``Counter.most_common`` is a stable descending sort over insertion
    order, so sorting the stored (insertion-ordered) items stably by
    ``-count`` reproduces every ``most_common(n)`` prefix exactly.
    """
    return sorted(
        ((int(label), int(count)) for label, count in items),
        key=lambda pair: -pair[1],
    )


def _pack_counter_table(
    writer: ArtifactWriter, prefix: str, counters: List
) -> None:
    """Write a ``keys + offsets + (labels, counts)`` candidate table."""
    offsets = np.zeros(len(counters) + 1, dtype=np.int64)
    labels: List[int] = []
    counts: List[int] = []
    for i, items in enumerate(counters):
        ordered = _most_common_order(items)
        labels.extend(label for label, _count in ordered)
        counts.extend(count for _label, count in ordered)
        offsets[i + 1] = len(labels)
    writer.add(f"{prefix}_off", offsets)
    writer.add(f"{prefix}_labels", np.asarray(labels, dtype=np.int32))
    writer.add(f"{prefix}_counts", np.asarray(counts, dtype=np.int32))


def _add_string_table(writer: ArtifactWriter, name: str, values: List[str]) -> None:
    blob, offsets = pack_strings([str(value) for value in values])
    writer.add(f"{name}/blob", blob)
    writer.add(f"{name}/offsets", offsets)


# ----------------------------------------------------------------------
# CRF codec
# ----------------------------------------------------------------------


def _pack_crf_state(writer: ArtifactWriter, state: Dict[str, Any]) -> None:
    model = state["model"]
    space = model.get("space", {})
    paths = list(space.get("paths", ()))
    values = list(space.get("values", ()))
    _add_string_table(writer, "space/paths", paths)
    _add_string_table(writer, "space/values", values)

    # Pack the weight planes exactly like the live compiler: group rows
    # assigned first-seen over pair then unary entries, one sorted
    # combined-key array over the (group, label) plane.
    label_base = max(1, len(values))
    group_of: Dict[Tuple[int, int], int] = {}
    combined: List[int] = []
    weights: List[float] = []
    for label, rel, other, weight in model.get("pair_weights", ()):
        row = group_of.setdefault((int(rel), int(other)), len(group_of))
        combined.append(row * label_base + int(label))
        weights.append(float(weight))
    for label, rel, weight in model.get("unary_weights", ()):
        row = group_of.setdefault((int(rel), _UNARY_OTHER), len(group_of))
        combined.append(row * label_base + int(label))
        weights.append(float(weight))
    order = np.argsort(np.asarray(combined, dtype=np.int64), kind="stable")
    groups = np.asarray(list(group_of), dtype=np.int32).reshape(len(group_of), 2)
    writer.add("crf/groups", groups)
    keys = np.asarray(combined, dtype=np.int64)[order]
    # Keys narrow to int32 whenever the (group, label) plane fits; the
    # readers are dtype-driven (the section table records what was
    # written), so narrowing is pure size win.  Weights stay float64 --
    # the bit-identity contract -- except in *pruned* artifacts, which
    # trade exactness for size under the recorded accuracy budget.
    if len(keys) and int(keys[-1]) < 2**31:
        keys = keys.astype(np.int32)
    writer.add("crf/keys", keys)
    weight_dtype = np.float32 if writer.prune is not None else np.float64
    writer.add("crf/weights", np.asarray(weights, dtype=np.float64)[order].astype(weight_dtype))
    writer.meta["weight_dtype"] = np.dtype(weight_dtype).name

    cand = model.get("candidate_index", ())
    writer.add(
        "crf/cand_ctx",
        np.asarray(
            [[int(rel), int(other)] for rel, other, _items in cand], dtype=np.int32
        ).reshape(len(cand), 2),
    )
    _pack_counter_table(writer, "crf/cand", [items for _rel, _other, items in cand])
    ucand = model.get("unary_candidate_index", ())
    writer.add(
        "crf/ucand_rel", np.asarray([int(rel) for rel, _items in ucand], dtype=np.int32)
    )
    _pack_counter_table(writer, "crf/ucand", [items for _rel, items in ucand])

    label_counts = _most_common_order(model.get("label_counts", ()))
    writer.add(
        "crf/label_ids",
        np.asarray([label for label, _count in label_counts], dtype=np.int32),
    )
    writer.add(
        "crf/label_freqs",
        np.asarray([count for _label, count in label_counts], dtype=np.int32),
    )
    writer.meta.update(
        {
            "label_base": label_base,
            "use_unary": bool(model.get("use_unary", True)),
            "paths": len(paths),
            "values": len(values),
            "pair_weights": len(model.get("pair_weights", ())),
            "unary_weights": len(model.get("unary_weights", ())),
            "contexts": len(cand),
        }
    )


def _restore_crf(learner, artifact: ModelArtifact) -> None:
    learner.model = _packed_crf_model(artifact)
    learner._compiled = None


# ----------------------------------------------------------------------
# word2vec codec
# ----------------------------------------------------------------------


def _pack_word2vec_state(writer: ArtifactWriter, state: Dict[str, Any]) -> None:
    words = [str(token) for token in state["words"]]
    _add_string_table(writer, "w2v/words", words)
    writer.add(
        "w2v/word_counts", np.asarray(state["word_counts"], dtype=np.int64)
    )
    contexts = state["contexts"]
    pairs = [token for token in contexts if isinstance(token, (list, tuple))]
    if len(pairs) == len(contexts):
        context_kind = "pairs"
        writer.add(
            "w2v/context_pairs",
            np.asarray([[int(a), int(b)] for a, b in contexts], dtype=np.int64).reshape(
                len(contexts), 2
            ),
        )
    elif pairs:
        raise ValueError(
            "cannot pack a word2vec model mixing interned and string "
            "context tokens"
        )
    else:
        context_kind = "strings"
        _add_string_table(writer, "w2v/context_strings", [str(t) for t in contexts])
    writer.add(
        "w2v/context_counts", np.asarray(state["context_counts"], dtype=np.int64)
    )
    dim = int(state["dim"])
    writer.add(
        "w2v/word_vectors",
        np.asarray(state["word_vectors"], dtype=np.float64).reshape(len(words), dim),
    )
    writer.add(
        "w2v/context_vectors",
        np.asarray(state["context_vectors"], dtype=np.float64).reshape(
            len(contexts), dim
        ),
    )
    space = state.get("space")
    if space is not None:
        _add_string_table(writer, "space/paths", list(space.get("paths", ())))
        _add_string_table(writer, "space/values", list(space.get("values", ())))
    writer.meta.update(
        {
            "dim": dim,
            "context_kind": context_kind,
            "has_space": space is not None,
            "words": len(words),
            "contexts": len(contexts),
        }
    )


def _restore_word2vec(learner, artifact: ModelArtifact) -> None:
    from ..learning.word2vec import ContextPredictor, SgnsModel
    from ..learning.word2vec.vocab import Vocabulary

    meta = artifact.meta
    words = Vocabulary()
    word_blob, word_offsets = artifact.string_table("w2v/words")
    word_table = PackedVocab(word_blob, word_offsets)
    for token_id, count in enumerate(artifact.array("w2v/word_counts").tolist()):
        words._add(word_table.value(token_id), count)
    contexts = Vocabulary()
    context_counts = artifact.array("w2v/context_counts").tolist()
    if meta["context_kind"] == "pairs":
        tokens = [tuple(pair) for pair in artifact.array("w2v/context_pairs").tolist()]
    else:
        table = PackedVocab(*artifact.string_table("w2v/context_strings"))
        tokens = table.to_list()
    for token, count in zip(tokens, context_counts):
        contexts._add(token, count)
    dim = int(meta["dim"])
    model = SgnsModel(
        words,
        contexts,
        artifact.array("w2v/word_vectors").reshape(len(words), dim),
        artifact.array("w2v/context_vectors").reshape(len(contexts), dim),
    )
    learner.predictor = ContextPredictor(model)
    space = None
    if meta.get("has_space"):
        space = FeatureSpace(
            PackedVocab(*artifact.string_table("space/paths")),
            PackedVocab(*artifact.string_table("space/values")),
        )
    learner.bind_space(space)


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

_PACKERS = {"crf": _pack_crf_state, "word2vec": _pack_word2vec_state}
_RESTORERS = {"crf": _restore_crf, "word2vec": _restore_word2vec}


def pack_learner_state(
    writer: ArtifactWriter, learner: str, state: Dict[str, Any]
) -> None:
    """Serialize one learner's ``state_dict()`` into artifact sections."""
    packer = _PACKERS.get(learner)
    if packer is None:
        raise ValueError(
            f"the binary model format supports learners "
            f"{sorted(_PACKERS)}; {learner!r} models must stay JSON"
        )
    packer(writer, state)


def restore_learner(learner, artifact: ModelArtifact) -> None:
    """Adopt an artifact's packed state onto a freshly built learner."""
    restorer = _RESTORERS.get(artifact.learner)
    if restorer is None:
        raise ValueError(
            f"artifact {artifact.path!r} was packed for unsupported "
            f"learner {artifact.learner!r}"
        )
    restorer(learner, artifact)
