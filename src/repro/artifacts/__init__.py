"""Memory-mappable binary model artifacts (``pigeon-model/1``).

Architecture
------------

Saved pipelines historically had one on-disk shape: a digest-stamped
JSON file (``pigeon-pipeline/2``) holding the :class:`~repro.api.spec.RunSpec`
plus the learner's ``state_dict()``.  That format stays the writable
default -- it is human-inspectable, diffable, and the only format the
trainer emits without being asked.  But JSON is the wrong shape for a
replica fleet: every serving process re-parses the whole file and
rebuilds dict-of-float weight tables, paying N x cold-start latency and
N x resident weight memory per box.

This package adds the complementary read-optimized shape, split into
three layers:

:mod:`repro.artifacts.format`
    the ``pigeon-model/1`` container: magic + digest-stamped JSON header
    + 64-byte-aligned numpy sections.  Opening verifies the header stamp
    and section table (torn files raise
    :class:`~repro.resilience.atomicio.CorruptArtifactError`), then
    mmaps the file; sections are zero-copy numpy views, so N processes
    mapping one artifact share one copy of the weights through the OS
    page cache and cold-start is O(header), not O(weights).
:mod:`repro.artifacts.codec`
    per-learner packing (state dict -> sections) and restoring
    (sections -> a *packed*, read-only model).  The packed CRF model
    scores through the same vectorised engine as the live model --
    :meth:`CompiledCrfModel.from_buffers
    <repro.learning.crf.compiled.CompiledCrfModel.from_buffers>` adopts
    the mmapped planes without copying -- and its vocab tables are
    :class:`~repro.core.interning.PackedVocab` lazy views.  Unpruned
    artifacts predict **bit-identically** to their JSON twins.
:mod:`repro.artifacts.prune`
    the offline pruning pass: drop relations below a corpus-frequency
    floor, re-pack the vocab densely, and record provenance (floor,
    before/after sizes, declared accuracy-delta budget) in the header.

Entry points: ``Pipeline.save(path, format="binary")`` /
``Pipeline.load`` (which sniffs the format), and the ``pigeon model``
CLI group (``pack`` / ``info`` / ``verify``).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from .codec import PackedModelError, pack_learner_state, restore_learner
from .format import (
    MODEL_FORMAT,
    MODEL_MAGIC,
    ArtifactWriter,
    ModelArtifact,
    is_model_artifact,
    sniff_format,
)
from .prune import DEFAULT_ACCURACY_DELTA_BUDGET, prune_state

__all__ = [
    "MODEL_FORMAT",
    "MODEL_MAGIC",
    "ArtifactWriter",
    "ModelArtifact",
    "PackedModelError",
    "DEFAULT_ACCURACY_DELTA_BUDGET",
    "artifact_info",
    "is_model_artifact",
    "pack_learner_state",
    "pack_model",
    "prune_state",
    "restore_learner",
    "sniff_format",
    "write_state_artifact",
]


def write_state_artifact(
    path: str,
    spec_dict: Dict[str, Any],
    learner_name: str,
    state: Dict[str, Any],
    prune: Optional[Dict[str, Any]] = None,
) -> None:
    """Pack one learner state dict into a binary artifact at ``path``."""
    writer = ArtifactWriter(spec_dict, learner_name, prune=prune)
    pack_learner_state(writer, learner_name, state)
    writer.write(path)


def pack_model(
    source: str,
    dest: str,
    format: str = "binary",
    prune_min_count: Optional[int] = None,
    accuracy_delta_budget: Optional[float] = None,
) -> Dict[str, Any]:
    """Re-pack a saved model (either format) into ``dest``.

    ``pigeon model pack`` in library form: loads ``source`` through
    :meth:`Pipeline.load <repro.api.pipeline.Pipeline.load>` (so JSON
    and binary inputs both work), optionally prunes, and writes the
    requested output format.  Returns a summary dict (formats, sizes,
    prune provenance).
    """
    from ..api.pipeline import PIPELINE_FORMAT, Pipeline
    from ..resilience.atomicio import atomic_write_bytes, stamped_json_bytes

    if format not in ("binary", "json"):
        raise ValueError(f"unknown artifact format {format!r} (binary or json)")
    pipeline = Pipeline.load(source)
    learner_name = pipeline.spec.learner
    state = pipeline.learner.state_dict()
    provenance = None
    if prune_min_count is not None:
        state, provenance = prune_state(
            learner_name, state, prune_min_count, accuracy_delta_budget
        )
    if format == "binary":
        write_state_artifact(
            dest, pipeline.spec.to_dict(), learner_name, state, prune=provenance
        )
    else:
        payload = {
            "format": PIPELINE_FORMAT,
            "spec": pipeline.spec.to_dict(),
            "learner_state": state,
        }
        if provenance is not None:
            payload["prune"] = provenance
        atomic_write_bytes(os.fspath(dest), stamped_json_bytes(payload))
    return {
        "source": os.fspath(source),
        "dest": os.fspath(dest),
        "source_format": sniff_format(source),
        "dest_format": format,
        "cell": pipeline.spec.cell(),
        "source_bytes": os.path.getsize(source),
        "dest_bytes": os.path.getsize(dest),
        "prune": provenance,
    }


def artifact_info(path: str) -> Dict[str, Any]:
    """Header-level summary of a saved model in either format."""
    path = os.fspath(path)
    if is_model_artifact(path):
        artifact = ModelArtifact.open(path)
        sections = [
            {
                "name": entry["name"],
                "dtype": entry["dtype"],
                "shape": entry["shape"],
                "nbytes": entry["nbytes"],
            }
            for entry in artifact.header.get("sections", ())
        ]
        return {
            "path": path,
            "kind": "binary",
            "format": MODEL_FORMAT,
            "learner": artifact.learner,
            "spec": artifact.spec,
            "meta": artifact.meta,
            "prune": artifact.prune,
            "sections": sections,
            "payload_bytes": sum(entry["nbytes"] for entry in sections),
            "file_bytes": os.path.getsize(path),
        }
    from ..resilience.atomicio import read_stamped_json

    payload = read_stamped_json(
        path, hint="the saved model is torn -- retrain or restore a backup"
    )
    spec = payload.get("spec", {}) if isinstance(payload, dict) else {}
    return {
        "path": path,
        "kind": "json",
        "format": payload.get("format") if isinstance(payload, dict) else None,
        "learner": spec.get("learner"),
        "spec": spec,
        "prune": payload.get("prune") if isinstance(payload, dict) else None,
        "sections": [],
        "payload_bytes": os.path.getsize(path),
        "file_bytes": os.path.getsize(path),
    }
