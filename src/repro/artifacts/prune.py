"""Offline model pruning: corpus-frequency floors + dense vocab re-pack.

Operates on the plain ``learner.state_dict()`` JSON state (never on live
models), so pruning composes with both output formats: prune-then-pack
for binary artifacts, prune-then-save for JSON.

The floor is a **relation observation count**: a relation (abstract path
id) observed fewer than ``min_rel_count`` times across the training
corpus -- summed over its candidate-index entries, the model's record of
every training observation -- is dropped, along with every weight,
candidate entry and (for word2vec) context column keyed by it.  Rare
relations carry little evidence and most of the long tail of the weight
planes; dropping them shrinks artifacts far more than it moves accuracy.

After filtering, the vocabularies re-pack **densely**: only ids still
referenced survive, remapped in ascending old-id order (the same remap
discipline as ``shards/merge.py``).  Preserving relative order keeps
every retained string's position stable with respect to the others, so
candidate tie-breaks (ranked by label *string*) are unaffected by the
remap itself -- any accuracy delta comes from the dropped evidence, not
from id shuffling.

The caller records the declared ``accuracy_delta_budget`` in the
returned provenance (and thus in the artifact header);
``benchmarks/bench_artifacts.py`` measures the actual delta against it.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default declared ceiling on the pruned model's accuracy drop
#: (absolute fraction of held-out predictions allowed to change for the
#: worse).  Recorded in the artifact header; benchmarks gate against it.
DEFAULT_ACCURACY_DELTA_BUDGET = 0.05


def _remap(ids: Sequence[int], strings: List[str]) -> Tuple[Dict[int, int], List[str]]:
    """Dense old-id -> new-id map over ``ids``, ascending old-id order."""
    kept = sorted(set(int(i) for i in ids))
    return {old: new for new, old in enumerate(kept)}, [strings[old] for old in kept]


def _prune_crf(
    state: Dict[str, Any], min_rel_count: int, budget: float
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    model = state["model"]
    space = model.get("space", {})
    old_paths: List[str] = list(space.get("paths", ()))
    old_values: List[str] = list(space.get("values", ()))

    rel_counts: Counter = Counter()
    for rel, _other, items in model.get("candidate_index", ()):
        rel_counts[int(rel)] += sum(int(count) for _label, count in items)
    for rel, items in model.get("unary_candidate_index", ()):
        rel_counts[int(rel)] += sum(int(count) for _label, count in items)
    kept_rels = {rel for rel, count in rel_counts.items() if count >= min_rel_count}

    pair = [
        entry for entry in model.get("pair_weights", ()) if int(entry[1]) in kept_rels
    ]
    unary = [
        entry for entry in model.get("unary_weights", ()) if int(entry[1]) in kept_rels
    ]
    cand = [
        entry
        for entry in model.get("candidate_index", ())
        if int(entry[0]) in kept_rels
    ]
    ucand = [
        entry
        for entry in model.get("unary_candidate_index", ())
        if int(entry[0]) in kept_rels
    ]
    label_counts = model.get("label_counts", ())

    used_paths: set = set()
    used_values: set = set()
    for label, rel, other, _weight in pair:
        used_paths.add(int(rel))
        used_values.add(int(label))
        used_values.add(int(other))
    for label, rel, _weight in unary:
        used_paths.add(int(rel))
        used_values.add(int(label))
    for rel, other, items in cand:
        used_paths.add(int(rel))
        used_values.add(int(other))
        used_values.update(int(label) for label, _count in items)
    for rel, items in ucand:
        used_paths.add(int(rel))
        used_values.update(int(label) for label, _count in items)
    # The global label frequencies survive pruning in full: they are the
    # candidate fallback for nodes whose every context was pruned away.
    used_values.update(int(label) for label, _count in label_counts)

    path_map, new_paths = _remap(used_paths, old_paths)
    value_map, new_values = _remap(used_values, old_values)

    pruned_model = {
        "space": {"paths": new_paths, "values": new_values},
        "pair_weights": [
            [value_map[int(l)], path_map[int(r)], value_map[int(o)], w]
            for l, r, o, w in pair
        ],
        "unary_weights": [
            [value_map[int(l)], path_map[int(r)], w] for l, r, w in unary
        ],
        "candidate_index": [
            [
                path_map[int(r)],
                value_map[int(o)],
                [[value_map[int(l)], int(c)] for l, c in items],
            ]
            for r, o, items in cand
        ],
        "unary_candidate_index": [
            [path_map[int(r)], [[value_map[int(l)], int(c)] for l, c in items]]
            for r, items in ucand
        ],
        "label_counts": [
            [value_map[int(l)], int(c)] for l, c in label_counts
        ],
        "use_unary": model.get("use_unary", True),
    }
    provenance = {
        "min_rel_count": int(min_rel_count),
        "accuracy_delta_budget": float(budget),
        "pair_weights": {
            "before": len(model.get("pair_weights", ())),
            "after": len(pair),
        },
        "unary_weights": {
            "before": len(model.get("unary_weights", ())),
            "after": len(unary),
        },
        "contexts": {
            "before": len(model.get("candidate_index", ()))
            + len(model.get("unary_candidate_index", ())),
            "after": len(cand) + len(ucand),
        },
        "paths": {"before": len(old_paths), "after": len(new_paths)},
        "values": {"before": len(old_values), "after": len(new_values)},
    }
    return {"model": pruned_model}, provenance


def _prune_word2vec(
    state: Dict[str, Any], min_rel_count: int, budget: float
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    contexts = state["contexts"]
    if any(not isinstance(token, (list, tuple)) for token in contexts):
        raise ValueError(
            "pruning a word2vec model requires interned (rel, value) "
            "context pairs; string-token contexts carry no relation ids "
            "to threshold"
        )
    space = state.get("space")
    if space is None:
        raise ValueError(
            "pruning a word2vec model requires its feature space (the "
            "model was saved without one)"
        )
    context_counts = [int(count) for count in state["context_counts"]]

    rel_counts: Counter = Counter()
    for (rel, _value), count in zip(contexts, context_counts):
        rel_counts[int(rel)] += count
    kept_rows = [
        i
        for i, (rel, _value) in enumerate(contexts)
        if rel_counts[int(rel)] >= min_rel_count
    ]

    used_paths = {int(contexts[i][0]) for i in kept_rows}
    used_values = {int(contexts[i][1]) for i in kept_rows}
    old_paths = list(space.get("paths", ()))
    old_values = list(space.get("values", ()))
    path_map, new_paths = _remap(used_paths, old_paths)
    value_map, new_values = _remap(used_values, old_values)

    context_vectors = state["context_vectors"]
    pruned = dict(state)
    pruned["contexts"] = [
        [path_map[int(contexts[i][0])], value_map[int(contexts[i][1])]]
        for i in kept_rows
    ]
    pruned["context_counts"] = [context_counts[i] for i in kept_rows]
    pruned["context_vectors"] = [context_vectors[i] for i in kept_rows]
    pruned["space"] = {"paths": new_paths, "values": new_values}
    provenance = {
        "min_rel_count": int(min_rel_count),
        "accuracy_delta_budget": float(budget),
        "contexts": {"before": len(contexts), "after": len(kept_rows)},
        "paths": {"before": len(old_paths), "after": len(new_paths)},
        "values": {"before": len(old_values), "after": len(new_values)},
    }
    return pruned, provenance


_PRUNERS = {"crf": _prune_crf, "word2vec": _prune_word2vec}


def prune_state(
    learner: str,
    state: Dict[str, Any],
    min_rel_count: int,
    accuracy_delta_budget: Optional[float] = None,
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Prune one learner state; returns ``(pruned_state, provenance)``.

    ``provenance`` records the floor, the declared accuracy-delta budget
    and before/after sizes; it rides in the artifact header so a loaded
    model knows how (and how much) it was pruned.
    """
    pruner = _PRUNERS.get(learner)
    if pruner is None:
        raise ValueError(f"pruning is not supported for learner {learner!r}")
    if min_rel_count < 1:
        raise ValueError("min_rel_count must be >= 1")
    budget = (
        DEFAULT_ACCURACY_DELTA_BUDGET
        if accuracy_delta_budget is None
        else float(accuracy_delta_budget)
    )
    return pruner(state, int(min_rel_count), budget)
