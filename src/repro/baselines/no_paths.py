"""The "no-paths" baseline (Sec. 5.3).

Same CRF, same nodes, but every relation collapses to a single symbol:
the model sees *which* identifiers are near an element but not *how* they
are syntactically related -- a "bag of near identifiers".  Implemented by
running the standard variable-naming graph builder under the ``no-path``
abstraction.
"""

from __future__ import annotations

from ..core.ast_model import Ast
from ..core.extraction import ExtractionConfig, PathExtractor
from ..learning.crf.graph import CrfGraph
from ..tasks.variable_naming import build_crf_graph


def no_paths_extractor(
    max_length: int = 7, max_width: int = 3, space=None, **overrides
) -> PathExtractor:
    """An extractor whose abstraction hides the path entirely."""
    return PathExtractor(
        ExtractionConfig(
            max_length=max_length,
            max_width=max_width,
            abstraction="no-path",
            **overrides,
        ),
        space=space,
    )


def build_no_paths_graph(ast: Ast, name: str = "", max_length: int = 7, max_width: int = 3) -> CrfGraph:
    """Variable-naming graph under the no-paths abstraction."""
    return build_crf_graph(ast, no_paths_extractor(max_length, max_width), name)
