"""UnuglifyJS-style hand-crafted relations (Raychev et al. [40]).

The original system derives relations between identifiers from an
explicit grammar; crucially, "the possible relationships span only a
single statement, and do not include relationships that involve
conditional statements or loops" (Sec. 6 of the paper).  We reproduce
exactly that: identifiers related within one statement's expression
subtree, with the relation being the syntactic path *inside that
statement*; nothing crosses a control-flow boundary.

This reproduces the paper's Fig. 3: the flag-loop program and its
straight-line shuffling produce identical relation sets here, while AST
paths distinguish them.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..core.ast_model import Ast, Node
from ..core.paths import path_between
from ..core.abstractions import alpha_id
from ..learning.crf.graph import CrfGraph
from ..tasks.variable_naming import RENAMEABLE_KINDS, element_groups

#: Node kinds that delimit statements / control flow.  Relations never
#: cross these boundaries.
_CONTROL_KINDS = frozenset(
    {
        # JavaScript
        "Toplevel", "Defun", "Function", "While", "Do", "For", "ForIn", "If",
        "Else", "Block", "Try", "TryBody", "Catch", "Finally",
        # Java
        "CompilationUnit", "ClassDeclaration", "InterfaceDeclaration",
        "MethodDeclaration", "ConstructorDeclaration", "WhileStmt", "DoStmt",
        "ForStmt", "ForeachStmt", "IfStmt", "ElseStmt", "BlockStmt", "TryStmt",
        "TryBody", "CatchClause", "FinallyBlock",
        # Python
        "Module", "FunctionDef", "ClassDef", "While2", "If2",
        # C#
        "NamespaceDeclaration", "Block", "WhileStatement", "DoStatement",
        "ForStatement", "ForEachStatement", "IfStatement", "ElseClause",
        "TryStatement",
    }
)


def _statement_roots(root: Node) -> Iterator[Node]:
    """Maximal expression subtrees that do not contain control flow.

    These are the "single statements" whose internal structure the
    hand-crafted grammar can see.
    """
    for node in root.walk():
        if node.kind in _CONTROL_KINDS:
            continue
        parent = node.parent
        if parent is None or parent.kind in _CONTROL_KINDS:
            yield node


def _identifier_leaves(statement: Node) -> List[Node]:
    out = []
    stack = [statement]
    while stack:
        node = stack.pop()
        if node.kind in _CONTROL_KINDS and node is not statement:
            continue  # nested control flow (e.g. a function expression)
        if node.is_terminal and node.value is not None:
            out.append(node)
        stack.extend(reversed(node.children))
    return out


def _binding_of(node: Node) -> Optional[str]:
    if node.meta.get("id_kind") in RENAMEABLE_KINDS:
        return node.meta.get("binding")
    return None


def build_unuglify_graph(ast: Ast, name: str = "") -> CrfGraph:
    """CRF graph over hand-crafted single-statement relations."""
    graph = CrfGraph(name=name)
    for binding, occurrences in element_groups(ast).items():
        graph.add_unknown(binding, gold=occurrences[0].value or "")

    for statement in _statement_roots(ast.root):
        leaves = _identifier_leaves(statement)
        for i in range(len(leaves)):
            for j in range(i + 1, len(leaves)):
                a, b = leaves[i], leaves[j]
                binding_a, binding_b = _binding_of(a), _binding_of(b)
                if binding_a is None and binding_b is None:
                    continue
                path = path_between(a, b)
                rel = "stmt:" + alpha_id(path)
                rel_back = "stmt:" + alpha_id(path.reversed())
                if binding_a is not None and binding_a == binding_b:
                    index = graph.index_of(binding_a)
                    if index is not None:
                        graph.add_unary_factor(index, rel)
                elif binding_a is not None and binding_b is not None:
                    ia, ib = graph.index_of(binding_a), graph.index_of(binding_b)
                    if ia is not None and ib is not None:
                        graph.add_unknown_factor(ia, ib, rel, rel_back)
                elif binding_a is not None:
                    index = graph.index_of(binding_a)
                    if index is not None:
                        graph.add_known_factor(index, rel, b.value or b.kind)
                else:
                    index = graph.index_of(binding_b)  # type: ignore[arg-type]
                    if index is not None:
                        graph.add_known_factor(index, rel_back, a.value or a.kind)
    return graph
