"""Path-neighbours, no-paths contexts for word2vec (Table 3, row 2).

"The path-neighbors, no-paths approach uses the same surrounding AST
nodes for contexts as AST paths, except that the path itself is hidden,
and only the identity of the surrounding AST nodes is used."  Its purpose
in the paper is to show that the advantage of AST paths over the token
stream is not only their wider span but the path representation itself.

Implemented by running the standard element-context extraction under the
``no-path`` abstraction: identical neighbour set, constant relation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.ast_model import Ast
from ..core.extraction import ExtractionConfig, PathExtractor
from ..tasks.variable_naming import element_contexts


def _neighbor_extractor(max_length: int, max_width: int) -> PathExtractor:
    return PathExtractor(
        ExtractionConfig(
            max_length=max_length, max_width=max_width, abstraction="no-path"
        )
    )


def path_neighbor_contexts(
    ast: Ast, max_length: int = 7, max_width: int = 3
) -> Dict[str, Tuple[str, List[str]]]:
    """binding -> (gold name, neighbour-identity context tokens)."""
    return element_contexts(ast, _neighbor_extractor(max_length, max_width))


def path_neighbor_pairs(
    ast: Ast, max_length: int = 7, max_width: int = 3
) -> List[Tuple[str, str]]:
    """(gold name, context token) SGNS training pairs."""
    pairs: List[Tuple[str, str]] = []
    for _binding, (gold, tokens) in path_neighbor_contexts(
        ast, max_length, max_width
    ).items():
        for token in tokens:
            pairs.append((gold, token))
    return pairs
