"""CRFs + token n-grams (the Java baseline of Table 2).

Same CRF nodes as the path-based model; the relations between them are
sequential n-grams over the real lexer token stream.  An element at token
position ``t`` is connected to every token within ``n - 1`` positions,
with the relation encoding the signed offset -- so the model sees local
token context (keywords and punctuation included) but nothing about tree
structure.

Identifier occurrences are grouped by *name* within a file, the usual
approximation when no parse-tree binding is available to a purely lexical
model.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from ..core.ast_model import Ast
from ..lang import lexing
from ..lang.javascript.parser import _KEYWORDS as _JS_KEYWORDS
from ..lang.java.parser import _KEYWORDS as _JAVA_KEYWORDS
from ..lang.csharp.parser import _KEYWORDS as _CSHARP_KEYWORDS
from ..learning.crf.graph import CrfGraph
from ..tasks.variable_naming import element_groups

_KEYWORDS = {
    "javascript": _JS_KEYWORDS,
    "java": _JAVA_KEYWORDS,
    "csharp": _CSHARP_KEYWORDS,
}


def _tokenize(source: str, language: str) -> List[lexing.Token]:
    if language == "python":
        # Python sources tokenize acceptably with the C-family lexer for
        # the constructs our corpus emits (no indentation sensitivity is
        # needed for *context windows*).
        keywords = frozenset({"def", "return", "if", "else", "while", "for", "in",
                              "not", "and", "or", "raise", "break", "continue",
                              "True", "False", "None", "pass"})
        return lexing.Lexer(source, keywords, "python").tokenize()
    keywords = _KEYWORDS.get(language, _JS_KEYWORDS)
    return lexing.Lexer(source, keywords, language).tokenize()


def build_ngram_graph(
    source: str,
    ast: Ast,
    language: str = "java",
    n: int = 4,
    name: str = "",
) -> CrfGraph:
    """Build a CRF graph whose relations are token n-grams."""
    graph = CrfGraph(name=name)

    # Renameable element names (from the AST's bindings); lexical models
    # group occurrences by name.
    groups = element_groups(ast)
    name_to_key: Dict[str, str] = {}
    for binding, occurrences in groups.items():
        gold = occurrences[0].value or ""
        # First binding with a name wins; same-name locals merge, which is
        # the documented approximation of lexical baselines.
        name_to_key.setdefault(gold, binding)
    for gold, binding in name_to_key.items():
        graph.add_unknown(binding, gold=gold)

    tokens = [t for t in _tokenize(source, language) if t.kind != lexing.EOF]
    window = n - 1
    for t, token in enumerate(tokens):
        if token.kind != lexing.IDENT or token.text not in name_to_key:
            continue
        index = graph.index_of(name_to_key[token.text])
        if index is None:
            continue
        for offset in range(-window, window + 1):
            if offset == 0:
                continue
            j = t + offset
            if j < 0 or j >= len(tokens):
                continue
            other = tokens[j]
            rel = f"g{offset}"
            if other.kind == lexing.IDENT and other.text in name_to_key:
                other_index = graph.index_of(name_to_key[other.text])
                # Register each unknown-unknown pair once (forward offsets
                # only); add_unknown_factor stores both directions.
                if other_index is not None and other_index != index and offset > 0:
                    graph.add_unknown_factor(index, other_index, rel, f"g{-offset}")
                continue
            label = other.text if other.kind != lexing.STRING else "<str>"
            graph.add_known_factor(index, rel, label)
    return graph
