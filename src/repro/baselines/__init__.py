"""Baselines the paper compares against (Sec. 5.3).

==================  =====================================================
``no_paths``        bag-of-near-identifiers CRF ("no-paths" rows)
``ngram_crf``       CRFs + token n-grams (Java variable naming)
``rule_based``      pattern/type heuristics for Java variable naming
``unuglify``        UnuglifyJS-style single-statement relations
``token_context``   linear token-stream contexts for word2vec
``path_neighbors``  AST-neighbour identities without paths, for word2vec
``naive_type``      always predicts java.lang.String
``conv_attention``  convolutional attention for method names
==================  =====================================================
"""

from .no_paths import build_no_paths_graph, no_paths_extractor
from .ngram_crf import build_ngram_graph
from .rule_based import rule_based_predictions
from .unuglify import build_unuglify_graph
from .token_context import token_stream_contexts, token_stream_pairs
from .path_neighbors import path_neighbor_contexts, path_neighbor_pairs
from .naive_type import NAIVE_TYPE, naive_type_predictions

__all__ = [
    "build_no_paths_graph",
    "no_paths_extractor",
    "build_ngram_graph",
    "rule_based_predictions",
    "build_unuglify_graph",
    "token_stream_contexts",
    "token_stream_pairs",
    "path_neighbor_contexts",
    "path_neighbor_pairs",
    "NAIVE_TYPE",
    "naive_type_predictions",
]
