"""Rule-based Java variable naming (the paper's exact heuristics).

From Sec. 5.3.1, the baseline predicts names from pattern heuristics and
training-corpus statistics:

* ``for (int i = ...) {``            -> the classic loop-index name
* ``this.<fieldName> = <fieldName>`` -> setter-parameter naming
* ``catch (... e) {``                -> exception naming
* ``void set<FieldName>(... x)``     -> parameter named after the field
* otherwise: derive from the declared type (``HttpClient client``).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ast_model import Ast, Node
from ..tasks.variable_naming import element_groups

#: Fallback names per primitive type (corpus statistics stand-ins).
_PRIMITIVE_NAMES = {
    "int": "i",
    "long": "l",
    "double": "d",
    "float": "f",
    "boolean": "flag",
    "char": "c",
    "byte": "b",
    "short": "s",
}


def _declared_type_name(occurrence: Node) -> Optional[str]:
    """Simple type name at an element's declaration site, if visible."""
    node = occurrence
    parent = node.parent
    if parent is None:
        return None
    if parent.kind in ("VariableDeclarator",):
        decl = parent.parent
        if decl is not None and decl.children:
            return _type_to_name(decl.children[0])
    if parent.kind == "Parameter":
        return _type_to_name(parent.children[0])
    return None


def _type_to_name(type_node: Node) -> Optional[str]:
    if type_node.kind == "PrimitiveType":
        return type_node.value
    if type_node.kind == "ClassType":
        return type_node.value
    if type_node.kind == "GenericType" and type_node.children:
        return _type_to_name(type_node.children[0])
    if type_node.kind == "ArrayType" and type_node.children:
        inner = _type_to_name(type_node.children[0])
        return None if inner is None else inner + "s"
    return None


def _is_for_loop_index(occurrence: Node) -> bool:
    """``for (int i = 0; ...)`` -- declarator directly in a ForStmt head."""
    node = occurrence
    declarator = node.parent
    if declarator is None or declarator.kind != "VariableDeclarator":
        return False
    decl = declarator.parent
    if decl is None or decl.kind != "VariableDeclarationExpr":
        return False
    return decl.parent is not None and decl.parent.kind == "ForStmt"


def _is_catch_param(occurrence: Node) -> bool:
    param = occurrence.parent
    return (
        param is not None
        and param.kind == "Parameter"
        and param.parent is not None
        and param.parent.kind == "CatchClause"
    )


def _setter_field_name(occurrence: Node) -> Optional[str]:
    """Parameter of a ``setFoo`` method -> ``foo``."""
    param = occurrence.parent
    if param is None or param.kind != "Parameter":
        return None
    method = param.parent
    if method is None or method.kind != "MethodDeclaration":
        return None
    method_name = method.children[1].value or ""
    if method_name.startswith("set") and len(method_name) > 3:
        field = method_name[3:]
        return field[0].lower() + field[1:]
    return None


def rule_based_predictions(ast: Ast) -> Dict[str, Optional[str]]:
    """binding -> predicted name for every renameable element."""
    predictions: Dict[str, Optional[str]] = {}
    for binding, occurrences in element_groups(ast).items():
        declaration = occurrences[0]
        prediction: Optional[str] = None
        if _is_for_loop_index(declaration):
            prediction = "i"
        elif _is_catch_param(declaration):
            prediction = "e"
        else:
            setter_name = _setter_field_name(declaration)
            if setter_name is not None:
                prediction = setter_name
            else:
                type_name = _declared_type_name(declaration)
                if type_name in _PRIMITIVE_NAMES:
                    prediction = _PRIMITIVE_NAMES[type_name]
                elif type_name:
                    prediction = type_name[0].lower() + type_name[1:]
        predictions[binding] = prediction
    return predictions
