"""The naive full-type baseline (Sec. 5.3.3).

Uniformly predicts ``java.lang.String`` for every expression.  The paper
uses it to show that type prediction is nontrivial even after factoring
out the most common Java type (24.1% in their corpus).
"""

from __future__ import annotations

from typing import Dict

from ..core.ast_model import Ast
from ..tasks.type_prediction import typed_targets

NAIVE_TYPE = "java.lang.String"


def naive_type_predictions(ast: Ast) -> Dict[int, str]:
    """node id -> predicted type, for every typed target expression."""
    return {id(node): NAIVE_TYPE for node in typed_targets(ast)}
