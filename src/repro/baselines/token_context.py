"""Linear token-stream contexts for word2vec (Table 3, row 1).

"The linear token-stream approach uses the surrounding tokens to predict
a variable name.  Surrounding tokens (e.g., values, keywords, parentheses,
dots and brackets) may implicitly hint at the syntactic relations, without
AST paths.  This is the type of context usually used in NLP [and] in the
original implementation of word2vec."

Context token: signed offset + token text within a fixed window around
each occurrence.  Other renameable names are masked with the placeholder
so gold labels cannot leak, mirroring the path-based pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.ast_model import Ast
from ..lang import lexing
from ..tasks.variable_naming import PLACEHOLDER, element_groups
from .ngram_crf import _tokenize


def token_stream_contexts(
    source: str,
    ast: Ast,
    language: str = "javascript",
    window: int = 4,
) -> Dict[str, Tuple[str, List[str]]]:
    """binding -> (gold name, linear-context tokens)."""
    groups = element_groups(ast)
    name_to_binding: Dict[str, str] = {}
    for binding, occurrences in groups.items():
        name_to_binding.setdefault(occurrences[0].value or "", binding)
    unknown_names = set(name_to_binding)

    contexts: Dict[str, List[str]] = {binding: [] for binding in groups}
    tokens = [t for t in _tokenize(source, language) if t.kind != lexing.EOF]
    for t, token in enumerate(tokens):
        if token.kind != lexing.IDENT or token.text not in name_to_binding:
            continue
        binding = name_to_binding[token.text]
        for offset in range(-window, window + 1):
            if offset == 0:
                continue
            j = t + offset
            if j < 0 or j >= len(tokens):
                continue
            other = tokens[j]
            text = other.text
            if other.kind == lexing.IDENT and text in unknown_names:
                text = PLACEHOLDER
            elif other.kind == lexing.STRING:
                text = "<str>"
            contexts[binding].append(f"t{offset}|{text}")
    return {
        binding: (groups[binding][0].value or "", contexts[binding])
        for binding in groups
    }


def token_stream_pairs(
    source: str, ast: Ast, language: str = "javascript", window: int = 4
) -> List[Tuple[str, str]]:
    """(gold name, context token) SGNS training pairs."""
    pairs: List[Tuple[str, str]] = []
    for _binding, (gold, tokens) in token_stream_contexts(
        source, ast, language, window
    ).items():
        for token in tokens:
            pairs.append((gold, token))
    return pairs
