"""Convolutional attention for method-name prediction (Allamanis et al. [7]).

A laptop-scale numpy reimplementation of the model family the paper
compares against on Java method names: token embeddings of the method
body, a 1-D convolution producing per-position attention scores, an
attention-weighted body summary, and a softmax over the method-name
vocabulary.  The original predicts sub-token sequences; like the paper we
report both exact match and sub-token F1 of the predicted name.

Trained by SGD on cross-entropy.  The paper's finding -- this model
underperforms CRFs with AST paths because it cannot learn across
projects as effectively -- is reproduced by the model's reliance on
surface token identity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ast_model import Ast, Node
from ..tasks.method_naming import method_elements

_PAD = "<pad>"
_UNK_TOKEN = "<unk>"


@dataclass
class ConvAttentionConfig:
    embed_dim: int = 32
    conv_window: int = 3
    max_body_tokens: int = 60
    epochs: int = 8
    learning_rate: float = 0.08
    min_token_count: int = 2
    seed: int = 29


def _body_tokens(info: Dict[str, object], max_tokens: int) -> List[str]:
    body_root = info["body_root"]
    decl = info["decl_node"]
    if body_root is None:
        return []
    tokens = [
        leaf.value or leaf.kind
        for leaf in body_root.leaves()  # type: ignore[union-attr]
        if leaf is not decl
    ]
    return tokens[:max_tokens]


class ConvAttentionModel:
    """Trained model: embeddings, conv filter, output projection."""

    def __init__(
        self,
        token_vocab: Dict[str, int],
        label_vocab: Dict[str, int],
        embeddings: np.ndarray,
        conv_filter: np.ndarray,
        output: np.ndarray,
        config: ConvAttentionConfig,
    ) -> None:
        self.token_vocab = token_vocab
        self.label_vocab = label_vocab
        self.labels = [None] * len(label_vocab)
        for label, idx in label_vocab.items():
            self.labels[idx] = label
        self.embeddings = embeddings
        self.conv_filter = conv_filter
        self.output = output
        self.config = config

    # ------------------------------------------------------------------
    def _encode(self, tokens: Sequence[str]) -> np.ndarray:
        unk = self.token_vocab[_UNK_TOKEN]
        ids = [self.token_vocab.get(t, unk) for t in tokens]
        if not ids:
            ids = [self.token_vocab[_PAD]]
        return np.asarray(ids, dtype=np.int64)

    def _attention_summary(self, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(summary vector, attention weights) for one token sequence."""
        E = self.embeddings[ids]  # (T, d)
        w = self.conv_window_scores(E)  # (T,)
        alpha = _softmax(w)
        summary = alpha @ E
        return summary, alpha

    def conv_window_scores(self, E: np.ndarray) -> np.ndarray:
        """1-D convolution over embeddings producing attention logits."""
        k = self.config.conv_window
        T, d = E.shape
        pad = k // 2
        padded = np.vstack([np.zeros((pad, d)), E, np.zeros((pad, d))])
        scores = np.empty(T)
        for t in range(T):
            window = padded[t : t + k].reshape(-1)
            scores[t] = window @ self.conv_filter
        return scores

    def predict(self, tokens: Sequence[str]) -> Optional[str]:
        top = self.predict_topk(tokens, k=1)
        return top[0][0] if top else None

    def predict_topk(self, tokens: Sequence[str], k: int = 5) -> List[Tuple[str, float]]:
        ids = self._encode(tokens)
        summary, _ = self._attention_summary(ids)
        logits = self.output @ summary
        order = np.argsort(-logits)[:k]
        return [(self.labels[int(i)], float(logits[i])) for i in order]


@dataclass
class ConvAttentionStats:
    examples: int = 0
    epochs: int = 0
    train_seconds: float = 0.0


def train_conv_attention(
    examples: Sequence[Tuple[List[str], str]],
    config: Optional[ConvAttentionConfig] = None,
) -> Tuple[ConvAttentionModel, ConvAttentionStats]:
    """Train from (body tokens, method name) examples."""
    cfg = config or ConvAttentionConfig()
    rng = np.random.default_rng(cfg.seed)
    started = time.perf_counter()

    token_counts: Dict[str, int] = {}
    label_vocab: Dict[str, int] = {}
    for tokens, label in examples:
        for token in tokens:
            token_counts[token] = token_counts.get(token, 0) + 1
        if label not in label_vocab:
            label_vocab[label] = len(label_vocab)
    token_vocab: Dict[str, int] = {_PAD: 0, _UNK_TOKEN: 1}
    for token, count in sorted(token_counts.items()):
        if count >= cfg.min_token_count:
            token_vocab[token] = len(token_vocab)

    d = cfg.embed_dim
    embeddings = (rng.random((len(token_vocab), d)) - 0.5) / d
    conv_filter = (rng.random(cfg.conv_window * d) - 0.5) / d
    output = (rng.random((len(label_vocab), d)) - 0.5) / d

    model = ConvAttentionModel(token_vocab, label_vocab, embeddings, conv_filter, output, cfg)
    stats = ConvAttentionStats(examples=len(examples))
    if not examples or not label_vocab:
        stats.train_seconds = time.perf_counter() - started
        return model, stats

    index_order = np.arange(len(examples))
    for epoch in range(cfg.epochs):
        rng.shuffle(index_order)
        lr = cfg.learning_rate * (1.0 - epoch / max(1, cfg.epochs))
        for idx in index_order:
            tokens, label = examples[int(idx)]
            ids = model._encode(tokens)
            E = model.embeddings[ids]
            scores = model.conv_window_scores(E)
            alpha = _softmax(scores)
            summary = alpha @ E  # (d,)
            logits = model.output @ summary
            probs = _softmax(logits)
            gold = model.label_vocab[label]

            # Gradient of cross-entropy w.r.t. logits.
            grad_logits = probs.copy()
            grad_logits[gold] -= 1.0
            # Output projection.
            grad_output = np.outer(grad_logits, summary)
            grad_summary = model.output.T @ grad_logits  # (d,)
            # Through the attention-weighted sum (treating alpha as
            # locally constant for the embedding path -- a standard
            # straight-through simplification that keeps training stable
            # at this scale).
            grad_E = np.outer(alpha, grad_summary)
            model.output -= lr * grad_output
            np.add.at(model.embeddings, ids, -lr * grad_E)
            # Attention logits gradient (exact): d summary / d alpha = E.
            grad_alpha = E @ grad_summary
            grad_scores = alpha * (grad_alpha - float(alpha @ grad_alpha))
            k = model.config.conv_window
            pad = k // 2
            padded = np.vstack([np.zeros((pad, E.shape[1])), E, np.zeros((pad, E.shape[1]))])
            grad_filter = np.zeros_like(model.conv_filter)
            for t in range(len(ids)):
                grad_filter += grad_scores[t] * padded[t : t + k].reshape(-1)
            model.conv_filter -= lr * grad_filter
        stats.epochs += 1

    stats.train_seconds = time.perf_counter() - started
    return model, stats


def method_examples(ast: Ast, max_tokens: int = 60) -> List[Tuple[List[str], str]]:
    """(body tokens, gold method name) pairs from one file."""
    out = []
    for _key, info in method_elements(ast).items():
        tokens = _body_tokens(info, max_tokens)
        if tokens:
            out.append((tokens, str(info["gold"])))
    return out


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - np.max(x)
    exp = np.exp(shifted)
    return exp / exp.sum()
