"""The serializable description of one pipeline configuration.

A :class:`RunSpec` is the paper's "one cell of the cross product": a
(language, task, representation, learner) choice plus the per-axis
option dictionaries.  It is plain data -- every field survives
``RunSpec.from_dict(spec.to_dict())`` unchanged -- so specs can live in
JSON files, CLI flags, experiment matrices and saved models alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class RunSpec:
    """Configuration of one (language, task, representation, learner) cell.

    ``extraction`` holds representation options: the
    :class:`~repro.core.extraction.ExtractionConfig` fields
    (``max_length``, ``max_width``, ``abstraction``, ...) for path-based
    representations, ``window`` for the token-stream baseline.  Absent
    ``max_length``/``max_width`` default to the task's tuned values for
    the language (Table 2).  ``training`` and ``sgns`` override fields of
    :class:`~repro.learning.crf.training.TrainingConfig` and
    :class:`~repro.learning.word2vec.sgns.SgnsConfig` respectively.
    """

    language: str
    task: str = "variable_naming"
    representation: str = "ast-paths"
    learner: str = "crf"
    extraction: Dict[str, Any] = field(default_factory=dict)
    training: Dict[str, Any] = field(default_factory=dict)
    sgns: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; inverse of :meth:`from_dict`."""
        return {
            "language": self.language,
            "task": self.task,
            "representation": self.representation,
            "learner": self.learner,
            "extraction": dict(self.extraction),
            "training": dict(self.training),
            "sgns": dict(self.sgns),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (missing keys keep
        their defaults, so hand-written JSON can stay short)."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RunSpec fields {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)

    def cell(self) -> str:
        """The human-readable cell name used in reports and errors."""
        return f"{self.language}/{self.task}/{self.representation}/{self.learner}"
