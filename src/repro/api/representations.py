"""The representation extension point and its built-ins.

The paper's headline representation is AST paths; its baselines are
alternative representations over the *same* tasks and learners
(Tables 2-3).  Registering the baselines here makes that comparison an
API-level fact: swap ``representation="ast-paths"`` for ``"no-paths"``
or ``"token-context"`` in a :class:`~repro.api.spec.RunSpec` and
everything else stays fixed.

===================  ===========  =======================================
name                 views        meaning
===================  ===========  =======================================
``ast-paths``        graph+ctx    AST path-contexts (the paper's rep)
``no-paths``         graph+ctx    same neighbours, path collapsed to one
                                  symbol (Sec. 5.3 "no-paths"; with the
                                  word2vec learner this is Table 3's
                                  "path-neighbours, no-paths" row)
``token-context``    ctx          linear token-stream window (Table 3)
===================  ===========  =======================================

A representation class is constructed with the resolved ``extraction``
option dict of the spec; each implementation consumes the keys it
understands and ignores the rest (the dict is shared across
representations so specs can switch representation without editing it).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from ..baselines.no_paths import no_paths_extractor
from ..baselines.token_context import token_stream_contexts
from ..core.extraction import ExtractionConfig, PathExtractor
from ..core.interning import FeatureSpace
from ..core.service import ExtractionService
from ..learning.crf.graph import CrfGraph
from ..registry import Registry
from .protocols import (
    CONTEXTS_VIEW,
    GRAPH_VIEW,
    ContextMap,
    ParsedProgram,
    Task,
    UnsupportedSpecError,
)

#: The representation extension point: name -> representation class.
representations = Registry("representation")

_EXTRACTION_FIELDS = {f.name for f in dataclasses.fields(ExtractionConfig)}


def _extraction_config(extraction: Dict[str, Any], **forced: Any) -> ExtractionConfig:
    kwargs = {k: v for k, v in extraction.items() if k in _EXTRACTION_FIELDS}
    kwargs.update(forced)
    return ExtractionConfig(**kwargs)


@representations.register("ast-paths")
class AstPathsRepresentation:
    """AST path-contexts through a :class:`PathExtractor` (Sec. 4).

    Each instance owns a private
    :class:`~repro.core.interning.FeatureSpace` (so a pipeline's interned
    ids are compact and deterministic) and routes extraction through an
    :class:`~repro.core.service.ExtractionService`, so a program whose
    graph and contexts views are both built extracts once.
    """

    name = "ast-paths"
    provides: Tuple[str, ...] = (GRAPH_VIEW, CONTEXTS_VIEW)
    tasks: Optional[Tuple[str, ...]] = None

    def __init__(self, extraction: Optional[Dict[str, Any]] = None) -> None:
        self.space = FeatureSpace()
        self.extractor = PathExtractor(
            _extraction_config(extraction or {}), space=self.space
        )
        self.service = ExtractionService(self.extractor)

    def bind_space(self, space: FeatureSpace) -> None:
        """Adopt a feature space (e.g. one restored by Pipeline.load)."""
        self.space = space
        self.service.bind_space(space)

    def graph(self, task: Task, program: ParsedProgram, name: str = "") -> CrfGraph:
        return task.build_graph(program, self.service, name or program.name)

    def contexts(self, task: Task, program: ParsedProgram) -> ContextMap:
        return task.contexts(program, self.service)


@representations.register("no-paths")
class NoPathsRepresentation(AstPathsRepresentation):
    """The "no-paths" baseline: neighbour identities, relation hidden.

    Adapted from :mod:`repro.baselines.no_paths` /
    :mod:`repro.baselines.path_neighbors`: the same element-and-neighbour
    structure as ``ast-paths`` under the ``no-path`` abstraction, so the
    learner sees *which* nodes are nearby but not *how* they relate.
    """

    name = "no-paths"

    def __init__(self, extraction: Optional[Dict[str, Any]] = None) -> None:
        extraction = dict(extraction or {})
        extraction.pop("abstraction", None)
        config = _extraction_config(extraction)
        self.space = FeatureSpace()
        self.extractor = no_paths_extractor(
            space=self.space,
            **{f.name: getattr(config, f.name) for f in dataclasses.fields(config) if f.name != "abstraction"},
        )
        self.service = ExtractionService(self.extractor)


@representations.register("token-context")
class TokenContextRepresentation:
    """Linear token-stream contexts (Table 3, row 1).

    Wraps :func:`repro.baselines.token_context.token_stream_contexts`:
    the surrounding ``window`` tokens of each occurrence, NLP-style, with
    no syntactic structure.  Contexts-only -- pair it with a contexts
    learner such as ``word2vec``.
    """

    name = "token-context"
    provides: Tuple[str, ...] = (CONTEXTS_VIEW,)
    #: Uses the variable-naming element grouping internally.
    tasks: Optional[Tuple[str, ...]] = ("variable_naming",)

    def __init__(self, extraction: Optional[Dict[str, Any]] = None) -> None:
        self.window = int((extraction or {}).get("window", 4))

    def graph(self, task: Task, program: ParsedProgram, name: str = "") -> CrfGraph:
        raise UnsupportedSpecError(
            "representation 'token-context' has no 'graph' view; "
            "it provides: ('contexts',)"
        )

    def contexts(self, task: Task, program: ParsedProgram) -> ContextMap:
        return token_stream_contexts(
            program.source, program.ast, program.language, window=self.window
        )
