"""The learner extension point and the two built-in learning engines.

A learner consumes one feature view ("graph" or "contexts"), fits it,
predicts labels for new programs, and can serialize its trained state to
a JSON-ready dict (:meth:`state_dict` / :meth:`load_state`) so a whole
:class:`~repro.api.Pipeline` persists to a single file and reloads with
bit-identical predictions.

``crf`` adapts :class:`~repro.learning.crf.model.CrfModel` +
:class:`~repro.learning.crf.training.CrfTrainer` (Eq. 1, Sec. 4.2);
``word2vec`` adapts SGNS +
:class:`~repro.learning.word2vec.predictor.ContextPredictor` (Eq. 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..core.interning import FeatureSpace
from ..learning.crf import CrfModel, CrfTrainer, TrainingConfig
from ..learning.crf.graph import CrfGraph
from ..learning.crf.inference import map_inference, topk_for_node
from ..learning.word2vec import ContextPredictor, SgnsConfig, SgnsModel, train_sgns
from ..learning.word2vec.sgns import restore_context_token
from ..learning.word2vec.vocab import Vocabulary
from ..registry import Registry
from .protocols import CONTEXTS_VIEW, GRAPH_VIEW, ContextMap, LearnerStats

if TYPE_CHECKING:  # pragma: no cover
    from .spec import RunSpec

#: The learner extension point: name -> learner class.
#: Learner classes are constructed with the :class:`RunSpec` (or None).
learners = Registry("learner")


class _LearnerBase:
    name: str = ""
    consumes: str = GRAPH_VIEW

    @property
    def trained(self) -> bool:
        raise NotImplementedError

    def _require_trained(self) -> None:
        if not self.trained:
            raise RuntimeError("call train() before predict()")


#: Valid values for :attr:`CrfLearner.engine`.
CRF_ENGINES = ("compiled", "scalar")


@learners.register("crf")
class CrfLearner(_LearnerBase):
    """The structured CRF learner over factor graphs.

    Inference runs on one of two engines (see
    :mod:`repro.learning.crf.inference`): ``compiled`` -- the vectorised
    default, which freezes the trained weights into a
    :class:`~repro.learning.crf.compiled.CompiledCrfModel` once and
    reuses the pack across predictions -- or ``scalar``, the dict-lookup
    oracle.  Both produce bit-identical predictions; flip
    :attr:`engine` (or pass ``pigeon predict --engine``) to cross-check.
    """

    name = "crf"
    consumes = GRAPH_VIEW

    def __init__(self, spec: Optional["RunSpec"] = None) -> None:
        overrides = dict(spec.training) if spec is not None else {}
        self.config = TrainingConfig(**overrides)
        self.model: Optional[CrfModel] = None
        self.engine: str = "compiled"
        self._compiled = None

    @property
    def trained(self) -> bool:
        return self.model is not None

    @property
    def space(self) -> Optional[FeatureSpace]:
        """The trained model's feature space (None before training)."""
        return self.model.space if self.model is not None else None

    def _scorer(self):
        """The active inference engine (compiling lazily on first use)."""
        if self.engine not in CRF_ENGINES:
            raise ValueError(
                f"unknown inference engine {self.engine!r}; "
                f"expected one of {CRF_ENGINES}"
            )
        if self.engine == "scalar":
            return self.model
        if self._compiled is None or self._compiled.model is not self.model:
            self._compiled = self.model.compile()
        return self._compiled

    def ensure_compiled(self) -> None:
        """Eagerly build the scoring pack (freeze time, serving path)."""
        if self.trained and self.engine == "compiled":
            self._scorer()

    def fit(self, views: Iterable[CrfGraph], checkpoint=None) -> LearnerStats:
        # Anything sequence-shaped (a list of graphs, or a streaming
        # ShardedCorpus with len + random access) flows through the
        # trainer as-is; one-shot iterables materialise once.
        if hasattr(views, "__getitem__") and hasattr(views, "__len__"):
            graphs = views
        else:
            graphs = list(views)
        model, stats = CrfTrainer(self.config).train(graphs, checkpoint=checkpoint)
        self.model = model
        self._compiled = None
        return LearnerStats(parameters=stats.parameters, train_seconds=stats.train_seconds)

    def predict(self, view: CrfGraph) -> Dict[str, str]:
        self._require_trained()
        assignment = map_inference(self._scorer(), view)
        return {node.key: assignment[i] for i, node in enumerate(view.unknowns)}

    def suggest(self, view: CrfGraph, k: int = 5) -> Dict[str, List[Tuple[str, float]]]:
        self._require_trained()
        scorer = self._scorer()
        assignment = map_inference(scorer, view)
        return {
            node.key: topk_for_node(scorer, view, i, k=k, assignment=assignment)
            for i, node in enumerate(view.unknowns)
        }

    def state_dict(self) -> dict:
        self._require_trained()
        return {"model": self.model.to_dict()}

    def load_state(self, state: dict) -> None:
        self.model = CrfModel.from_dict(state["model"])
        self._compiled = None


@learners.register("word2vec")
class Word2vecLearner(_LearnerBase):
    """The SGNS bag-of-contexts learner (Eq. 4)."""

    name = "word2vec"
    consumes = CONTEXTS_VIEW

    def __init__(self, spec: Optional["RunSpec"] = None) -> None:
        overrides = dict(spec.sgns) if spec is not None else {}
        self.config = SgnsConfig(**overrides)
        self.predictor: Optional[ContextPredictor] = None
        #: Feature space behind interned context tokens (None for the
        #: string-token representations); set by the owning Pipeline.
        self._space: Optional[FeatureSpace] = None

    def bind_space(self, space: Optional[FeatureSpace]) -> None:
        self._space = space

    @property
    def space(self) -> Optional[FeatureSpace]:
        return self._space

    @property
    def trained(self) -> bool:
        return self.predictor is not None

    def fit(self, views: Iterable[ContextMap], checkpoint=None) -> LearnerStats:
        pairs: List[Tuple[str, str]] = []
        for view in views:
            for _binding, (gold, tokens) in view.items():
                for token in tokens:
                    pairs.append((gold, token))
        model, stats = train_sgns(pairs, self.config, checkpoint=checkpoint)
        self.predictor = ContextPredictor(model)
        parameters = len(model.words) * model.dim + len(model.contexts) * model.dim
        return LearnerStats(parameters=parameters, train_seconds=stats.train_seconds)

    def predict(self, view: ContextMap) -> Dict[str, str]:
        self._require_trained()
        out: Dict[str, str] = {}
        for binding, (_gold, tokens) in view.items():
            prediction = self.predictor.predict(tokens)
            if prediction is not None:
                out[binding] = prediction
        return out

    def suggest(self, view: ContextMap, k: int = 5) -> Dict[str, List[Tuple[str, float]]]:
        self._require_trained()
        return {
            binding: self.predictor.predict_topk(tokens, k=k)
            for binding, (_gold, tokens) in view.items()
        }

    def state_dict(self) -> dict:
        self._require_trained()
        model = self.predictor.model
        return {
            "dim": model.dim,
            "words": list(model.words.id_to_token),
            "word_counts": [int(c) for c in model.words.counts],
            # Context tokens are strings (token-stream baselines) or
            # interned (rel_id, value_id) pairs; pairs serialize as JSON
            # arrays and are restored as int tuples on load.
            "contexts": [
                list(t) if isinstance(t, tuple) else t
                for t in model.contexts.id_to_token
            ],
            "context_counts": [int(c) for c in model.contexts.counts],
            "word_vectors": model.word_vectors.tolist(),
            "context_vectors": model.context_vectors.tolist(),
            "space": self._space.to_dict() if self._space is not None else None,
        }

    def load_state(self, state: dict) -> None:
        space_data = state.get("space")
        self._space = (
            FeatureSpace.from_dict(space_data) if space_data is not None else None
        )
        words = Vocabulary()
        for token, count in zip(state["words"], state["word_counts"]):
            words._add(str(token), int(count))
        contexts = Vocabulary()
        for token, count in zip(state["contexts"], state["context_counts"]):
            contexts._add(restore_context_token(token), int(count))
        dim = int(state["dim"])
        word_vectors = np.asarray(state["word_vectors"], dtype=np.float64).reshape(len(words), dim)
        context_vectors = np.asarray(state["context_vectors"], dtype=np.float64).reshape(len(contexts), dim)
        self.predictor = ContextPredictor(
            SgnsModel(words, contexts, word_vectors, context_vectors)
        )
