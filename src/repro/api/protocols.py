"""The three plugin protocols behind :class:`repro.api.Pipeline`.

PIGEON factors a prediction problem into independent axes (Sec. 5.1):

* a **language** frontend parses source text into the shared AST
  (registered in :data:`repro.lang.base.languages`);
* a **task** decides which program elements are predicted and what their
  gold labels are (:data:`repro.api.tasks.tasks`);
* a **representation** turns a parsed program into the features a
  learner consumes (:data:`repro.api.representations.representations`);
* a **learner** fits those features and predicts labels
  (:data:`repro.api.learners.learners`).

Two feature *views* connect representations to learners:

``"graph"``
    a :class:`~repro.learning.crf.graph.CrfGraph` factor graph -- what
    structured learners such as the CRF consume;
``"contexts"``
    a :data:`ContextMap` of ``element -> (gold label, context tokens)``
    -- what bag-of-contexts predictors such as SGNS/word2vec consume.

A representation declares which views it ``provides``, a learner which
single view it ``consumes``, and a task which ``views`` it can populate;
:class:`~repro.api.pipeline.Pipeline` checks the three agree and raises
:class:`UnsupportedSpecError` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from ..core.ast_model import Ast
from ..core.extraction import PathExtractor
from ..learning.crf.graph import CrfGraph

#: element key -> (gold label, context tokens); the "contexts" view.
ContextMap = Dict[str, Tuple[str, List[str]]]

#: The feature views a representation can produce.
GRAPH_VIEW = "graph"
CONTEXTS_VIEW = "contexts"


class UnsupportedSpecError(ValueError):
    """A :class:`~repro.api.spec.RunSpec` names plugins that exist but
    cannot be combined (e.g. a contexts-only representation with a graph
    learner, or a Java-only task with another language)."""


@dataclass
class ParsedProgram:
    """One program as every plugin sees it: text plus parsed AST."""

    language: str
    source: str
    ast: Ast
    name: str = ""


@dataclass
class LearnerStats:
    """What a learner reports back from :meth:`Learner.fit`."""

    parameters: int = 0
    train_seconds: float = 0.0


class Task(Protocol):
    """A prediction task: which elements, which labels, which views."""

    name: str
    #: Languages the task supports; ``None`` means any registered language.
    languages: Optional[Tuple[str, ...]]
    #: Feature views the task can populate, e.g. ``("graph", "contexts")``.
    views: Tuple[str, ...]

    def default_params(self, language: str) -> Tuple[int, int]:
        """Tuned (max_length, max_width) for ``language`` (Table 2)."""

    def build_graph(self, program: ParsedProgram, extractor: PathExtractor, name: str = "") -> CrfGraph:
        """The task's factor graph for one program."""

    def contexts(self, program: ParsedProgram, extractor: PathExtractor) -> ContextMap:
        """The task's context map for one program (if in ``views``)."""


class Representation(Protocol):
    """A way of turning parsed programs into learner features."""

    name: str
    #: Views this representation can produce.
    provides: Tuple[str, ...]
    #: Tasks the representation supports; ``None`` means any task.
    tasks: Optional[Tuple[str, ...]]

    def graph(self, task: Task, program: ParsedProgram, name: str = "") -> CrfGraph:
        """The "graph" view of one program."""

    def contexts(self, task: Task, program: ParsedProgram) -> ContextMap:
        """The "contexts" view of one program."""


class Learner(Protocol):
    """A trainable model over one feature view.

    ``fit`` consumes a list of views (one per training program);
    ``predict``/``suggest`` consume a single program's view.  The state
    methods make a trained learner serializable to JSON so that
    :meth:`repro.api.Pipeline.save` round-trips predictions exactly.
    """

    name: str
    #: The single view this learner consumes ("graph" or "contexts").
    consumes: str

    @property
    def trained(self) -> bool: ...

    def fit(self, views: list) -> LearnerStats: ...

    def predict(self, view) -> Dict[str, str]: ...

    def suggest(self, view, k: int = 5) -> Dict[str, List[Tuple[str, float]]]: ...

    def state_dict(self) -> dict: ...

    def load_state(self, state: dict) -> None: ...
