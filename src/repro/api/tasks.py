"""The task extension point and the three built-in tasks (Sec. 5.3).

A task plugin decides *what is predicted*: which program elements become
unknowns, what their gold labels are, and how a program turns into each
feature view.  The built-ins wrap the graph/label builders in
``repro.tasks``; third-party tasks register the same way::

    from repro.api.tasks import tasks

    @tasks.register("loop-bound-prediction")
    class LoopBoundTask: ...
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.extraction import PathExtractor
from ..learning.crf.graph import CrfGraph
from ..registry import Registry
from ..tasks.method_naming import build_method_graph
from ..tasks.translate import build_translate_graph
from ..tasks.type_prediction import build_type_graph
from ..tasks.variable_naming import build_crf_graph, element_contexts
from .protocols import GRAPH_VIEW, CONTEXTS_VIEW, ContextMap, ParsedProgram, UnsupportedSpecError

#: The task extension point: name -> task class.
tasks = Registry("task")

#: Tuned (max_length, max_width) per (language, task) cell (Table 2).
DEFAULT_PARAMS: Dict[Tuple[str, str], Tuple[int, int]] = {
    ("javascript", "variable_naming"): (7, 3),
    ("java", "variable_naming"): (6, 3),
    ("python", "variable_naming"): (7, 4),
    ("csharp", "variable_naming"): (7, 4),
    ("javascript", "method_naming"): (12, 4),
    ("java", "method_naming"): (6, 2),
    ("python", "method_naming"): (10, 6),
    ("java", "type_prediction"): (4, 1),
    ("javascript", "translate"): (7, 3),
    ("java", "translate"): (6, 3),
    ("python", "translate"): (7, 4),
    ("csharp", "translate"): (7, 4),
}

#: Fallback when a (language, task) cell has no tuned entry.
FALLBACK_PARAMS: Tuple[int, int] = (7, 3)


class _TaskBase:
    name: str = ""
    languages: Optional[Tuple[str, ...]] = None
    views: Tuple[str, ...] = (GRAPH_VIEW,)

    def default_params(self, language: str) -> Tuple[int, int]:
        return DEFAULT_PARAMS.get((language, self.name), FALLBACK_PARAMS)

    def contexts(self, program: ParsedProgram, extractor: PathExtractor) -> ContextMap:
        raise UnsupportedSpecError(
            f"task {self.name!r} has no 'contexts' view; it supports: {self.views}"
        )


@tasks.register("variable_naming")
class VariableNamingTask(_TaskBase):
    """Predict names of local variables and parameters (Sec. 5.3.1)."""

    name = "variable_naming"
    views = (GRAPH_VIEW, CONTEXTS_VIEW)
    #: Predictions can be substituted back into the source (rename/deobfuscate).
    renameable = True

    def build_graph(self, program: ParsedProgram, extractor: PathExtractor, name: str = "") -> CrfGraph:
        return build_crf_graph(program.ast, extractor, name or program.name)

    def contexts(self, program: ParsedProgram, extractor: PathExtractor) -> ContextMap:
        return element_contexts(program.ast, extractor)


@tasks.register("method_naming")
class MethodNamingTask(_TaskBase):
    """Predict method names from bodies and call sites (Sec. 5.3.2)."""

    name = "method_naming"

    def build_graph(self, program: ParsedProgram, extractor: PathExtractor, name: str = "") -> CrfGraph:
        return build_method_graph(program.ast, extractor, name or program.name)


@tasks.register("translate")
class TranslateTask(_TaskBase):
    """Cross-language translation: variable + method unknowns together.

    The translation workload (:mod:`repro.translate`) lifts a source file
    into the corpus IR and renders it in another language; this task owns
    the CRF side -- one graph predicting idiomatic names for every
    renameable binding *and* every method declaration, keyed exactly as
    the lifters key the symbol table.  Serving requests for this task
    carry ``target_language`` and answer with translated source.
    """

    name = "translate"

    def build_graph(self, program: ParsedProgram, extractor: PathExtractor, name: str = "") -> CrfGraph:
        return build_translate_graph(program.ast, extractor, name or program.name)


@tasks.register("type_prediction")
class TypePredictionTask(_TaskBase):
    """Predict full (package-qualified) expression types (Sec. 5.3.3)."""

    name = "type_prediction"
    languages = ("java",)

    def build_graph(self, program: ParsedProgram, extractor: PathExtractor, name: str = "") -> CrfGraph:
        return build_type_graph(program.ast, extractor, name or program.name)
