"""The :class:`Pipeline` facade: one object per (language, task,
representation, learner) cell.

This is the public face of the plugin architecture.  A pipeline is built
from a :class:`~repro.api.spec.RunSpec`, resolves each name through its
registry, validates that the axes compose, and then exposes the
train / predict / suggest / rename workflow of the paper's PIGEON tool
(Sec. 5.1) plus single-file model persistence::

    from repro.api import Pipeline

    pipeline = Pipeline(language="javascript")        # paths + CRF
    pipeline.train(training_sources)
    pipeline.predict(source)                          # element -> name
    pipeline.suggest(source, k=5)                     # element -> top-k
    pipeline.save("model.json")
    ...
    Pipeline.load("model.json").predict(source)       # identical output

Baselines are the same one-line change the paper describes::

    Pipeline(language="javascript", learner="word2vec",
             representation="token-context")          # Table 3, row 1
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..lang.base import languages, parse_source
from ..resilience import faults
from ..resilience.atomicio import read_stamped_json, stamped_json_bytes, atomic_write_bytes
from ..resilience.checkpoint import (
    TrainerCheckpoint,
    corpus_fingerprint,
    shards_fingerprint,
)
from .learners import learners
from .protocols import (
    GRAPH_VIEW,
    Learner,
    LearnerStats,
    ParsedProgram,
    Representation,
    Task,
    UnsupportedSpecError,
)
from .representations import representations
from .spec import RunSpec
from .tasks import tasks

#: On-disk format tag for saved pipelines.  Version 2 switched learner
#: state to interned integer feature keys with an embedded FeatureSpace
#: (and tuple word2vec context tokens); version 1 files cannot be read.
PIPELINE_FORMAT = "pigeon-pipeline/2"


@dataclass
class PipelineStats:
    """Summary of one training run."""

    files_trained: int = 0
    elements_trained: int = 0
    parameters: int = 0
    train_seconds: float = 0.0


class Pipeline:
    """Train-and-predict facade for one registry cell."""

    def __init__(self, spec: Optional[RunSpec] = None, /, **spec_kwargs) -> None:
        if spec is None:
            spec = RunSpec(**spec_kwargs)
        elif spec_kwargs:
            raise TypeError("pass either a RunSpec or keyword fields, not both")
        self.spec = spec

        languages.get(spec.language)  # raises UnknownPluginError with the known list
        self.task: Task = tasks.create(spec.task)
        representation_cls = representations.get(spec.representation)
        learner_cls = learners.get(spec.learner)
        self._validate(representation_cls, learner_cls)

        extraction = dict(spec.extraction)
        default_length, default_width = self.task.default_params(spec.language)
        extraction.setdefault("max_length", default_length)
        extraction.setdefault("max_width", default_width)
        self.representation: Representation = representation_cls(extraction)
        self.learner: Learner = learner_cls(spec)
        # Path-based representations intern features into a private
        # FeatureSpace; the learner is told about it so its serialized
        # state can carry the vocab (and so ids stay meaningful on load).
        binder = getattr(self.learner, "bind_space", None)
        if binder is not None:
            binder(self.space)
        self.stats = PipelineStats()
        #: The opened binary artifact backing this pipeline, when it was
        #: loaded from a ``pigeon-model/1`` file (None otherwise).
        self.artifact = None

    @property
    def space(self):
        """The representation's feature space (None for string-token reps)."""
        return getattr(self.representation, "space", None)

    @property
    def service(self):
        """The representation's extraction service, when it has one."""
        return getattr(self.representation, "service", None)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self, representation_cls, learner_cls) -> None:
        spec = self.spec
        if self.task.languages is not None and spec.language not in self.task.languages:
            raise UnsupportedSpecError(
                f"task {spec.task!r} supports languages {self.task.languages}; "
                f"got {spec.language!r}"
            )
        view = learner_cls.consumes
        if view not in representation_cls.provides:
            raise UnsupportedSpecError(
                f"learner {spec.learner!r} consumes the {view!r} view, but "
                f"representation {spec.representation!r} provides {representation_cls.provides}"
            )
        if view not in self.task.views:
            raise UnsupportedSpecError(
                f"learner {spec.learner!r} consumes the {view!r} view, but "
                f"task {spec.task!r} supports {self.task.views}"
            )
        supported_tasks = getattr(representation_cls, "tasks", None)
        if supported_tasks is not None and spec.task not in supported_tasks:
            raise UnsupportedSpecError(
                f"representation {spec.representation!r} supports tasks "
                f"{supported_tasks}; got {spec.task!r}"
            )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def parse(self, source: str, name: str = "") -> ParsedProgram:
        """Parse one source text with the spec's language frontend."""
        return ParsedProgram(
            language=self.spec.language,
            source=source,
            ast=parse_source(self.spec.language, source),
            name=name,
        )

    def view(self, program: ParsedProgram):
        """The feature view of one program that this cell's learner consumes."""
        if self.learner.consumes == GRAPH_VIEW:
            return self.representation.graph(self.task, program, name=program.name)
        return self.representation.contexts(self.task, program)

    def fit_views(self, views: Sequence) -> LearnerStats:
        """Fit the learner on pre-built views (used by the eval harness)."""
        return self.learner.fit(list(views))

    # ------------------------------------------------------------------
    # The PIGEON workflow
    # ------------------------------------------------------------------
    def train(
        self,
        sources: Optional[Sequence[str]] = None,
        *,
        shards: Optional[object] = None,
        merged: Optional[object] = None,
        cache_shards: int = 2,
        checkpoint: Optional[str] = None,
        resume: bool = False,
    ) -> PipelineStats:
        """Train from source texts, or stream a sharded corpus.

        ``sources`` is the in-memory path: every file's feature view is
        built (and held) before the learner fits.  ``shards`` accepts a
        shard directory, a list of shard paths, or an opened
        :class:`~repro.shards.ShardSet` built by ``pigeon shard build``
        (or :func:`repro.shards.build_spec_shards`) for this same spec;
        the shard-local vocabs are merged into one global space and the
        learner fits on a :class:`~repro.shards.ShardedCorpus` that
        decodes one shard at a time -- same model, bit for bit.  The CRF
        learner never materialises the corpus (graphs decode per access,
        a few shards resident); the word2vec learner streams the *views*
        but still accumulates the derived (label, token) pair list,
        which is compact relative to the graphs it replaces yet grows
        with corpus size.  ``cache_shards`` bounds how many shard
        payloads stay resident during streamed training: more memory,
        fewer re-parses under the CRF trainer's shuffled epochs.
        ``merged`` skips the vocab merge by reusing a
        :class:`~repro.shards.MergedSpace` (or a manifest file written
        by ``pigeon shard merge --out``); its provenance is checked
        against the shard digests.

        ``checkpoint`` names a file the trainer atomically rewrites at
        every epoch boundary; with ``resume=True`` an existing
        checkpoint (verified against this spec and a fingerprint of the
        training data) is restored and training continues from the last
        completed epoch, producing a model bit-identical to the
        uninterrupted run.
        """
        if (sources is None) == (shards is None):
            raise TypeError("pass either sources or shards=, not both")
        if merged is not None and shards is None:
            raise TypeError("merged= only applies to shards= training")
        if resume and checkpoint is None:
            raise TypeError("resume=True needs a checkpoint= path")
        if shards is not None:
            return self._train_from_shards(
                shards, merged, cache_shards, checkpoint=checkpoint, resume=resume
            )
        sources = list(sources)
        ckpt = self._open_checkpoint(
            checkpoint, resume, lambda: corpus_fingerprint(sources)
        )
        programs = [self.parse(source, name=f"train:{i}") for i, source in enumerate(sources)]
        views = [self.view(program) for program in programs]
        learner_stats = (
            self.learner.fit(views)
            if ckpt is None
            else self.learner.fit(views, checkpoint=ckpt)
        )
        self.stats = PipelineStats(
            files_trained=len(programs),
            elements_trained=sum(len(view) for view in views),
            parameters=learner_stats.parameters,
            train_seconds=learner_stats.train_seconds,
        )
        return self.stats

    def _open_checkpoint(self, path, resume, fingerprint):
        """Build the :class:`TrainerCheckpoint` for this run (or None)."""
        if path is None:
            return None
        return TrainerCheckpoint.open(
            os.fspath(path),
            spec=self.spec.to_dict(),
            corpus=fingerprint(),
            resume=resume,
        )

    def _train_from_shards(
        self,
        shards: object,
        merged: Optional[object] = None,
        cache_shards: int = 2,
        checkpoint: Optional[str] = None,
        resume: bool = False,
    ) -> PipelineStats:
        """Streamed training over a sharded corpus (see :meth:`train`)."""
        from ..shards import MergedSpace, ShardSet, ShardedCorpus, load_manifest
        from ..shards.build import extraction_meta
        from ..shards.format import ShardMismatchError

        shard_set = ShardSet.open(shards)
        spec_dict = shard_set.spec_dict
        if spec_dict is None:
            raise ShardMismatchError(
                f"shards of kind {shard_set.kind!r} carry no spec; training "
                f"needs view shards from 'pigeon shard build' (not raw "
                f"extraction shards)"
            )
        for axis in ("language", "task", "representation", "learner"):
            ours = getattr(self.spec, axis)
            theirs = spec_dict.get(axis)
            if theirs != ours:
                raise ShardMismatchError(
                    f"shards were built for {axis}={theirs!r} but this "
                    f"pipeline is {axis}={ours!r} ({self.spec.cell()})"
                )
        if self.space is None:
            raise ShardMismatchError(
                f"representation {self.spec.representation!r} has no feature "
                f"space; sharded training needs a path-based representation"
            )
        ours_extraction = extraction_meta(self.service.config)
        theirs_extraction = shard_set.meta.get("extraction")
        if theirs_extraction != ours_extraction:
            raise ShardMismatchError(
                f"shards were extracted under {theirs_extraction!r} but this "
                f"pipeline resolves to {ours_extraction!r}; rebuild the "
                f"shards or align the spec's extraction options"
            )

        started = time.perf_counter()
        if merged is not None and not isinstance(merged, MergedSpace):
            merged = load_manifest(os.fspath(merged), shards=shard_set)
        corpus = ShardedCorpus(shard_set, merged=merged, cache_shards=cache_shards)
        # Adopt the merged global space: the learner's ids must mean the
        # same strings as the corpus's, and predict-time extraction must
        # intern new programs into the very same space.
        self.representation.bind_space(corpus.space)
        binder = getattr(self.learner, "bind_space", None)
        if binder is not None:
            binder(corpus.space)
        ckpt = self._open_checkpoint(
            checkpoint, resume, lambda: shards_fingerprint(shard_set)
        )
        learner_stats = (
            self.learner.fit(corpus)
            if ckpt is None
            else self.learner.fit(corpus, checkpoint=ckpt)
        )
        self.stats = PipelineStats(
            files_trained=len(corpus),
            elements_trained=corpus.elements,
            parameters=learner_stats.parameters,
            train_seconds=time.perf_counter() - started,
        )
        return self.stats

    def predict(self, source: str) -> Dict[str, str]:
        """element key -> predicted label for one program."""
        return self.learner.predict(self.view(self.parse(source)))

    def suggest(self, source: str, k: int = 5) -> Dict[str, List[Tuple[str, float]]]:
        """element key -> top-k (label, score) suggestions."""
        return self.learner.suggest(self.view(self.parse(source)), k=k)

    def rename(self, source: str) -> str:
        """Predict names and return the renamed program text.

        The paper's deobfuscation workflow (Figs. 7-8): predict a name
        for every renameable element, substitute the predictions on the
        tree, and print it back.  Available for renameable tasks in the
        languages with a source printer (JavaScript, Python).
        """
        from ..lang.printing import apply_renaming, print_source

        if not getattr(self.task, "renameable", False):
            raise UnsupportedSpecError(
                f"rename() applies to renameable tasks, not {self.spec.task!r}"
            )
        predictions = self.predict(source)
        program = self.parse(source)
        apply_renaming(program.ast, predictions)
        return print_source(program.ast)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def scoring_handle(self) -> "ScoringHandle":
        """A read-only scoring view for the serving layer.

        Freezes this pipeline's :class:`~repro.core.interning.FeatureSpace`
        (after which direct ``train`` is off the table and any attempt to
        intern a new string outside an overlay raises
        :class:`~repro.core.interning.FrozenVocabError`) and returns a
        handle whose ``predict`` / ``suggest`` intern each request through
        a throwaway overlay space.  The shared state is therefore
        immutable under any amount of concurrent traffic, and per-request
        vocab growth is reclaimed when the request finishes.
        """
        return ScoringHandle(self)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str, format: str = "json") -> None:
        """Persist spec + trained learner state to one file.

        ``format="json"`` (the writable default) emits the digest-stamped
        ``pigeon-pipeline/2`` JSON file.  ``format="binary"`` emits a
        ``pigeon-model/1`` artifact (see :mod:`repro.artifacts`): the
        same state packed into mmap-ready numpy sections, which
        :meth:`load` opens with near-zero cold-start and which N serving
        processes on one box share through the OS page cache.
        """
        if not self.learner.trained:
            raise RuntimeError("call train() before save()")
        faults.fire("pipeline.save")
        if format == "binary":
            from ..artifacts import write_state_artifact

            write_state_artifact(
                os.fspath(path),
                self.spec.to_dict(),
                self.spec.learner,
                self.learner.state_dict(),
            )
            return
        if format != "json":
            raise ValueError(f"unknown save format {format!r} (json or binary)")
        payload = {
            "format": PIPELINE_FORMAT,
            "spec": self.spec.to_dict(),
            "learner_state": self.learner.state_dict(),
        }
        # Digest-stamped + atomic: a crash leaves the old model or the
        # complete new one, and Pipeline.load verifies the digest.
        atomic_write_bytes(os.fspath(path), stamped_json_bytes(payload))

    @classmethod
    def load(cls, path: str) -> "Pipeline":
        """Rebuild a trained pipeline saved by :meth:`save`.

        Sniffs the on-disk format -- ``pigeon-model/1`` binary artifacts
        mmap in place (packed read-only weights, shared pages), JSON
        pipelines parse as before -- and produces bit-identical
        predictions and suggestion scores either way.  Torn or corrupt
        files of either format raise
        :class:`~repro.resilience.atomicio.CorruptArtifactError` with a
        recovery hint.
        """
        from ..artifacts.format import is_model_artifact

        if is_model_artifact(path):
            return cls._load_binary(path)
        payload = read_stamped_json(
            path, hint="the saved model is torn -- retrain or restore a backup"
        )
        if not isinstance(payload, dict):
            raise ValueError(f"{path!r} is not a saved pipeline")
        fmt = payload.get("format")
        if fmt == "pigeon-pipeline/1":
            raise ValueError(
                f"{path!r} was saved by a pre-interning release "
                f"(format {fmt!r}); retrain and re-save it with this "
                f"version (expected {PIPELINE_FORMAT!r})"
            )
        if fmt != PIPELINE_FORMAT:
            raise ValueError(
                f"{path!r} is not a saved pipeline (format {fmt!r}; "
                f"expected {PIPELINE_FORMAT!r})"
            )
        pipeline = cls(RunSpec.from_dict(payload["spec"]))
        pipeline.learner.load_state(payload["learner_state"])
        pipeline._rebind_loaded_space()
        return pipeline

    @classmethod
    def _load_binary(cls, path: str) -> "Pipeline":
        """Open a ``pigeon-model/1`` artifact as a trained pipeline.

        The learner adopts packed read-only state whose arrays are
        zero-copy views over the artifact's mapping; the pipeline keeps
        the opened :class:`~repro.artifacts.ModelArtifact` on
        :attr:`artifact` (pinning the mapping and exposing header
        metadata like prune provenance).
        """
        from ..artifacts import ModelArtifact, restore_learner

        artifact = ModelArtifact.open(path)
        pipeline = cls(RunSpec.from_dict(artifact.spec))
        restore_learner(pipeline.learner, artifact)
        pipeline.artifact = artifact
        pipeline._rebind_loaded_space()
        return pipeline

    def _rebind_loaded_space(self) -> None:
        # The learner state carries the feature space its int keys index
        # into; the representation must intern new programs into the SAME
        # space or predict-time ids would not match the trained weights.
        space = getattr(self.learner, "space", None)
        rebind = getattr(self.representation, "bind_space", None)
        if space is not None and rebind is not None:
            rebind(space)


class ScoringHandle:
    """Read-only prediction over a trained pipeline with a frozen space.

    The handle is what a server holds: the trained weights and their
    feature space become immutable at construction, and every scoring
    call builds its feature view against a fresh
    :meth:`~repro.core.interning.FeatureSpace.overlay`, so

    * base ids never shift -- predictions are bit-identical to the
      mutable ``Pipeline.predict`` path (unseen features miss the weight
      tables under either id assignment);
    * nothing a request interns outlives the request -- the resident
      footprint is bounded no matter how much traffic flows through;
    * concurrent readers share nothing mutable except the representation
      instance, which a lock confines to one scoring call at a time
      (scoring is pure-Python CPU work, so the lock costs nothing that
      the GIL was not already charging).
    """

    def __init__(self, pipeline: Pipeline) -> None:
        if not pipeline.learner.trained:
            raise RuntimeError(
                "scoring_handle() needs a trained pipeline: call train() "
                "or Pipeline.load() first"
            )
        self.pipeline = pipeline
        self.spec = pipeline.spec
        self._base_space = pipeline.space
        if self._base_space is not None:
            self._base_space.freeze()
        # Freeze-time compile: the CRF learner packs its weights against
        # the now-frozen base vocab once, and every request (and every
        # throwaway overlay -- overlay ids sit above the packed id range
        # and score 0.0, exactly like the scalar path's unseen labels)
        # reuses that pack instead of re-freezing per call.
        warm = getattr(pipeline.learner, "ensure_compiled", None)
        if warm is not None:
            warm()
        self._lock = threading.Lock()

    @property
    def cell(self) -> str:
        return self.spec.cell()

    @property
    def engine(self) -> Optional[str]:
        """The learner's inference engine name (None when it has none)."""
        return getattr(self.pipeline.learner, "engine", None)

    @property
    def service(self):
        """The underlying extraction service (None for token-stream reps)."""
        return self.pipeline.service

    def extraction_stats(self) -> dict:
        """Extraction counters for the serving ``/stats`` route."""
        service = self.service
        return service.memo_stats() if service is not None else {}

    def fingerprinted(self, source: str) -> Tuple[ParsedProgram, str]:
        """Parse once: the program and its structural AST digest.

        Parsing does not intern, so this is safe outside the scoring
        lock; two sources differing only in layout share a digest, and
        (unlike the 32-bit terminal-sequence ``ast_fingerprint``, which
        only seeds downsampling) structurally different programs never
        do.  The server uses the digest as its response-cache key and,
        on a cache miss, hands the already-parsed program back to
        :meth:`predict` so the source is not parsed twice.
        """
        from ..core.extraction import ast_digest

        program = self.pipeline.parse(source)
        return program, ast_digest(program.ast)

    def fingerprint(self, source: str) -> str:
        """The request's structural AST digest (the response-cache key)."""
        return self.fingerprinted(source)[1]

    def predict(
        self, source: str, program: Optional[ParsedProgram] = None
    ) -> Dict[str, str]:
        """element key -> predicted label (read-only, overlay-interned)."""
        return self._score(source, k=None, program=program)

    def suggest(
        self, source: str, k: int = 5, program: Optional[ParsedProgram] = None
    ) -> Dict[str, List[Tuple[str, float]]]:
        """element key -> top-k (label, score) (read-only, overlay-interned)."""
        return self._score(source, k=k, program=program)

    def _score(
        self, source: str, k: Optional[int], program: Optional[ParsedProgram] = None
    ):
        pipeline = self.pipeline
        if program is None:
            program = pipeline.parse(source)
        with self._lock:
            rebind = getattr(pipeline.representation, "bind_space", None)
            overlaid = self._base_space is not None and rebind is not None
            if overlaid:
                # Rebinding swaps the request's throwaway overlay in; the
                # extractor keeps the *base* halves of its shape/flip
                # caches warm across these rebinds (entries referencing
                # only frozen-base ids mean the same strings under every
                # overlay) and discards only overlay-local entries, so no
                # request-local id ever leaks into shared state.
                rebind(self._base_space.overlay())
            try:
                view = pipeline.view(program)
                if k is None:
                    return pipeline.learner.predict(view)
                return pipeline.learner.suggest(view, k=k)
            finally:
                if overlaid:
                    # Leave the pipeline bound to the frozen base, never
                    # to a request's dead overlay.
                    rebind(self._base_space)
