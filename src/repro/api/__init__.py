"""The registry-driven public API of the reproduction.

Four extension points (languages, tasks, representations, learners) and
one facade (:class:`Pipeline`) that composes a cell of their cross
product from a serializable :class:`RunSpec`.  See the module docstrings
of :mod:`repro.api.protocols` and :mod:`repro.api.pipeline` for the
architecture, and :mod:`repro.registry` for the registry mechanism.
"""

from ..registry import Registry, UnknownPluginError
from .learners import CrfLearner, Word2vecLearner, learners
from .pipeline import PIPELINE_FORMAT, Pipeline, PipelineStats, ScoringHandle
from .protocols import (
    CONTEXTS_VIEW,
    GRAPH_VIEW,
    ContextMap,
    Learner,
    LearnerStats,
    ParsedProgram,
    Representation,
    Task,
    UnsupportedSpecError,
)
from .representations import (
    AstPathsRepresentation,
    NoPathsRepresentation,
    TokenContextRepresentation,
    representations,
)
from .spec import RunSpec
from .tasks import DEFAULT_PARAMS, tasks

__all__ = [
    "CONTEXTS_VIEW",
    "GRAPH_VIEW",
    "ContextMap",
    "CrfLearner",
    "DEFAULT_PARAMS",
    "AstPathsRepresentation",
    "Learner",
    "LearnerStats",
    "NoPathsRepresentation",
    "PIPELINE_FORMAT",
    "ParsedProgram",
    "Pipeline",
    "PipelineStats",
    "Registry",
    "Representation",
    "RunSpec",
    "ScoringHandle",
    "Task",
    "TokenContextRepresentation",
    "UnknownPluginError",
    "UnsupportedSpecError",
    "Word2vecLearner",
    "learners",
    "representations",
    "tasks",
]
