"""Local type inference for the Java frontend.

The paper's full-type task (Sec. 5.3.3) predicts the *fully qualified*
type of expressions (``com.mysql.jdbc.Connection``, not ``Connection``)
and evaluates only on expressions "that could be solved by a global type
inference engine".  This module plays that oracle role for our corpus:
it resolves simple type names to fully-qualified names via the file's
imports plus a built-in ``java.lang``/``java.util`` table, and propagates
types through expressions with standard Java rules (numeric promotion,
string concatenation, boolean operators, collection generics).

Inferred types are attached as ``meta["type"]`` to expression nodes; the
type-prediction task reads them as ground truth and as the evaluation
filter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...core.ast_model import Node

#: Well-known classes resolvable without an import statement (java.lang)
#: or via the standard imports our corpus emits.
BUILTIN_TYPES: Dict[str, str] = {
    "String": "java.lang.String",
    "Object": "java.lang.Object",
    "Integer": "java.lang.Integer",
    "Long": "java.lang.Long",
    "Double": "java.lang.Double",
    "Float": "java.lang.Float",
    "Boolean": "java.lang.Boolean",
    "Character": "java.lang.Character",
    "Byte": "java.lang.Byte",
    "Short": "java.lang.Short",
    "Math": "java.lang.Math",
    "System": "java.lang.System",
    "StringBuilder": "java.lang.StringBuilder",
    "Exception": "java.lang.Exception",
    "RuntimeException": "java.lang.RuntimeException",
    "IllegalArgumentException": "java.lang.IllegalArgumentException",
    "IllegalStateException": "java.lang.IllegalStateException",
    "Thread": "java.lang.Thread",
    "Runnable": "java.lang.Runnable",
    "List": "java.util.List",
    "ArrayList": "java.util.ArrayList",
    "LinkedList": "java.util.LinkedList",
    "Map": "java.util.Map",
    "HashMap": "java.util.HashMap",
    "TreeMap": "java.util.TreeMap",
    "Set": "java.util.Set",
    "HashSet": "java.util.HashSet",
    "TreeSet": "java.util.TreeSet",
    "Iterator": "java.util.Iterator",
    "Collection": "java.util.Collection",
    "Collections": "java.util.Collections",
    "Arrays": "java.util.Arrays",
    "Optional": "java.util.Optional",
    "Random": "java.util.Random",
    "Scanner": "java.util.Scanner",
    "Objects": "java.util.Objects",
    "IOException": "java.io.IOException",
    "File": "java.io.File",
    "BufferedReader": "java.io.BufferedReader",
    "FileReader": "java.io.FileReader",
    "PrintWriter": "java.io.PrintWriter",
    "InputStream": "java.io.InputStream",
    "OutputStream": "java.io.OutputStream",
}

_PRIMITIVES = {"int", "long", "double", "float", "boolean", "char", "byte", "short", "void"}

#: Return types of well-known instance methods, keyed by the *erased* full
#: receiver type.  ``"T"``/``"K"``/``"V"`` denote the receiver's generic
#: arguments; ``"T?"`` on a List means element type.
_METHOD_RETURNS: Dict[str, Dict[str, str]] = {
    "java.lang.String": {
        "length": "int",
        "charAt": "char",
        "substring": "java.lang.String",
        "toLowerCase": "java.lang.String",
        "toUpperCase": "java.lang.String",
        "trim": "java.lang.String",
        "replace": "java.lang.String",
        "concat": "java.lang.String",
        "split": "java.lang.String[]",
        "indexOf": "int",
        "isEmpty": "boolean",
        "equals": "boolean",
        "startsWith": "boolean",
        "endsWith": "boolean",
        "contains": "boolean",
        "hashCode": "int",
        "toString": "java.lang.String",
    },
    "java.lang.StringBuilder": {
        "append": "java.lang.StringBuilder",
        "toString": "java.lang.String",
        "length": "int",
        "reverse": "java.lang.StringBuilder",
    },
    "java.util.List": {
        "get": "T",
        "size": "int",
        "isEmpty": "boolean",
        "contains": "boolean",
        "add": "boolean",
        "remove": "T",
        "indexOf": "int",
        "iterator": "java.util.Iterator<T>",
    },
    "java.util.Set": {
        "size": "int",
        "isEmpty": "boolean",
        "contains": "boolean",
        "add": "boolean",
        "iterator": "java.util.Iterator<T>",
    },
    "java.util.Map": {
        "get": "V",
        "put": "V",
        "containsKey": "boolean",
        "containsValue": "boolean",
        "size": "int",
        "isEmpty": "boolean",
        "remove": "V",
        "keySet": "java.util.Set<K>",
    },
    "java.util.Iterator": {"next": "T", "hasNext": "boolean"},
    "java.util.Optional": {"get": "T", "isPresent": "boolean", "orElse": "T"},
    "java.util.Random": {
        "nextInt": "int",
        "nextDouble": "double",
        "nextBoolean": "boolean",
        "nextLong": "long",
    },
    "java.util.Scanner": {
        "nextInt": "int",
        "nextLine": "java.lang.String",
        "next": "java.lang.String",
        "hasNext": "boolean",
        "hasNextInt": "boolean",
    },
    "java.io.BufferedReader": {"readLine": "java.lang.String"},
    "java.io.File": {
        "getName": "java.lang.String",
        "getPath": "java.lang.String",
        "exists": "boolean",
        "isDirectory": "boolean",
        "length": "long",
    },
    "java.lang.Object": {"toString": "java.lang.String", "hashCode": "int", "equals": "boolean"},
}

#: Aliases: concrete collections share the interface method tables.
_METHOD_TABLE_ALIASES = {
    "java.util.ArrayList": "java.util.List",
    "java.util.LinkedList": "java.util.List",
    "java.util.HashSet": "java.util.Set",
    "java.util.TreeSet": "java.util.Set",
    "java.util.HashMap": "java.util.Map",
    "java.util.TreeMap": "java.util.Map",
}

#: Static method return types (receiver is a class name).
_STATIC_RETURNS: Dict[str, Dict[str, str]] = {
    "java.lang.Math": {
        "abs": "int",
        "max": "int",
        "min": "int",
        "sqrt": "double",
        "pow": "double",
        "floor": "double",
        "ceil": "double",
        "random": "double",
    },
    "java.lang.String": {"valueOf": "java.lang.String", "format": "java.lang.String"},
    "java.lang.Integer": {"parseInt": "int", "valueOf": "java.lang.Integer"},
    "java.lang.Double": {"parseDouble": "double", "valueOf": "java.lang.Double"},
    "java.lang.Boolean": {"parseBoolean": "boolean"},
    "java.util.Arrays": {"asList": "java.util.List", "toString": "java.lang.String"},
    "java.util.Objects": {"equals": "boolean", "hashCode": "int"},
    "java.util.Collections": {"emptyList": "java.util.List", "sort": "void"},
}


class TypeEnvironment:
    """Per-file type resolution context."""

    def __init__(self, package: str, imports: Dict[str, str], local_classes: Dict[str, str]):
        self.package = package
        self.imports = imports
        self.local_classes = local_classes

    def resolve(self, simple_name: str) -> Optional[str]:
        """Fully qualify a simple type name; None when unknown."""
        if simple_name in _PRIMITIVES:
            return simple_name
        if "." in simple_name:  # already qualified
            return simple_name
        if simple_name in self.imports:
            return self.imports[simple_name]
        if simple_name in self.local_classes:
            return self.local_classes[simple_name]
        if simple_name in BUILTIN_TYPES:
            return BUILTIN_TYPES[simple_name]
        return None


def _erase(full_type: str) -> str:
    """Erase generic arguments: ``java.util.List<...>`` -> ``java.util.List``."""
    idx = full_type.find("<")
    return full_type if idx < 0 else full_type[:idx]


def _generic_args(full_type: str) -> List[str]:
    """Top-level generic arguments of a parameterised type."""
    idx = full_type.find("<")
    if idx < 0 or not full_type.endswith(">"):
        return []
    inner = full_type[idx + 1 : -1]
    args: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in inner:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if current:
        args.append("".join(current).strip())
    return args


def type_node_to_name(node: Node, env: TypeEnvironment) -> Optional[str]:
    """Convert a parsed type node into a fully-qualified type string."""
    if node.kind == "PrimitiveType":
        return node.value
    if node.kind == "ClassType":
        return env.resolve(node.value or "")
    if node.kind == "GenericType":
        base = type_node_to_name(node.children[0], env)
        if base is None:
            return None
        args = []
        for child in node.children[1:]:
            arg = type_node_to_name(child, env)
            if arg is None:
                return None
            args.append(arg)
        return f"{base}<{', '.join(args)}>" if args else base
    if node.kind == "ArrayType":
        inner = type_node_to_name(node.children[0], env)
        return None if inner is None else f"{inner}[]"
    return None


def resolve_full_type(simple_name: str, imports: Optional[Dict[str, str]] = None) -> Optional[str]:
    """Public helper: fully qualify a simple type name."""
    env = TypeEnvironment("", imports or {}, {})
    return env.resolve(simple_name)


def _collect_environment(root: Node) -> TypeEnvironment:
    package = ""
    imports: Dict[str, str] = {}
    local_classes: Dict[str, str] = {}
    for child in root.children:
        if child.kind == "PackageDeclaration":
            package = child.children[0].value or ""
        elif child.kind == "ImportDeclaration":
            fqn = child.children[0].value or ""
            simple = fqn.rsplit(".", 1)[-1]
            if simple != "*":
                imports[simple] = fqn
        elif child.kind in ("ClassDeclaration", "InterfaceDeclaration"):
            name = child.children[0].value or ""
            local_classes[name] = f"{package}.{name}" if package else name
    return TypeEnvironment(package, imports, local_classes)


def _collect_members(root: Node, env: TypeEnvironment) -> Dict[str, Dict[str, str]]:
    """Per-class member type tables: fields and method return types."""
    members: Dict[str, Dict[str, str]] = {}
    for class_node in root.children:
        if class_node.kind not in ("ClassDeclaration", "InterfaceDeclaration"):
            continue
        class_name = class_node.children[0].value or ""
        table: Dict[str, str] = {}
        for member in class_node.children:
            if member.kind == "FieldDeclaration":
                field_type = type_node_to_name(member.children[0], env)
                if field_type:
                    for declarator in member.find("VariableDeclarator"):
                        table[f"field:{declarator.children[0].value}"] = field_type
            elif member.kind == "MethodDeclaration":
                ret = type_node_to_name(member.children[0], env)
                name = member.children[1].value or ""
                if ret:
                    table[f"method:{name}"] = ret
        members[class_name] = table
    return members


class _TypeInferrer:
    def __init__(self, env: TypeEnvironment, members: Dict[str, Dict[str, str]]):
        self.env = env
        self.members = members

    def infer_method(self, class_name: str, method: Node) -> None:
        locals_: Dict[str, str] = {}
        table = self.members.get(class_name, {})

        def declared_type(node: Node) -> Optional[str]:
            return type_node_to_name(node, self.env)

        def visit(node: Node) -> None:
            if node.kind == "Parameter":
                t = declared_type(node.children[0])
                if t:
                    locals_[node.children[1].value or ""] = t
                    node.children[1].meta["type"] = t
            elif node.kind == "VariableDeclarationExpr":
                t = declared_type(node.children[0])
                if t:
                    for declarator in node.children:
                        if declarator.kind == "VariableDeclarator":
                            locals_[declarator.children[0].value or ""] = t
                            declarator.children[0].meta["type"] = t
            for child in node.children:
                visit(child)
            # Post-order: children types are known when typing the parent.
            t = self.expression_type(node, locals_, table)
            if t is not None:
                node.meta["type"] = t

        visit(method)

    # ------------------------------------------------------------------
    def expression_type(
        self, node: Node, locals_: Dict[str, str], table: Dict[str, str]
    ) -> Optional[str]:
        kind = node.kind
        if kind == "NameExpr":
            name = node.value or ""
            if name in locals_:
                return locals_[name]
            return table.get(f"field:{name}")
        if kind == "IntegerLiteral":
            return "long" if (node.value or "").rstrip("lL") != node.value else "int"
        if kind == "DoubleLiteral":
            return "double"
        if kind == "StringLiteral":
            return "java.lang.String"
        if kind == "CharLiteral":
            return "char"
        if kind == "BooleanLiteral":
            return "boolean"
        if kind == "ObjectCreationExpr":
            return type_node_to_name(node.children[0], self.env)
        if kind == "ArrayCreationExpr":
            base = type_node_to_name(node.children[0], self.env)
            return f"{base}[]" if base else None
        if kind == "CastExpr":
            return type_node_to_name(node.children[0], self.env)
        if kind == "InstanceOfExpr":
            return "boolean"
        if kind == "ConditionalExpr" and len(node.children) == 3:
            t1 = node.children[1].meta.get("type")
            t2 = node.children[2].meta.get("type")
            return t1 if t1 == t2 else t1 or t2
        if kind == "ArrayAccessExpr":
            arr = node.children[0].meta.get("type")
            if arr and arr.endswith("[]"):
                return arr[:-2]
            return None
        if kind.startswith("AssignExpr"):
            return node.children[0].meta.get("type")
        if kind.startswith("PostfixExpr") or kind in ("UnaryExpr++", "UnaryExpr--"):
            return node.children[0].meta.get("type")
        if kind == "UnaryExpr!":
            return "boolean"
        if kind in ("UnaryExpr-", "UnaryExpr+", "UnaryExpr~"):
            return node.children[0].meta.get("type")
        if kind.startswith("BinaryExpr"):
            op = kind[len("BinaryExpr") :]
            left = node.children[0].meta.get("type")
            right = node.children[1].meta.get("type")
            if op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
                return "boolean"
            if op == "+" and ("java.lang.String" in (left, right)):
                return "java.lang.String"
            return _numeric_promote(left, right)
        if kind == "MethodCallExpr":
            return self._method_call_type(node, table)
        if kind == "FieldAccessExpr":
            receiver = node.children[0]
            member = node.children[1].value or ""
            if receiver.kind == "ThisExpr":
                return table.get(f"field:{member}")
            rtype = receiver.meta.get("type")
            if rtype and rtype.endswith("[]") and member == "length":
                return "int"
            return None
        if kind == "ThisExpr":
            return None  # the enclosing class type; not needed by the task
        return None

    def _method_call_type(self, node: Node, table: Dict[str, str]) -> Optional[str]:
        children = node.children
        # Unscoped call: first child is the SimpleName.
        if children[0].kind == "SimpleName":
            return table.get(f"method:{children[0].value}")
        receiver, name_node = children[0], children[1]
        method = name_node.value or ""
        if receiver.kind == "ThisExpr":
            return table.get(f"method:{method}")
        # Static call on a known class name.
        if receiver.kind == "NameExpr" and receiver.meta.get("type") is None:
            fqn = self.env.resolve(receiver.value or "")
            if fqn and fqn in _STATIC_RETURNS:
                return _STATIC_RETURNS[fqn].get(method)
            return None
        rtype = receiver.meta.get("type")
        if rtype is None:
            return None
        erased = _erase(rtype)
        erased = _METHOD_TABLE_ALIASES.get(erased, erased)
        returns = _METHOD_RETURNS.get(erased)
        if returns is None or method not in returns:
            return None
        ret = returns[method]
        args = _generic_args(rtype)
        if ret == "T":
            return args[0] if args else "java.lang.Object"
        if ret == "K":
            return args[0] if args else "java.lang.Object"
        if ret == "V":
            return args[1] if len(args) > 1 else "java.lang.Object"
        if "<T>" in ret:
            return ret.replace("<T>", f"<{args[0]}>" if args else "")
        if "<K>" in ret:
            return ret.replace("<K>", f"<{args[0]}>" if args else "")
        return ret


def _numeric_promote(left: Optional[str], right: Optional[str]) -> Optional[str]:
    order = ("double", "float", "long", "int", "short", "char", "byte")
    for t in order:
        if left == t or right == t:
            return t
    return None


def infer_types(root: Node) -> None:
    """Annotate every typeable expression of a compilation unit."""
    env = _collect_environment(root)
    members = _collect_members(root, env)
    inferrer = _TypeInferrer(env, members)
    for class_node in root.children:
        if class_node.kind not in ("ClassDeclaration", "InterfaceDeclaration"):
            continue
        class_name = class_node.children[0].value or ""
        for member in class_node.children:
            if member.kind in ("MethodDeclaration", "ConstructorDeclaration"):
                inferrer.infer_method(class_name, member)
