"""Java frontend (JavaParser-style ASTs) with a local type oracle."""

from .parser import JavaFrontend, parse_java
from .types import infer_types, resolve_full_type

__all__ = ["JavaFrontend", "parse_java", "infer_types", "resolve_full_type"]
