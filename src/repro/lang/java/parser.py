"""Recursive-descent parser for a Java subset.

Node kinds mirror JavaParser (the parser the paper used for Java):
``CompilationUnit``, ``ClassDeclaration``, ``MethodDeclaration``,
``VariableDeclarator``, ``MethodCallExpr``, ``NameExpr`` and so on.
Operator-bearing nodes embed the operator in the kind (``BinaryExpr==``,
``AssignExpr=``, ``UnaryExpr!``) so paths stay discriminative, exactly as
the UglifyJS-style kinds do for JavaScript.

Statement bodies are flattened into their parent construct (no
``BlockStmt`` wrapper), keeping path lengths comparable to the paper's
tuned ``max_length`` of 6 for Java.

After parsing, :func:`resolve_java_bindings` marks identifier terminals
with occurrence-grouping bindings, and :func:`repro.lang.java.types
.infer_types` annotates expressions with their inferred full types (the
ground-truth oracle for the full-type prediction task of Sec. 5.3.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...core.ast_model import Ast, Node
from ..base import ParseError
from ..lexing import CHAR, EOF, IDENT, KEYWORD, NUMBER, OP, STRING, Lexer, TokenStream, expect_close_angle

_KEYWORDS = frozenset(
    """
    package import public private protected static final abstract class
    interface extends implements void int long double float boolean char byte
    short new return if else while do for break continue throw throws try
    catch finally this super true false null instanceof switch case default
    """.split()
)

_MODIFIERS = ("public", "private", "protected", "static", "final", "abstract")
_PRIMITIVES = ("int", "long", "double", "float", "boolean", "char", "byte", "short", "void")
_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")


class _JavaParser:
    def __init__(self, source: str) -> None:
        tokens = Lexer(source, _KEYWORDS, "java").tokenize()
        self.ts = TokenStream(tokens, "java")

    # ------------------------------------------------------------------
    # Compilation unit
    # ------------------------------------------------------------------
    def parse_compilation_unit(self) -> Node:
        ts = self.ts
        unit = Node("CompilationUnit")
        if ts.current.is_keyword("package"):
            ts.advance()
            name = self.parse_qualified_name()
            ts.expect_op(";")
            unit.add_child(Node("PackageDeclaration", children=[Node("Name", value=name)]))
        while ts.current.is_keyword("import"):
            ts.advance()
            name = self.parse_qualified_name(allow_star=True)
            ts.expect_op(";")
            unit.add_child(Node("ImportDeclaration", children=[Node("Name", value=name)]))
        while not ts.at_end():
            unit.add_child(self.parse_type_declaration())
        return unit

    def parse_qualified_name(self, allow_star: bool = False) -> str:
        ts = self.ts
        parts = [ts.expect_ident().text]
        while ts.current.is_op("."):
            ts.advance()
            if allow_star and ts.current.is_op("*"):
                ts.advance()
                parts.append("*")
                break
            parts.append(ts.expect_ident().text)
        return ".".join(parts)

    def parse_modifiers(self) -> List[str]:
        mods = []
        while self.ts.current.is_keyword(*_MODIFIERS):
            mods.append(self.ts.advance().text)
        return mods

    def parse_type_declaration(self) -> Node:
        ts = self.ts
        self.parse_modifiers()
        is_interface = False
        if ts.match_keyword("interface"):
            is_interface = True
        else:
            ts.expect_keyword("class")
        name = ts.expect_ident().text
        kind = "InterfaceDeclaration" if is_interface else "ClassDeclaration"
        node = Node(kind, children=[Node("SimpleName", value=name, meta={"id_kind": "class"})])
        if ts.match_keyword("extends"):
            node.add_child(Node("ExtendedType", children=[self.parse_type()]))
        if ts.match_keyword("implements"):
            impl = Node("ImplementedTypes")
            while True:
                impl.add_child(self.parse_type())
                if not ts.match_op(","):
                    break
            node.add_child(impl)
        ts.expect_op("{")
        while not ts.current.is_op("}"):
            if ts.at_end():
                raise ts.error("unterminated class body")
            node.add_child(self.parse_member(class_name=name))
        ts.expect_op("}")
        return node

    def parse_member(self, class_name: str) -> Node:
        ts = self.ts
        self.parse_modifiers()
        # Constructor: ClassName '('.
        if ts.current.kind == IDENT and ts.current.text == class_name and ts.peek().is_op("("):
            name_tok = ts.advance()
            node = Node(
                "ConstructorDeclaration",
                children=[Node("SimpleName", value=name_tok.text, meta={"id_kind": "method"})],
            )
            self.parse_parameters_into(node)
            self.skip_throws()
            self.parse_body_into(node)
            return node
        type_node = self.parse_type()
        name_tok = ts.expect_ident()
        if ts.current.is_op("("):
            node = Node(
                "MethodDeclaration",
                children=[
                    type_node,
                    Node("SimpleName", value=name_tok.text, meta={"id_kind": "method"}),
                ],
            )
            self.parse_parameters_into(node)
            self.skip_throws()
            if ts.match_op(";"):  # abstract / interface method
                return node
            self.parse_body_into(node)
            return node
        # Field declaration (possibly multiple declarators).
        node = Node("FieldDeclaration", children=[type_node])
        declarator = Node(
            "VariableDeclarator",
            children=[Node("SimpleName", value=name_tok.text, meta={"id_kind": "field"})],
        )
        if ts.match_op("="):
            declarator.add_child(self.parse_expression())
        node.add_child(declarator)
        while ts.match_op(","):
            more = ts.expect_ident()
            declarator = Node(
                "VariableDeclarator",
                children=[Node("SimpleName", value=more.text, meta={"id_kind": "field"})],
            )
            if ts.match_op("="):
                declarator.add_child(self.parse_expression())
            node.add_child(declarator)
        ts.expect_op(";")
        return node

    def parse_parameters_into(self, node: Node) -> None:
        ts = self.ts
        ts.expect_op("(")
        while not ts.current.is_op(")"):
            param_type = self.parse_type()
            param_name = ts.expect_ident()
            node.add_child(
                Node(
                    "Parameter",
                    children=[
                        param_type,
                        Node("SimpleName", value=param_name.text, meta={"id_kind": "param"}),
                    ],
                )
            )
            if not ts.match_op(","):
                break
        ts.expect_op(")")

    def skip_throws(self) -> None:
        ts = self.ts
        if ts.match_keyword("throws"):
            while True:
                self.parse_qualified_name()
                if not ts.match_op(","):
                    break

    def parse_body_into(self, parent: Node) -> None:
        ts = self.ts
        ts.expect_op("{")
        while not ts.current.is_op("}"):
            if ts.at_end():
                raise ts.error("unterminated body")
            parent.add_child(self.parse_statement())
        ts.expect_op("}")

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def parse_type(self) -> Node:
        ts = self.ts
        tok = ts.current
        if tok.is_keyword(*_PRIMITIVES):
            ts.advance()
            node: Node = Node("PrimitiveType", value=tok.text)
        else:
            name = ts.expect_ident().text
            while ts.current.is_op(".") and ts.peek().kind == IDENT and self._dot_is_type_qualifier():
                ts.advance()
                name += "." + ts.expect_ident().text
            base = Node("ClassType", value=name)
            if ts.current.is_op("<") and self._looks_like_type_args():
                ts.advance()
                generic = Node("GenericType", children=[base])
                while not ts.current.is_op(">", ">>", ">>>"):
                    generic.add_child(self.parse_type())
                    if not ts.match_op(","):
                        break
                expect_close_angle(ts)
                node = generic
            else:
                node = base
        while ts.current.is_op("[") and ts.peek().is_op("]"):
            ts.advance()
            ts.advance()
            node = Node("ArrayType", children=[node])
        return node

    def _dot_is_type_qualifier(self) -> bool:
        """Heuristic: ``a.b`` inside a type position is a qualified type."""
        # Only used from parse_type, where a dot always qualifies the name.
        return True

    def _looks_like_type_args(self) -> bool:
        """Lookahead to distinguish ``List<Integer>`` from ``a < b``."""
        ts = self.ts
        depth = 0
        i = ts.pos
        tokens = ts.tokens
        while i < len(tokens):
            tok = tokens[i]
            if tok.kind == EOF:
                return False
            if tok.is_op("<"):
                depth += 1
            elif tok.is_op(">"):
                depth -= 1
                if depth == 0:
                    return True
            elif tok.is_op(">>"):
                depth -= 2
                if depth <= 0:
                    return True
            elif tok.kind in (IDENT, KEYWORD) or tok.is_op(",", ".", "[", "]", "?"):
                pass
            else:
                return False
            i += 1
        return False

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> Node:
        ts = self.ts
        tok = ts.current
        if tok.is_keyword("if"):
            return self.parse_if()
        if tok.is_keyword("while"):
            return self.parse_while()
        if tok.is_keyword("do"):
            return self.parse_do()
        if tok.is_keyword("for"):
            return self.parse_for()
        if tok.is_keyword("return"):
            ts.advance()
            node = Node("ReturnStmt")
            if not ts.current.is_op(";"):
                node.add_child(self.parse_expression())
            ts.expect_op(";")
            return node
        if tok.is_keyword("break"):
            ts.advance()
            ts.expect_op(";")
            return Node("BreakStmt")
        if tok.is_keyword("continue"):
            ts.advance()
            ts.expect_op(";")
            return Node("ContinueStmt")
        if tok.is_keyword("throw"):
            ts.advance()
            node = Node("ThrowStmt", children=[self.parse_expression()])
            ts.expect_op(";")
            return node
        if tok.is_keyword("try"):
            return self.parse_try()
        if tok.is_op("{"):
            block = Node("BlockStmt")
            self.parse_block_into(block)
            return block
        if tok.is_op(";"):
            ts.advance()
            return Node("EmptyStmt")
        # Local variable declaration vs expression statement.
        if self._looks_like_local_declaration():
            node = self.parse_local_declaration()
            ts.expect_op(";")
            return node
        expr = self.parse_expression()
        ts.expect_op(";")
        return expr

    def _looks_like_local_declaration(self) -> bool:
        ts = self.ts
        tok = ts.current
        if tok.is_keyword(*_PRIMITIVES):
            return True
        if tok.kind != IDENT:
            return False
        # IDENT (generic-args)? (array-brackets)? IDENT ...
        i = ts.pos + 1
        tokens = ts.tokens
        # Qualified type name.
        while tokens[i].is_op(".") and tokens[i + 1].kind == IDENT:
            i += 2
        if tokens[i].is_op("<"):
            depth = 0
            while i < len(tokens):
                if tokens[i].is_op("<"):
                    depth += 1
                elif tokens[i].is_op(">"):
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                elif tokens[i].is_op(">>"):
                    depth -= 2
                    if depth <= 0:
                        i += 1
                        break
                elif tokens[i].kind in (IDENT, KEYWORD) or tokens[i].is_op(",", ".", "[", "]", "?"):
                    pass
                else:
                    return False
                i += 1
        while tokens[i].is_op("[") and tokens[i + 1].is_op("]"):
            i += 2
        return tokens[i].kind == IDENT

    def parse_local_declaration(self) -> Node:
        ts = self.ts
        type_node = self.parse_type()
        node = Node("VariableDeclarationExpr", children=[type_node])
        while True:
            name = ts.expect_ident()
            declarator = Node(
                "VariableDeclarator",
                children=[Node("SimpleName", value=name.text, meta={"id_kind": "local"})],
            )
            if ts.match_op("="):
                declarator.add_child(self.parse_expression())
            node.add_child(declarator)
            if not ts.match_op(","):
                break
        return node

    def parse_block_into(self, parent: Node) -> None:
        ts = self.ts
        if ts.match_op("{"):
            while not ts.current.is_op("}"):
                if ts.at_end():
                    raise ts.error("unterminated block")
                parent.add_child(self.parse_statement())
            ts.expect_op("}")
        else:
            parent.add_child(self.parse_statement())

    def parse_if(self) -> Node:
        ts = self.ts
        ts.expect_keyword("if")
        ts.expect_op("(")
        node = Node("IfStmt", children=[self.parse_expression()])
        ts.expect_op(")")
        self.parse_block_into(node)
        if ts.match_keyword("else"):
            else_node = Node("ElseStmt")
            self.parse_block_into(else_node)
            node.add_child(else_node)
        return node

    def parse_while(self) -> Node:
        ts = self.ts
        ts.expect_keyword("while")
        ts.expect_op("(")
        node = Node("WhileStmt", children=[self.parse_expression()])
        ts.expect_op(")")
        self.parse_block_into(node)
        return node

    def parse_do(self) -> Node:
        ts = self.ts
        ts.expect_keyword("do")
        node = Node("DoStmt")
        self.parse_block_into(node)
        ts.expect_keyword("while")
        ts.expect_op("(")
        node.add_child(self.parse_expression())
        ts.expect_op(")")
        ts.expect_op(";")
        return node

    def parse_for(self) -> Node:
        ts = self.ts
        ts.expect_keyword("for")
        ts.expect_op("(")
        # For-each: Type name : expr
        save = ts.pos
        if self._looks_like_local_declaration():
            type_node = self.parse_type()
            name = ts.expect_ident()
            if ts.match_op(":"):
                var = Node(
                    "VariableDeclarationExpr",
                    children=[
                        type_node,
                        Node(
                            "VariableDeclarator",
                            children=[Node("SimpleName", value=name.text, meta={"id_kind": "local"})],
                        ),
                    ],
                )
                node = Node("ForeachStmt", children=[var, self.parse_expression()])
                ts.expect_op(")")
                self.parse_block_into(node)
                return node
            ts.pos = save
        node = Node("ForStmt")
        if not ts.current.is_op(";"):
            if self._looks_like_local_declaration():
                node.add_child(self.parse_local_declaration())
            else:
                node.add_child(self.parse_expression())
        ts.expect_op(";")
        if not ts.current.is_op(";"):
            node.add_child(self.parse_expression())
        ts.expect_op(";")
        if not ts.current.is_op(")"):
            node.add_child(self.parse_expression())
        ts.expect_op(")")
        self.parse_block_into(node)
        return node

    def parse_try(self) -> Node:
        ts = self.ts
        ts.expect_keyword("try")
        node = Node("TryStmt")
        body = Node("TryBody")
        self.parse_block_into(body)
        node.add_child(body)
        while ts.match_keyword("catch"):
            clause = Node("CatchClause")
            ts.expect_op("(")
            ex_type = self.parse_type()
            ex_name = ts.expect_ident()
            clause.add_child(
                Node(
                    "Parameter",
                    children=[
                        ex_type,
                        Node("SimpleName", value=ex_name.text, meta={"id_kind": "local"}),
                    ],
                )
            )
            ts.expect_op(")")
            self.parse_block_into(clause)
            node.add_child(clause)
        if ts.match_keyword("finally"):
            fin = Node("FinallyBlock")
            self.parse_block_into(fin)
            node.add_child(fin)
        return node

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> Node:
        left = self.parse_conditional()
        tok = self.ts.current
        if tok.kind == OP and tok.text in _ASSIGN_OPS:
            op = self.ts.advance().text
            right = self.parse_expression()
            return Node(f"AssignExpr{op}", children=[left, right])
        return left

    def parse_conditional(self) -> Node:
        cond = self.parse_binary(0)
        if self.ts.match_op("?"):
            then = self.parse_expression()
            self.ts.expect_op(":")
            other = self.parse_expression()
            return Node("ConditionalExpr", children=[cond, then, other])
        return cond

    _BINARY_LEVELS = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">=", "instanceof"),
        ("<<", ">>", ">>>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def parse_binary(self, level: int) -> Node:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self.parse_binary(level + 1)
        while True:
            tok = self.ts.current
            if tok.is_keyword("instanceof") and "instanceof" in ops:
                self.ts.advance()
                right = self.parse_type()
                left = Node("InstanceOfExpr", children=[left, right])
                continue
            if tok.kind == OP and tok.text in ops:
                # ``>`` may close generic type args; callers in type context
                # never reach here, so it is safe to treat it as an operator.
                op = self.ts.advance().text
                right = self.parse_binary(level + 1)
                left = Node(f"BinaryExpr{op}", children=[left, right])
            else:
                return left

    def parse_unary(self) -> Node:
        ts = self.ts
        tok = ts.current
        if tok.kind == OP and tok.text in ("!", "-", "+", "~", "++", "--"):
            op = ts.advance().text
            return Node(f"UnaryExpr{op}", children=[self.parse_unary()])
        if tok.is_keyword("new"):
            return self.parse_new()
        # Cast: '(' Type ')' unary -- conservative lookahead.
        if tok.is_op("(") and self._looks_like_cast():
            ts.advance()
            type_node = self.parse_type()
            ts.expect_op(")")
            return Node("CastExpr", children=[type_node, self.parse_unary()])
        return self.parse_postfix()

    def _looks_like_cast(self) -> bool:
        ts = self.ts
        tokens = ts.tokens
        i = ts.pos + 1
        if tokens[i].is_keyword(*_PRIMITIVES):
            return tokens[i + 1].is_op(")")
        if tokens[i].kind != IDENT:
            return False
        j = i + 1
        while tokens[j].is_op(".") and tokens[j + 1].kind == IDENT:
            j += 2
        if not tokens[j].is_op(")"):
            return False
        nxt = tokens[j + 1]
        return nxt.kind in (IDENT, NUMBER, STRING, CHAR) or nxt.is_op("(") or nxt.is_keyword(
            "new", "this"
        )

    def parse_new(self) -> Node:
        ts = self.ts
        ts.expect_keyword("new")
        type_node = self.parse_type()
        if ts.current.is_op("["):
            node = Node("ArrayCreationExpr", children=[type_node])
            while ts.match_op("["):
                if not ts.current.is_op("]"):
                    node.add_child(self.parse_expression())
                ts.expect_op("]")
            return node
        node = Node("ObjectCreationExpr", children=[type_node])
        ts.expect_op("(")
        while not ts.current.is_op(")"):
            node.add_child(self.parse_expression())
            if not ts.match_op(","):
                break
        ts.expect_op(")")
        return self.parse_access_tail(node)

    def parse_postfix(self) -> Node:
        node = self.parse_access_tail(self.parse_primary())
        tok = self.ts.current
        if tok.kind == OP and tok.text in ("++", "--"):
            op = self.ts.advance().text
            return Node(f"PostfixExpr{op}", children=[node])
        return node

    def parse_access_tail(self, node: Node) -> Node:
        ts = self.ts
        while True:
            if ts.current.is_op(".") and ts.peek().kind in (IDENT, KEYWORD):
                ts.advance()
                name_tok = ts.advance()
                if ts.current.is_op("("):
                    call = Node(
                        "MethodCallExpr",
                        children=[
                            node,
                            Node("SimpleName", value=name_tok.text, meta={"id_kind": "method"}),
                        ],
                    )
                    ts.advance()
                    while not ts.current.is_op(")"):
                        call.add_child(self.parse_expression())
                        if not ts.match_op(","):
                            break
                    ts.expect_op(")")
                    node = call
                else:
                    node = Node(
                        "FieldAccessExpr",
                        children=[
                            node,
                            Node("SimpleName", value=name_tok.text, meta={"id_kind": "property"}),
                        ],
                    )
            elif ts.current.is_op("["):
                ts.advance()
                index = self.parse_expression()
                ts.expect_op("]")
                node = Node("ArrayAccessExpr", children=[node, index])
            else:
                return node

    def parse_primary(self) -> Node:
        ts = self.ts
        tok = ts.current
        if tok.kind == IDENT:
            ts.advance()
            if ts.current.is_op("("):
                # Unscoped method call: name(args).
                call = Node(
                    "MethodCallExpr",
                    children=[Node("SimpleName", value=tok.text, meta={"id_kind": "method"})],
                )
                ts.advance()
                while not ts.current.is_op(")"):
                    call.add_child(self.parse_expression())
                    if not ts.match_op(","):
                        break
                ts.expect_op(")")
                return call
            return Node("NameExpr", value=tok.text)
        if tok.kind == NUMBER:
            ts.advance()
            is_float = "." in tok.text or tok.text.rstrip("fFdD") != tok.text
            kind = "DoubleLiteral" if is_float else "IntegerLiteral"
            return Node(kind, value=tok.text)
        if tok.kind == STRING:
            ts.advance()
            return Node("StringLiteral", value=tok.text)
        if tok.kind == CHAR:
            ts.advance()
            return Node("CharLiteral", value=tok.text)
        if tok.is_keyword("true", "false"):
            ts.advance()
            return Node("BooleanLiteral", value=tok.text)
        if tok.is_keyword("null"):
            ts.advance()
            return Node("NullLiteral", value="null")
        if tok.is_keyword("this"):
            ts.advance()
            return Node("ThisExpr", value="this")
        if tok.is_op("("):
            ts.advance()
            expr = self.parse_expression()
            ts.expect_op(")")
            return expr
        raise ts.error(f"unexpected token {tok}")


# ----------------------------------------------------------------------
# Binding resolution
# ----------------------------------------------------------------------


def resolve_java_bindings(root: Node) -> None:
    """Group occurrences of locals/params/fields under shared binding keys.

    Locals and params are scoped per method (constructor); fields per
    class.  ``NameExpr`` terminals are resolved innermost-first; unresolved
    names are marked ``global``.
    """
    class_counter = [0]
    method_counter = [0]

    def visit_class(class_node: Node) -> None:
        class_counter[0] += 1
        cid = class_counter[0]
        fields: Dict[str, str] = {}
        for member in class_node.children:
            if member.kind == "FieldDeclaration":
                for declarator in member.find("VariableDeclarator"):
                    name_node = declarator.children[0]
                    key = f"c{cid}:{name_node.value}"
                    fields[name_node.value or ""] = key
                    name_node.meta["binding"] = key
                    name_node.meta["id_kind"] = "field"
        for member in class_node.children:
            if member.kind in ("MethodDeclaration", "ConstructorDeclaration"):
                visit_method(member, fields)
            elif member.kind in ("ClassDeclaration", "InterfaceDeclaration"):
                visit_class(member)

    def visit_method(method: Node, fields: Dict[str, str]) -> None:
        method_counter[0] += 1
        mid = method_counter[0]
        # name -> (binding key, id_kind at declaration site)
        local_bindings: Dict[str, tuple] = {}

        def declare(name_node: Node, id_kind: str) -> None:
            key = f"m{mid}:{name_node.value}"
            local_bindings[name_node.value or ""] = (key, id_kind)
            name_node.meta["binding"] = key
            name_node.meta["id_kind"] = id_kind

        def visit(node: Node) -> None:
            if node.kind == "Parameter":
                declare(node.children[1], "param")
            elif node.kind == "VariableDeclarationExpr":
                for declarator in node.children:
                    if declarator.kind == "VariableDeclarator":
                        declare(declarator.children[0], "local")
            elif node.kind == "NameExpr":
                name = node.value or ""
                if name in local_bindings:
                    key, kind = local_bindings[name]
                    node.meta["binding"] = key
                    node.meta["id_kind"] = kind
                elif name in fields:
                    node.meta["binding"] = fields[name]
                    node.meta["id_kind"] = "field"
                else:
                    node.meta["binding"] = f"g:{name}"
                    node.meta["id_kind"] = "global"
            for child in node.children:
                visit(child)

        visit(method)

    for node in root.children:
        if node.kind in ("ClassDeclaration", "InterfaceDeclaration"):
            visit_class(node)


class JavaFrontend:
    """PIGEON's Java module."""

    name = "java"

    def parse(self, source: str) -> Ast:
        root = _JavaParser(source).parse_compilation_unit()
        resolve_java_bindings(root)
        from .types import infer_types

        infer_types(root)
        return Ast(root, language="java")


def parse_java(source: str) -> Ast:
    """Parse Java source into a generic AST."""
    return JavaFrontend().parse(source)
