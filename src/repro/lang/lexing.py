"""Shared hand-written lexer infrastructure for the C-family frontends.

The JavaScript, Java and C# frontends all tokenise with :class:`Lexer`,
parameterised by a keyword set and an operator table.  Python source is
handled by the stdlib parser and does not use this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence

from .base import ParseError

# Token categories.
IDENT = "ident"
KEYWORD = "keyword"
NUMBER = "number"
STRING = "string"
CHAR = "char"
OP = "op"
EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    text: str
    line: int
    column: int

    def is_op(self, *texts: str) -> bool:
        return self.kind == OP and self.text in texts

    def is_keyword(self, *texts: str) -> bool:
        return self.kind == KEYWORD and self.text in texts

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


# Multi-character operators, longest first so maximal munch works.  This is
# the union over the three languages; each language simply never emits some
# of them.
_OPERATORS: Sequence[str] = (
    ">>>=",
    "...",
    ">>>",
    "===",
    "!==",
    "<<=",
    ">>=",
    "=>",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "??",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "::",
    "->",
    "?.",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "~",
    "&",
    "|",
    "^",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "@",
)


class Lexer:
    """A maximal-munch lexer for C-family syntax.

    Supports ``//`` and ``/* */`` comments, single/double-quoted strings
    with escapes, decimal/hex/float numbers, identifiers (with ``$`` and
    ``_``), and the shared operator table.
    """

    def __init__(self, source: str, keywords: FrozenSet[str], language: str) -> None:
        self.source = source
        self.keywords = keywords
        self.language = language

    def tokenize(self) -> List[Token]:
        src = self.source
        n = len(src)
        i = 0
        line = 1
        col = 1
        tokens: List[Token] = []

        def error(message: str) -> ParseError:
            return ParseError(f"[{self.language}] {message}", line, col)

        while i < n:
            ch = src[i]
            # -- whitespace ------------------------------------------------
            if ch in " \t\r":
                i += 1
                col += 1
                continue
            if ch == "\n":
                i += 1
                line += 1
                col = 1
                continue
            # -- comments --------------------------------------------------
            if ch == "/" and i + 1 < n and src[i + 1] == "/":
                while i < n and src[i] != "\n":
                    i += 1
                continue
            if ch == "/" and i + 1 < n and src[i + 1] == "*":
                i += 2
                col += 2
                while i + 1 < n and not (src[i] == "*" and src[i + 1] == "/"):
                    if src[i] == "\n":
                        line += 1
                        col = 1
                    else:
                        col += 1
                    i += 1
                if i + 1 >= n:
                    raise error("unterminated block comment")
                i += 2
                col += 2
                continue
            # -- strings ---------------------------------------------------
            if ch in "\"'":
                quote = ch
                start_line, start_col = line, col
                i += 1
                col += 1
                buf: List[str] = []
                while i < n and src[i] != quote:
                    c = src[i]
                    if c == "\n":
                        raise error("unterminated string literal")
                    if c == "\\" and i + 1 < n:
                        buf.append(src[i : i + 2])
                        i += 2
                        col += 2
                        continue
                    buf.append(c)
                    i += 1
                    col += 1
                if i >= n:
                    raise error("unterminated string literal")
                i += 1
                col += 1
                kind = CHAR if quote == "'" and self.language in ("java", "csharp") else STRING
                tokens.append(Token(kind, "".join(buf), start_line, start_col))
                continue
            # -- numbers ---------------------------------------------------
            if ch.isdigit() or (ch == "." and i + 1 < n and src[i + 1].isdigit()):
                start = i
                start_line, start_col = line, col
                if ch == "0" and i + 1 < n and src[i + 1] in "xX":
                    i += 2
                    while i < n and (src[i].isdigit() or src[i] in "abcdefABCDEF"):
                        i += 1
                else:
                    seen_dot = False
                    while i < n and (src[i].isdigit() or (src[i] == "." and not seen_dot)):
                        if src[i] == ".":
                            # Don't consume '.' if it starts a method call
                            # like ``1..toString`` or a range; one dot max.
                            if i + 1 < n and not src[i + 1].isdigit():
                                break
                            seen_dot = True
                        i += 1
                    # Exponent part.
                    if i < n and src[i] in "eE":
                        j = i + 1
                        if j < n and src[j] in "+-":
                            j += 1
                        if j < n and src[j].isdigit():
                            i = j
                            while i < n and src[i].isdigit():
                                i += 1
                # Numeric suffixes (Java/C#: L, f, d, m; JS has none).
                while i < n and src[i] in "lLfFdDmM":
                    i += 1
                text = src[start:i]
                col += i - start
                tokens.append(Token(NUMBER, text, start_line, start_col))
                continue
            # -- identifiers / keywords -------------------------------------
            if ch.isalpha() or ch in "_$":
                start = i
                start_line, start_col = line, col
                while i < n and (src[i].isalnum() or src[i] in "_$"):
                    i += 1
                text = src[start:i]
                col += i - start
                kind = KEYWORD if text in self.keywords else IDENT
                tokens.append(Token(kind, text, start_line, start_col))
                continue
            # -- operators ---------------------------------------------------
            matched = False
            for op in _OPERATORS:
                if src.startswith(op, i):
                    tokens.append(Token(OP, op, line, col))
                    i += len(op)
                    col += len(op)
                    matched = True
                    break
            if matched:
                continue
            raise error(f"unexpected character {ch!r}")

        tokens.append(Token(EOF, "", line, col))
        return tokens


def expect_close_angle(ts: "TokenStream") -> None:
    """Consume one ``>`` closing a generic-argument list.

    ``Map<String, List<Integer>>`` lexes its tail as one ``>>`` token;
    type parsers call this to split it into two closing angles, the same
    trick javac and Roslyn use.
    """
    tok = ts.current
    if tok.is_op(">"):
        ts.advance()
        return
    if tok.is_op(">>"):
        ts.tokens[ts.pos] = Token(OP, ">", tok.line, tok.column + 1)
        return
    if tok.is_op(">>>"):
        ts.tokens[ts.pos] = Token(OP, ">>", tok.line, tok.column + 1)
        return
    raise ts.error(f"expected '>', found {tok}")


class TokenStream:
    """Cursor over a token list with the usual parser conveniences."""

    def __init__(self, tokens: List[Token], language: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.language = language

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def at_end(self) -> bool:
        return self.current.kind == EOF

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def match_op(self, *texts: str) -> bool:
        if self.current.is_op(*texts):
            self.advance()
            return True
        return False

    def match_keyword(self, *texts: str) -> bool:
        if self.current.is_keyword(*texts):
            self.advance()
            return True
        return False

    def expect_op(self, text: str) -> Token:
        tok = self.current
        if not tok.is_op(text):
            raise self.error(f"expected {text!r}, found {tok}")
        return self.advance()

    def expect_keyword(self, text: str) -> Token:
        tok = self.current
        if not tok.is_keyword(text):
            raise self.error(f"expected keyword {text!r}, found {tok}")
        return self.advance()

    def expect_ident(self) -> Token:
        tok = self.current
        if tok.kind != IDENT:
            raise self.error(f"expected identifier, found {tok}")
        return self.advance()

    def error(self, message: str) -> ParseError:
        tok = self.current
        return ParseError(f"[{self.language}] {message}", tok.line, tok.column)
