"""Language frontends: source text -> generic AST (Sec. 5.1)."""

from .base import LanguageFrontend, ParseError, get_frontend, parse_source, supported_languages

__all__ = [
    "LanguageFrontend",
    "ParseError",
    "get_frontend",
    "parse_source",
    "supported_languages",
]
