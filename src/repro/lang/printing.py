"""Source printers: generic AST -> source text, per language.

The inverse of the frontends, over the node-kind vocabulary each frontend
produces.  Printers power the deobfuscation workflow of the paper's
Figs. 7-9: parse a program with stripped names, predict names with the
CRF, substitute them on the tree, and print the renamed program.

Round-tripping (parse . print . parse) preserves tree structure; the
test suite checks this property over whole generated corpora.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.ast_model import Ast, Node


class PrintError(ValueError):
    """Raised when a tree contains a node the printer does not know."""


# ======================================================================
# JavaScript
# ======================================================================

_JS_STATEMENTS = {
    "Var", "If", "While", "Do", "For", "ForIn", "Return", "Break", "Continue",
    "Throw", "Try", "Defun", "Block", "EmptyStatement",
}


def _js_expr(node: Node) -> str:
    kind = node.kind
    if kind in ("SymbolRef", "SymbolVar", "SymbolFunarg", "SymbolDefun",
                "SymbolLambda", "SymbolCatch", "Undefined", "This"):
        return node.value or ""
    if kind == "Number":
        return node.value or "0"
    if kind == "String":
        return '"' + (node.value or "") + '"'
    if kind in ("True", "False", "Null"):
        return node.value or kind.lower()
    if kind.startswith("Assign"):
        op = kind[len("Assign"):]
        return f"{_js_expr(node.children[0])} {op} {_js_expr(node.children[1])}"
    if kind.startswith("Binary"):
        op = kind[len("Binary"):]
        return f"({_js_expr(node.children[0])} {op} {_js_expr(node.children[1])})"
    if kind.startswith("UnaryPrefix"):
        op = kind[len("UnaryPrefix"):]
        spacer = " " if op.isalpha() else ""
        return f"{op}{spacer}{_js_expr(node.children[0])}"
    if kind.startswith("UnaryPostfix"):
        op = kind[len("UnaryPostfix"):]
        return f"{_js_expr(node.children[0])}{op}"
    if kind == "Call":
        callee = _js_expr(node.children[0])
        args = ", ".join(_js_expr(c) for c in node.children[1:])
        return f"{callee}({args})"
    if kind == "New":
        callee = _js_expr(node.children[0])
        args = ", ".join(_js_expr(c) for c in node.children[1:])
        return f"new {callee}({args})"
    if kind == "Dot":
        return f"{_js_expr(node.children[0])}.{node.children[1].value}"
    if kind == "Sub":
        return f"{_js_expr(node.children[0])}[{_js_expr(node.children[1])}]"
    if kind == "Conditional":
        c, t, e = node.children
        return f"({_js_expr(c)} ? {_js_expr(t)} : {_js_expr(e)})"
    if kind == "Seq":
        return ", ".join(_js_expr(c) for c in node.children)
    if kind == "Array":
        return "[" + ", ".join(_js_expr(c) for c in node.children) + "]"
    if kind == "Object":
        parts = [
            f"{kv.children[0].value}: {_js_expr(kv.children[1])}"
            for kv in node.children
        ]
        return "{ " + ", ".join(parts) + " }"
    if kind == "Function":
        return _js_function(node, declaration=False, depth=0).strip()
    raise PrintError(f"unknown JavaScript expression kind {kind!r}")


def _js_function(node: Node, declaration: bool, depth: int) -> str:
    pad = "  " * depth
    idx = 0
    name = ""
    if node.children and node.children[0].kind in ("SymbolDefun", "SymbolLambda"):
        name = node.children[0].value or ""
        idx = 1
    params: List[str] = []
    while idx < len(node.children) and node.children[idx].kind == "SymbolFunarg":
        params.append(node.children[idx].value or "")
        idx += 1
    head = f"{pad}function {name}({', '.join(params)}) {{"
    body = [_js_stmt(child, depth + 1) for child in node.children[idx:]]
    return "\n".join([head] + body + [f"{pad}}}"])


def _js_body(children: List[Node], depth: int) -> List[str]:
    return [_js_stmt(child, depth) for child in children]


def _js_stmt(node: Node, depth: int) -> str:
    pad = "  " * depth
    kind = node.kind
    if kind == "Defun":
        return _js_function(node, declaration=True, depth=depth)
    if kind == "Var":
        defs = []
        for vardef in node.children:
            name = vardef.children[0].value
            if len(vardef.children) > 1:
                defs.append(f"{name} = {_js_expr(vardef.children[1])}")
            else:
                defs.append(str(name))
        return f"{pad}var {', '.join(defs)};"
    if kind == "If":
        cond = _js_expr(node.children[0])
        rest = node.children[1:]
        else_node = rest[-1] if rest and rest[-1].kind == "Else" else None
        body = rest[:-1] if else_node is not None else rest
        lines = [f"{pad}if ({cond}) {{"] + _js_body(list(body), depth + 1)
        if else_node is not None:
            lines.append(f"{pad}}} else {{")
            lines.extend(_js_body(else_node.children, depth + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if kind == "While":
        cond = _js_expr(node.children[0])
        lines = [f"{pad}while ({cond}) {{"]
        lines.extend(_js_body(node.children[1:], depth + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if kind == "Do":
        lines = [f"{pad}do {{"]
        lines.extend(_js_body(node.children[:-1], depth + 1))
        lines.append(f"{pad}}} while ({_js_expr(node.children[-1])});")
        return "\n".join(lines)
    if kind == "For":
        # Children: optional init, optional cond, optional step, body...
        children = list(node.children)
        init = cond = step = ""
        body_start = 0
        if children and children[0].kind == "Var":
            init = _js_stmt(children[0], 0).strip().rstrip(";")
            body_start = 1
        elif children and children[0].kind not in _JS_STATEMENTS:
            # Heuristic: a leading expression is the init clause.
            init = _js_expr(children[0])
            body_start = 1
        if body_start < len(children) and children[body_start].kind not in _JS_STATEMENTS:
            cond = _js_expr(children[body_start])
            body_start += 1
        if body_start < len(children) and children[body_start].kind not in _JS_STATEMENTS:
            step = _js_expr(children[body_start])
            body_start += 1
        lines = [f"{pad}for ({init}; {cond}; {step}) {{"]
        lines.extend(_js_body(children[body_start:], depth + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if kind == "ForIn":
        var = node.children[0]
        var_text = f"var {var.value}" if var.kind == "SymbolVar" else _js_expr(var)
        lines = [f"{pad}for ({var_text} of {_js_expr(node.children[1])}) {{"]
        lines.extend(_js_body(node.children[2:], depth + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if kind == "Return":
        if node.children:
            return f"{pad}return {_js_expr(node.children[0])};"
        return f"{pad}return;"
    if kind == "Break":
        return f"{pad}break;"
    if kind == "Continue":
        return f"{pad}continue;"
    if kind == "Throw":
        return f"{pad}throw {_js_expr(node.children[0])};"
    if kind == "Try":
        lines = [f"{pad}try {{"]
        for part in node.children:
            if part.kind == "TryBody":
                lines.extend(_js_body(part.children, depth + 1))
            elif part.kind == "Catch":
                catch_children = list(part.children)
                name = ""
                if catch_children and catch_children[0].kind == "SymbolCatch":
                    name = catch_children[0].value or ""
                    catch_children = catch_children[1:]
                lines.append(f"{pad}}} catch ({name}) {{")
                lines.extend(_js_body(catch_children, depth + 1))
            elif part.kind == "Finally":
                lines.append(f"{pad}}} finally {{")
                lines.extend(_js_body(part.children, depth + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if kind == "Block":
        lines = [f"{pad}{{"] + _js_body(node.children, depth + 1) + [f"{pad}}}"]
        return "\n".join(lines)
    if kind == "EmptyStatement":
        return f"{pad};"
    # Expression statement.
    return f"{pad}{_js_expr(node)};"


def print_javascript(ast: Ast) -> str:
    """Print a JavaScript AST back to source."""
    return "\n".join(_js_stmt(child, 0) for child in ast.root.children) + "\n"


# ======================================================================
# Python
# ======================================================================


def _py_expr(node: Node) -> str:
    kind = node.kind
    if kind == "Name":
        return node.value or ""
    if kind in ("arg", "SelfArg"):
        return node.value or ""
    if kind == "Num":
        return node.value or "0"
    if kind == "Str":
        return '"' + (node.value or "") + '"'
    if kind == "NameConstant":
        return node.value or "None"
    if kind.startswith("BinOp"):
        op = kind[len("BinOp"):]
        return f"({_py_expr(node.children[0])} {op} {_py_expr(node.children[1])})"
    if kind.startswith("BoolOp"):
        op = kind[len("BoolOp"):]
        return "(" + f" {op} ".join(_py_expr(c) for c in node.children) + ")"
    if kind.startswith("UnaryOp"):
        op = kind[len("UnaryOp"):]
        spacer = " " if op.isalpha() else ""
        return f"{op}{spacer}{_py_expr(node.children[0])}"
    if kind.startswith("Compare") and kind != "CompareChain":
        op = kind[len("Compare"):]
        op = {"isnot": "is not", "notin": "not in"}.get(op, op)
        return f"({_py_expr(node.children[0])} {op} {_py_expr(node.children[1])})"
    if kind == "Call":
        callee = _py_expr(node.children[0])
        parts = []
        for child in node.children[1:]:
            if child.kind == "keyword":
                if child.children[0].kind == "KeywordName":
                    parts.append(
                        f"{child.children[0].value}={_py_expr(child.children[1])}"
                    )
                else:
                    parts.append(f"**{_py_expr(child.children[0])}")
            else:
                parts.append(_py_expr(child))
        return f"{callee}({', '.join(parts)})"
    if kind == "Attribute":
        return f"{_py_expr(node.children[0])}.{node.children[1].value}"
    if kind == "Subscript":
        return f"{_py_expr(node.children[0])}[{_py_expr(node.children[1])}]"
    if kind == "Tuple":
        return ", ".join(_py_expr(c) for c in node.children)
    if kind == "List":
        return "[" + ", ".join(_py_expr(c) for c in node.children) + "]"
    if kind == "Dict":
        halves = node.children
        pairs = [
            f"{_py_expr(halves[i])}: {_py_expr(halves[i + 1])}"
            for i in range(0, len(halves) - 1, 2)
        ]
        return "{" + ", ".join(pairs) + "}"
    raise PrintError(f"unknown Python expression kind {kind!r}")


def _py_block(children: List[Node], depth: int) -> List[str]:
    lines = []
    for child in children:
        lines.extend(_py_stmt(child, depth))
    if not lines:
        lines = ["    " * depth + "pass"]
    return lines


def _py_stmt(node: Node, depth: int) -> List[str]:
    pad = "    " * depth
    kind = node.kind
    if kind == "FunctionDef":
        name = node.children[0].value
        params = [
            c.value or "" for c in node.children if c.kind in ("arg", "SelfArg")
        ]
        body = [
            c
            for c in node.children
            if c.kind not in ("FunctionName", "arg", "SelfArg", "Default")
        ]
        return [f"{pad}def {name}({', '.join(params)}):"] + _py_block(body, depth + 1)
    if kind == "Assign":
        targets = node.children[:-1]
        value = node.children[-1]
        lhs = " = ".join(_py_expr(t) for t in targets)
        return [f"{pad}{lhs} = {_py_expr(value)}"]
    if kind.startswith("AugAssign"):
        op = kind[len("AugAssign"):]
        return [f"{pad}{_py_expr(node.children[0])} {op}= {_py_expr(node.children[1])}"]
    if kind == "If":
        rest = node.children[1:]
        else_node = rest[-1] if rest and rest[-1].kind == "Else" else None
        body = list(rest[:-1] if else_node is not None else rest)
        lines = [f"{pad}if {_py_expr(node.children[0])}:"] + _py_block(body, depth + 1)
        if else_node is not None:
            lines.append(f"{pad}else:")
            lines.extend(_py_block(else_node.children, depth + 1))
        return lines
    if kind == "While":
        return [f"{pad}while {_py_expr(node.children[0])}:"] + _py_block(
            node.children[1:], depth + 1
        )
    if kind == "For":
        target = _py_expr(node.children[0])
        iterable = _py_expr(node.children[1])
        rest = node.children[2:]
        else_node = rest[-1] if rest and rest[-1].kind == "Else" else None
        body = list(rest[:-1] if else_node is not None else rest)
        lines = [f"{pad}for {target} in {iterable}:"] + _py_block(body, depth + 1)
        if else_node is not None:
            lines.append(f"{pad}else:")
            lines.extend(_py_block(else_node.children, depth + 1))
        return lines
    if kind == "Return":
        if node.children:
            return [f"{pad}return {_py_expr(node.children[0])}"]
        return [f"{pad}return"]
    if kind == "Break":
        return [f"{pad}break"]
    if kind == "Continue":
        return [f"{pad}continue"]
    if kind == "Raise":
        if node.children:
            return [f"{pad}raise {_py_expr(node.children[0])}"]
        return [f"{pad}raise"]
    if kind == "Pass":
        return [f"{pad}pass"]
    # Expression statement.
    return [f"{pad}{_py_expr(node)}"]


def print_python(ast: Ast) -> str:
    """Print a Python AST back to source."""
    lines: List[str] = []
    for child in ast.root.children:
        lines.extend(_py_stmt(child, 0))
        lines.append("")
    return "\n".join(lines)


# ======================================================================
# Renaming
# ======================================================================


def apply_renaming(ast: Ast, renaming: Dict[str, str]) -> None:
    """Substitute predicted names on the tree, in place.

    ``renaming`` maps frontend binding keys to new names; every identifier
    occurrence whose ``meta["binding"]`` is in the map is renamed.
    """
    for node in ast.root.walk():
        binding = node.meta.get("binding")
        if binding in renaming and node.value is not None:
            node.value = renaming[binding]


_PRINTERS: Dict[str, Callable[[Ast], str]] = {
    "javascript": print_javascript,
    "python": print_python,
}


def print_source(ast: Ast) -> str:
    """Print an AST back to source text (JavaScript and Python)."""
    printer = _PRINTERS.get(ast.language)
    if printer is None:
        supported = ", ".join(sorted(_PRINTERS))
        raise PrintError(
            f"no printer for language {ast.language!r}; printable: {supported}"
        )
    return printer(ast)
