"""Language frontend protocol and registry.

PIGEON is cross-language by construction (Sec. 5.1): separate modules
parse each language into the shared :class:`repro.core.ast_model.Ast`,
and everything downstream (path extraction, learning, evaluation) is
language independent.

A frontend must:

* parse source text into an :class:`~repro.core.ast_model.Ast` whose node
  kinds mirror the parser the paper used for that language (UglifyJS,
  JavaParser, CPython ``ast``, Roslyn);
* attach ``meta["binding"]`` to every identifier terminal that is a
  *renameable program element* (local variables and parameters), where the
  binding is an opaque key grouping all occurrences of the same element;
* attach ``meta["id_kind"]`` in ``{"local", "param", "global", "property",
  "function", "method", "field"}`` so tasks can select their targets.
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..core.ast_model import Ast
from ..registry import Registry


class ParseError(ValueError):
    """Raised when source text is outside the supported language subset."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LanguageFrontend(Protocol):
    """Structural interface of a language module."""

    name: str

    def parse(self, source: str) -> Ast:  # pragma: no cover - protocol
        ...


#: The language extension point: name -> frontend factory.
languages = Registry("language")


def register_language(name: str, factory: Callable[[], LanguageFrontend]) -> None:
    """Register a frontend factory under a language name."""
    languages.register(name, factory)


def get_frontend(name: str) -> LanguageFrontend:
    """Instantiate the frontend for ``name`` (e.g. ``"javascript"``)."""
    return languages.create(name)


def supported_languages() -> tuple:
    return languages.names()


def parse_source(language: str, source: str) -> Ast:
    """Parse ``source`` in ``language`` into a generic AST."""
    return get_frontend(language).parse(source)


def _register_builtins() -> None:
    """Import the built-in frontends on first use (avoids import cycles)."""
    from .javascript import JavaScriptFrontend
    from .java import JavaFrontend
    from .python_lang import PythonFrontend
    from .csharp import CSharpFrontend

    register_language("javascript", JavaScriptFrontend)
    register_language("java", JavaFrontend)
    register_language("python", PythonFrontend)
    register_language("csharp", CSharpFrontend)


languages.set_bootstrap(_register_builtins)
