"""Python frontend (bridges the CPython ``ast`` module)."""

from .bridge import PythonFrontend, parse_python

__all__ = ["PythonFrontend", "parse_python"]
