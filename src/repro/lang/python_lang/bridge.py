"""Python frontend: CPython ``ast`` → generic AST.

The paper's Python module used "the Python internal parser and AST
visitor" (Sec. 5.1); we do the same.  CPython AST class names become node
kinds, with operator-bearing nodes specialised the same way as the other
frontends (``BinOp+``, ``Compare==``, ``UnaryOpnot``) so the paths stay
discriminative.

A scope resolver marks parameters and assigned names as renameable
program elements with occurrence-grouping bindings, mirroring the other
frontends.
"""

from __future__ import annotations

import ast as pyast
from typing import Dict, List, Optional, Set, Union

from ...core.ast_model import Ast, Node
from ..base import ParseError

_OP_SYMBOLS = {
    pyast.Add: "+",
    pyast.Sub: "-",
    pyast.Mult: "*",
    pyast.Div: "/",
    pyast.FloorDiv: "//",
    pyast.Mod: "%",
    pyast.Pow: "**",
    pyast.LShift: "<<",
    pyast.RShift: ">>",
    pyast.BitOr: "|",
    pyast.BitXor: "^",
    pyast.BitAnd: "&",
    pyast.MatMult: "@",
    pyast.Eq: "==",
    pyast.NotEq: "!=",
    pyast.Lt: "<",
    pyast.LtE: "<=",
    pyast.Gt: ">",
    pyast.GtE: ">=",
    pyast.Is: "is",
    pyast.IsNot: "isnot",
    pyast.In: "in",
    pyast.NotIn: "notin",
    pyast.And: "and",
    pyast.Or: "or",
    pyast.Not: "not",
    pyast.USub: "-",
    pyast.UAdd: "+",
    pyast.Invert: "~",
}


def _op_symbol(op: pyast.AST) -> str:
    return _OP_SYMBOLS.get(type(op), type(op).__name__)


class _Converter:
    """Convert a CPython AST into our generic tree."""

    def convert_module(self, module: pyast.Module) -> Node:
        root = Node("Module")
        for stmt in module.body:
            root.add_child(self.convert(stmt))
        return root

    # ------------------------------------------------------------------
    def convert(self, node: pyast.AST) -> Node:
        method = getattr(self, f"convert_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self._generic(node)

    def _generic(self, node: pyast.AST) -> Node:
        out = Node(type(node).__name__)
        for field, value in pyast.iter_fields(node):
            self._add_field(out, value)
        return out

    def _add_field(self, parent: Node, value) -> None:
        if isinstance(value, pyast.AST):
            if isinstance(value, pyast.expr_context):
                return
            parent.add_child(self.convert(value))
        elif isinstance(value, list):
            for item in value:
                self._add_field(parent, item)
        # Bare strings/ints (identifier fields) are handled by the
        # specialised converters; the generic path drops them.

    # -- statements -----------------------------------------------------
    def convert_FunctionDef(self, node: pyast.FunctionDef) -> Node:
        out = Node("FunctionDef")
        out.add_child(Node("FunctionName", value=node.name, meta={"id_kind": "function"}))
        for arg in node.args.args:
            if arg.arg in ("self", "cls"):
                out.add_child(Node("SelfArg", value=arg.arg, meta={"id_kind": "self"}))
            else:
                out.add_child(Node("arg", value=arg.arg, meta={"id_kind": "param"}))
        for default in node.args.defaults:
            out.add_child(Node("Default", children=[self.convert(default)]))
        for stmt in node.body:
            out.add_child(self.convert(stmt))
        return out

    convert_AsyncFunctionDef = convert_FunctionDef  # type: ignore[assignment]

    def convert_ClassDef(self, node: pyast.ClassDef) -> Node:
        out = Node("ClassDef")
        out.add_child(Node("ClassName", value=node.name, meta={"id_kind": "class"}))
        for base in node.bases:
            out.add_child(self.convert(base))
        for stmt in node.body:
            out.add_child(self.convert(stmt))
        return out

    def convert_Name(self, node: pyast.Name) -> Node:
        return Node("Name", value=node.id)

    def convert_arg(self, node: pyast.arg) -> Node:
        return Node("arg", value=node.arg, meta={"id_kind": "param"})

    def convert_Attribute(self, node: pyast.Attribute) -> Node:
        return Node(
            "Attribute",
            children=[
                self.convert(node.value),
                Node("Attr", value=node.attr, meta={"id_kind": "property"}),
            ],
        )

    def convert_Constant(self, node: pyast.Constant) -> Node:
        value = node.value
        if isinstance(value, bool):
            return Node("NameConstant", value=str(value))
        if value is None:
            return Node("NameConstant", value="None")
        if isinstance(value, (int, float)):
            return Node("Num", value=repr(value))
        if isinstance(value, str):
            return Node("Str", value=value)
        return Node("Constant", value=repr(value))

    def convert_BinOp(self, node: pyast.BinOp) -> Node:
        return Node(
            f"BinOp{_op_symbol(node.op)}",
            children=[self.convert(node.left), self.convert(node.right)],
        )

    def convert_BoolOp(self, node: pyast.BoolOp) -> Node:
        return Node(
            f"BoolOp{_op_symbol(node.op)}",
            children=[self.convert(v) for v in node.values],
        )

    def convert_UnaryOp(self, node: pyast.UnaryOp) -> Node:
        return Node(f"UnaryOp{_op_symbol(node.op)}", children=[self.convert(node.operand)])

    def convert_Compare(self, node: pyast.Compare) -> Node:
        # Single comparisons embed the operator; chains use a neutral kind.
        if len(node.ops) == 1:
            return Node(
                f"Compare{_op_symbol(node.ops[0])}",
                children=[self.convert(node.left), self.convert(node.comparators[0])],
            )
        out = Node("CompareChain", children=[self.convert(node.left)])
        for op, comparator in zip(node.ops, node.comparators):
            out.add_child(Node(f"Op{_op_symbol(op)}"))
            out.add_child(self.convert(comparator))
        return out

    def convert_AugAssign(self, node: pyast.AugAssign) -> Node:
        return Node(
            f"AugAssign{_op_symbol(node.op)}",
            children=[self.convert(node.target), self.convert(node.value)],
        )

    def convert_Call(self, node: pyast.Call) -> Node:
        out = Node("Call", children=[self.convert(node.func)])
        for arg in node.args:
            out.add_child(self.convert(arg))
        for kw in node.keywords:
            kw_node = Node("keyword")
            if kw.arg:
                kw_node.add_child(Node("KeywordName", value=kw.arg, meta={"id_kind": "property"}))
            kw_node.add_child(self.convert(kw.value))
            out.add_child(kw_node)
        return out

    def convert_Assign(self, node: pyast.Assign) -> Node:
        out = Node("Assign")
        for target in node.targets:
            out.add_child(self.convert(target))
        out.add_child(self.convert(node.value))
        return out

    def convert_If(self, node: pyast.If) -> Node:
        out = Node("If", children=[self.convert(node.test)])
        for stmt in node.body:
            out.add_child(self.convert(stmt))
        if node.orelse:
            else_node = Node("Else")
            for stmt in node.orelse:
                else_node.add_child(self.convert(stmt))
            out.add_child(else_node)
        return out

    def convert_While(self, node: pyast.While) -> Node:
        out = Node("While", children=[self.convert(node.test)])
        for stmt in node.body:
            out.add_child(self.convert(stmt))
        return out

    def convert_For(self, node: pyast.For) -> Node:
        out = Node("For", children=[self.convert(node.target), self.convert(node.iter)])
        for stmt in node.body:
            out.add_child(self.convert(stmt))
        if node.orelse:
            else_node = Node("Else")
            for stmt in node.orelse:
                else_node.add_child(self.convert(stmt))
            out.add_child(else_node)
        return out

    def convert_Expr(self, node: pyast.Expr) -> Node:
        # Expression statements are flattened (no Expr wrapper), mirroring
        # the other frontends.
        return self.convert(node.value)

    def convert_Subscript(self, node: pyast.Subscript) -> Node:
        return Node(
            "Subscript", children=[self.convert(node.value), self.convert(node.slice)]
        )


def parse_source_to_tree(source: str) -> Node:
    try:
        module = pyast.parse(source)
    except SyntaxError as exc:  # normalise to the shared error type
        raise ParseError(f"[python] {exc.msg}", exc.lineno or 0, exc.offset or 0) from exc
    return _Converter().convert_module(module)


# ----------------------------------------------------------------------
# Scope resolution
# ----------------------------------------------------------------------

_SCOPE_KINDS = ("Module", "FunctionDef", "Lambda")


def _collect_assigned_names(scope_node: Node) -> Set[str]:
    """Names bound in a scope: params plus assignment/for/with targets."""
    bound: Set[str] = set()

    # Params.
    for child in scope_node.children:
        if child.kind == "arg":
            bound.add(child.value or "")

    # Assignment targets, for-targets anywhere in the scope body (not in
    # nested functions).
    def targets(node: Node) -> None:
        for child in node.children:
            if child.kind in _SCOPE_KINDS:
                continue
            if node.kind == "Assign" and child is not node.children[-1] and child.kind == "Name":
                bound.add(child.value or "")
            if node.kind == "Assign" and child.kind == "Tuple":
                for el in child.children:
                    if el.kind == "Name":
                        bound.add(el.value or "")
            if node.kind.startswith("AugAssign") and child is node.children[0] and child.kind == "Name":
                bound.add(child.value or "")
            if node.kind == "For" and child is node.children[0]:
                if child.kind == "Name":
                    bound.add(child.value or "")
                for el in child.find("Name"):
                    bound.add(el.value or "")
            if node.kind == "withitem" and child.kind == "Name":
                bound.add(child.value or "")
            if node.kind == "ExceptHandler" and child.kind == "ExceptName":
                bound.add(child.value or "")
            targets(child)

    targets(scope_node)
    return bound


def resolve_python_scopes(root: Node) -> None:
    """Attach bindings/id_kinds to ``Name``/``arg`` terminals."""
    counter = [0]

    def visit(scope_node: Node, outer: List) -> None:
        counter[0] += 1
        scope_id = counter[0]
        bound = _collect_assigned_names(scope_node)
        chain = outer + [(scope_id, bound, scope_node.kind)]

        def mark(node: Node) -> None:
            if node.kind == "Name" and "binding" not in node.meta:
                name = node.value or ""
                for sid, names, scope_kind in reversed(chain):
                    if name in names:
                        node.meta["binding"] = f"s{sid}:{name}"
                        node.meta["id_kind"] = (
                            "global" if scope_kind == "Module" else "local"
                        )
                        break
                else:
                    node.meta["binding"] = f"g:{name}"
                    node.meta["id_kind"] = "global"
            elif node.kind == "arg" and "binding" not in node.meta:
                node.meta["binding"] = f"s{scope_id}:{node.value}"
                node.meta["id_kind"] = "param"
            elif node.kind in ("Attr", "KeywordName") and "binding" not in node.meta:
                node.meta["binding"] = f"p:{node.value}"
                node.meta["id_kind"] = "property"
            for child in node.children:
                if child.kind in ("FunctionDef", "Lambda"):
                    visit(child, chain)
                else:
                    mark(child)

        mark(scope_node)

    visit(root, [])


class PythonFrontend:
    """PIGEON's Python module."""

    name = "python"

    def parse(self, source: str) -> Ast:
        root = parse_source_to_tree(source)
        resolve_python_scopes(root)
        return Ast(root, language="python")


def parse_python(source: str) -> Ast:
    """Parse Python source into a generic AST."""
    return PythonFrontend().parse(source)
