"""Recursive-descent parser for a C# subset.

Node kinds follow Roslyn's syntax-kind vocabulary
(``SimpleAssignmentExpression``, ``AddExpression``, ``EqualsExpression``,
``InvocationExpression``, ``SimpleMemberAccessExpression``, ...).

Unlike the Java frontend, this tree keeps ``Block`` and
``ExpressionStatement`` wrapper nodes: the paper notes that "the C# AST
is slightly more elaborate than the one we used for Java", which is why
its tuned path parameters differ (7/4 vs 6/3).  We reproduce that
elaborateness deliberately.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...core.ast_model import Ast, Node
from ..base import ParseError
from ..lexing import CHAR, EOF, IDENT, KEYWORD, NUMBER, OP, STRING, Lexer, TokenStream, expect_close_angle

_KEYWORDS = frozenset(
    """
    using namespace public private protected internal static readonly const
    class interface struct void int long double float bool char byte string
    object var new return if else while do for foreach in break continue
    throw try catch finally this base true false null is as switch case
    default get set override virtual abstract sealed out ref
    """.split()
)

_MODIFIERS = (
    "public",
    "private",
    "protected",
    "internal",
    "static",
    "readonly",
    "const",
    "override",
    "virtual",
    "abstract",
    "sealed",
)
_PREDEFINED_TYPES = ("int", "long", "double", "float", "bool", "char", "byte", "string", "object", "void")
_ASSIGN_KINDS = {
    "=": "SimpleAssignmentExpression",
    "+=": "AddAssignmentExpression",
    "-=": "SubtractAssignmentExpression",
    "*=": "MultiplyAssignmentExpression",
    "/=": "DivideAssignmentExpression",
    "%=": "ModuloAssignmentExpression",
}
_BINARY_KINDS = {
    "||": "LogicalOrExpression",
    "&&": "LogicalAndExpression",
    "|": "BitwiseOrExpression",
    "^": "ExclusiveOrExpression",
    "&": "BitwiseAndExpression",
    "==": "EqualsExpression",
    "!=": "NotEqualsExpression",
    "<": "LessThanExpression",
    ">": "GreaterThanExpression",
    "<=": "LessThanOrEqualExpression",
    ">=": "GreaterThanOrEqualExpression",
    "<<": "LeftShiftExpression",
    ">>": "RightShiftExpression",
    "+": "AddExpression",
    "-": "SubtractExpression",
    "*": "MultiplyExpression",
    "/": "DivideExpression",
    "%": "ModuloExpression",
}
_UNARY_KINDS = {
    "!": "LogicalNotExpression",
    "-": "UnaryMinusExpression",
    "+": "UnaryPlusExpression",
    "~": "BitwiseNotExpression",
    "++": "PreIncrementExpression",
    "--": "PreDecrementExpression",
}


class _CSharpParser:
    def __init__(self, source: str) -> None:
        tokens = Lexer(source, _KEYWORDS, "csharp").tokenize()
        self.ts = TokenStream(tokens, "csharp")

    # ------------------------------------------------------------------
    # Compilation unit
    # ------------------------------------------------------------------
    def parse_compilation_unit(self) -> Node:
        ts = self.ts
        unit = Node("CompilationUnit")
        while ts.current.is_keyword("using"):
            ts.advance()
            name = self.parse_qualified_name()
            ts.expect_op(";")
            unit.add_child(Node("UsingDirective", children=[Node("Name", value=name)]))
        while not ts.at_end():
            if ts.current.is_keyword("namespace"):
                ts.advance()
                name = self.parse_qualified_name()
                ns = Node("NamespaceDeclaration", children=[Node("Name", value=name)])
                ts.expect_op("{")
                while not ts.current.is_op("}"):
                    if ts.at_end():
                        raise ts.error("unterminated namespace")
                    ns.add_child(self.parse_type_declaration())
                ts.expect_op("}")
                unit.add_child(ns)
            else:
                unit.add_child(self.parse_type_declaration())
        return unit

    def parse_qualified_name(self) -> str:
        ts = self.ts
        parts = [ts.expect_ident().text]
        while ts.current.is_op("."):
            ts.advance()
            parts.append(ts.expect_ident().text)
        return ".".join(parts)

    def parse_modifiers(self) -> List[str]:
        mods = []
        while self.ts.current.is_keyword(*_MODIFIERS):
            mods.append(self.ts.advance().text)
        return mods

    def parse_type_declaration(self) -> Node:
        ts = self.ts
        self.parse_modifiers()
        if ts.match_keyword("interface"):
            kind = "InterfaceDeclaration"
        elif ts.match_keyword("struct"):
            kind = "StructDeclaration"
        else:
            ts.expect_keyword("class")
            kind = "ClassDeclaration"
        name = ts.expect_ident().text
        node = Node(kind, children=[Node("IdentifierToken", value=name, meta={"id_kind": "class"})])
        if ts.match_op(":"):
            bases = Node("BaseList")
            while True:
                bases.add_child(self.parse_type())
                if not ts.match_op(","):
                    break
            node.add_child(bases)
        ts.expect_op("{")
        while not ts.current.is_op("}"):
            if ts.at_end():
                raise ts.error("unterminated class body")
            node.add_child(self.parse_member(class_name=name))
        ts.expect_op("}")
        return node

    def parse_member(self, class_name: str) -> Node:
        ts = self.ts
        self.parse_modifiers()
        # Constructor.
        if ts.current.kind == IDENT and ts.current.text == class_name and ts.peek().is_op("("):
            name_tok = ts.advance()
            node = Node(
                "ConstructorDeclaration",
                children=[Node("IdentifierToken", value=name_tok.text, meta={"id_kind": "method"})],
            )
            node.add_child(self.parse_parameter_list())
            node.add_child(self.parse_block())
            return node
        type_node = self.parse_type()
        name_tok = ts.expect_ident()
        if ts.current.is_op("("):
            node = Node(
                "MethodDeclaration",
                children=[
                    type_node,
                    Node("IdentifierToken", value=name_tok.text, meta={"id_kind": "method"}),
                ],
            )
            node.add_child(self.parse_parameter_list())
            if ts.match_op(";"):
                return node
            node.add_child(self.parse_block())
            return node
        if ts.current.is_op("{"):
            # Auto-property: Type Name { get; set; }
            node = Node(
                "PropertyDeclaration",
                children=[
                    type_node,
                    Node("IdentifierToken", value=name_tok.text, meta={"id_kind": "property"}),
                ],
            )
            ts.expect_op("{")
            accessors = Node("AccessorList")
            while not ts.current.is_op("}"):
                if ts.match_keyword("get"):
                    accessors.add_child(Node("GetAccessor"))
                elif ts.match_keyword("set"):
                    accessors.add_child(Node("SetAccessor"))
                else:
                    raise ts.error("expected accessor")
                ts.expect_op(";")
            ts.expect_op("}")
            node.add_child(accessors)
            return node
        # Field declaration.
        node = Node("FieldDeclaration", children=[type_node])
        declarator = Node(
            "VariableDeclarator",
            children=[Node("IdentifierToken", value=name_tok.text, meta={"id_kind": "field"})],
        )
        if ts.match_op("="):
            declarator.add_child(Node("EqualsValueClause", children=[self.parse_expression()]))
        node.add_child(declarator)
        while ts.match_op(","):
            more = ts.expect_ident()
            declarator = Node(
                "VariableDeclarator",
                children=[Node("IdentifierToken", value=more.text, meta={"id_kind": "field"})],
            )
            if ts.match_op("="):
                declarator.add_child(Node("EqualsValueClause", children=[self.parse_expression()]))
            node.add_child(declarator)
        ts.expect_op(";")
        return node

    def parse_parameter_list(self) -> Node:
        ts = self.ts
        node = Node("ParameterList")
        ts.expect_op("(")
        while not ts.current.is_op(")"):
            ts.match_keyword("out", "ref")
            param_type = self.parse_type()
            name = ts.expect_ident()
            node.add_child(
                Node(
                    "Parameter",
                    children=[
                        param_type,
                        Node("IdentifierToken", value=name.text, meta={"id_kind": "param"}),
                    ],
                )
            )
            if not ts.match_op(","):
                break
        ts.expect_op(")")
        return node

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def parse_type(self) -> Node:
        ts = self.ts
        tok = ts.current
        if tok.is_keyword(*_PREDEFINED_TYPES):
            ts.advance()
            node: Node = Node("PredefinedType", value=tok.text)
        elif tok.is_keyword("var"):
            ts.advance()
            node = Node("VarKeyword", value="var")
        else:
            name = ts.expect_ident().text
            while ts.current.is_op(".") and ts.peek().kind == IDENT:
                ts.advance()
                name += "." + ts.expect_ident().text
            base = Node("IdentifierName", value=name)
            if ts.current.is_op("<") and self._looks_like_type_args():
                ts.advance()
                generic = Node("GenericName", children=[base])
                while not ts.current.is_op(">", ">>", ">>>"):
                    generic.add_child(self.parse_type())
                    if not ts.match_op(","):
                        break
                expect_close_angle(ts)
                node = generic
            else:
                node = base
        while ts.current.is_op("[") and ts.peek().is_op("]"):
            ts.advance()
            ts.advance()
            node = Node("ArrayType", children=[node])
        return node

    def _looks_like_type_args(self) -> bool:
        ts = self.ts
        tokens = ts.tokens
        depth = 0
        i = ts.pos
        while i < len(tokens):
            tok = tokens[i]
            if tok.kind == EOF:
                return False
            if tok.is_op("<"):
                depth += 1
            elif tok.is_op(">"):
                depth -= 1
                if depth == 0:
                    return True
            elif tok.is_op(">>"):
                depth -= 2
                if depth <= 0:
                    return True
            elif tok.kind in (IDENT, KEYWORD) or tok.is_op(",", ".", "[", "]"):
                pass
            else:
                return False
            i += 1
        return False

    # ------------------------------------------------------------------
    # Statements (Block nodes are kept, unlike the Java frontend)
    # ------------------------------------------------------------------
    def parse_block(self) -> Node:
        ts = self.ts
        node = Node("Block")
        ts.expect_op("{")
        while not ts.current.is_op("}"):
            if ts.at_end():
                raise ts.error("unterminated block")
            node.add_child(self.parse_statement())
        ts.expect_op("}")
        return node

    def parse_embedded(self) -> Node:
        """A statement in a loop/if body; blocks stay explicit."""
        if self.ts.current.is_op("{"):
            return self.parse_block()
        return self.parse_statement()

    def parse_statement(self) -> Node:
        ts = self.ts
        tok = ts.current
        if tok.is_keyword("if"):
            ts.advance()
            ts.expect_op("(")
            node = Node("IfStatement", children=[self.parse_expression()])
            ts.expect_op(")")
            node.add_child(self.parse_embedded())
            if ts.match_keyword("else"):
                node.add_child(Node("ElseClause", children=[self.parse_embedded()]))
            return node
        if tok.is_keyword("while"):
            ts.advance()
            ts.expect_op("(")
            node = Node("WhileStatement", children=[self.parse_expression()])
            ts.expect_op(")")
            node.add_child(self.parse_embedded())
            return node
        if tok.is_keyword("do"):
            ts.advance()
            node = Node("DoStatement", children=[self.parse_embedded()])
            ts.expect_keyword("while")
            ts.expect_op("(")
            node.add_child(self.parse_expression())
            ts.expect_op(")")
            ts.expect_op(";")
            return node
        if tok.is_keyword("for"):
            return self.parse_for()
        if tok.is_keyword("foreach"):
            ts.advance()
            ts.expect_op("(")
            var_type = self.parse_type()
            name = ts.expect_ident()
            ts.expect_keyword("in")
            node = Node(
                "ForEachStatement",
                children=[
                    var_type,
                    Node("IdentifierToken", value=name.text, meta={"id_kind": "local"}),
                    self.parse_expression(),
                ],
            )
            ts.expect_op(")")
            node.add_child(self.parse_embedded())
            return node
        if tok.is_keyword("return"):
            ts.advance()
            node = Node("ReturnStatement")
            if not ts.current.is_op(";"):
                node.add_child(self.parse_expression())
            ts.expect_op(";")
            return node
        if tok.is_keyword("break"):
            ts.advance()
            ts.expect_op(";")
            return Node("BreakStatement")
        if tok.is_keyword("continue"):
            ts.advance()
            ts.expect_op(";")
            return Node("ContinueStatement")
        if tok.is_keyword("throw"):
            ts.advance()
            node = Node("ThrowStatement", children=[self.parse_expression()])
            ts.expect_op(";")
            return node
        if tok.is_keyword("try"):
            ts.advance()
            node = Node("TryStatement", children=[self.parse_block()])
            while ts.match_keyword("catch"):
                clause = Node("CatchClause")
                if ts.match_op("("):
                    ex_type = self.parse_type()
                    decl = Node("CatchDeclaration", children=[ex_type])
                    if ts.current.kind == IDENT:
                        name = ts.advance()
                        decl.add_child(
                            Node("IdentifierToken", value=name.text, meta={"id_kind": "local"})
                        )
                    ts.expect_op(")")
                    clause.add_child(decl)
                clause.add_child(self.parse_block())
                node.add_child(clause)
            if ts.match_keyword("finally"):
                node.add_child(Node("FinallyClause", children=[self.parse_block()]))
            return node
        if tok.is_op("{"):
            return self.parse_block()
        if tok.is_op(";"):
            ts.advance()
            return Node("EmptyStatement")
        if self._looks_like_local_declaration():
            node = self.parse_local_declaration()
            ts.expect_op(";")
            return node
        expr = self.parse_expression()
        ts.expect_op(";")
        return Node("ExpressionStatement", children=[expr])

    def parse_for(self) -> Node:
        ts = self.ts
        ts.expect_keyword("for")
        ts.expect_op("(")
        node = Node("ForStatement")
        if not ts.current.is_op(";"):
            if self._looks_like_local_declaration():
                node.add_child(self.parse_local_declaration())
            else:
                node.add_child(self.parse_expression())
        ts.expect_op(";")
        if not ts.current.is_op(";"):
            node.add_child(self.parse_expression())
        ts.expect_op(";")
        if not ts.current.is_op(")"):
            node.add_child(self.parse_expression())
        ts.expect_op(")")
        node.add_child(self.parse_embedded())
        return node

    def _looks_like_local_declaration(self) -> bool:
        ts = self.ts
        tok = ts.current
        if tok.is_keyword(*_PREDEFINED_TYPES) or tok.is_keyword("var"):
            return True
        if tok.kind != IDENT:
            return False
        tokens = ts.tokens
        i = ts.pos + 1
        while tokens[i].is_op(".") and tokens[i + 1].kind == IDENT:
            i += 2
        if tokens[i].is_op("<"):
            depth = 0
            while i < len(tokens):
                if tokens[i].is_op("<"):
                    depth += 1
                elif tokens[i].is_op(">"):
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                elif tokens[i].is_op(">>"):
                    depth -= 2
                    if depth <= 0:
                        i += 1
                        break
                elif tokens[i].kind in (IDENT, KEYWORD) or tokens[i].is_op(",", ".", "[", "]"):
                    pass
                else:
                    return False
                i += 1
        while tokens[i].is_op("[") and tokens[i + 1].is_op("]"):
            i += 2
        return tokens[i].kind == IDENT

    def parse_local_declaration(self) -> Node:
        ts = self.ts
        type_node = self.parse_type()
        decl = Node("VariableDeclaration", children=[type_node])
        while True:
            name = ts.expect_ident()
            declarator = Node(
                "VariableDeclarator",
                children=[Node("IdentifierToken", value=name.text, meta={"id_kind": "local"})],
            )
            if ts.match_op("="):
                declarator.add_child(Node("EqualsValueClause", children=[self.parse_expression()]))
            decl.add_child(declarator)
            if not ts.match_op(","):
                break
        return Node("LocalDeclarationStatement", children=[decl])

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> Node:
        left = self.parse_conditional()
        tok = self.ts.current
        if tok.kind == OP and tok.text in _ASSIGN_KINDS:
            kind = _ASSIGN_KINDS[self.ts.advance().text]
            right = self.parse_expression()
            return Node(kind, children=[left, right])
        return left

    def parse_conditional(self) -> Node:
        cond = self.parse_binary(0)
        if self.ts.match_op("?"):
            then = self.parse_expression()
            self.ts.expect_op(":")
            other = self.parse_expression()
            return Node("ConditionalExpression", children=[cond, then, other])
        return cond

    _BINARY_LEVELS = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">=", "is", "as"),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def parse_binary(self, level: int) -> Node:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self.parse_binary(level + 1)
        while True:
            tok = self.ts.current
            if tok.is_keyword("is") and "is" in ops:
                self.ts.advance()
                left = Node("IsExpression", children=[left, self.parse_type()])
                continue
            if tok.is_keyword("as") and "as" in ops:
                self.ts.advance()
                left = Node("AsExpression", children=[left, self.parse_type()])
                continue
            if tok.kind == OP and tok.text in ops:
                op = self.ts.advance().text
                right = self.parse_binary(level + 1)
                left = Node(_BINARY_KINDS[op], children=[left, right])
            else:
                return left

    def parse_unary(self) -> Node:
        ts = self.ts
        tok = ts.current
        if tok.kind == OP and tok.text in _UNARY_KINDS:
            kind = _UNARY_KINDS[ts.advance().text]
            return Node(kind, children=[self.parse_unary()])
        if tok.is_keyword("new"):
            ts.advance()
            type_node = self.parse_type()
            if ts.current.is_op("["):
                node = Node("ArrayCreationExpression", children=[type_node])
                while ts.match_op("["):
                    if not ts.current.is_op("]"):
                        node.add_child(self.parse_expression())
                    ts.expect_op("]")
                return node
            node = Node("ObjectCreationExpression", children=[type_node])
            if ts.match_op("("):
                args = Node("ArgumentList")
                while not ts.current.is_op(")"):
                    args.add_child(Node("Argument", children=[self.parse_expression()]))
                    if not ts.match_op(","):
                        break
                ts.expect_op(")")
                node.add_child(args)
            return self.parse_access_tail(node)
        return self.parse_postfix()

    def parse_postfix(self) -> Node:
        node = self.parse_access_tail(self.parse_primary())
        tok = self.ts.current
        if tok.kind == OP and tok.text == "++":
            self.ts.advance()
            return Node("PostIncrementExpression", children=[node])
        if tok.kind == OP and tok.text == "--":
            self.ts.advance()
            return Node("PostDecrementExpression", children=[node])
        return node

    def parse_access_tail(self, node: Node) -> Node:
        ts = self.ts
        while True:
            if ts.current.is_op(".") and ts.peek().kind in (IDENT, KEYWORD):
                ts.advance()
                name_tok = ts.advance()
                member = Node(
                    "SimpleMemberAccessExpression",
                    children=[
                        node,
                        Node("IdentifierName", value=name_tok.text, meta={"id_kind": "property"}),
                    ],
                )
                if ts.current.is_op("("):
                    ts.advance()
                    call = Node("InvocationExpression", children=[member])
                    args = Node("ArgumentList")
                    while not ts.current.is_op(")"):
                        args.add_child(Node("Argument", children=[self.parse_expression()]))
                        if not ts.match_op(","):
                            break
                    ts.expect_op(")")
                    call.add_child(args)
                    node = call
                else:
                    node = member
            elif ts.current.is_op("["):
                ts.advance()
                index = self.parse_expression()
                ts.expect_op("]")
                node = Node("ElementAccessExpression", children=[node, index])
            elif ts.current.is_op("("):
                ts.advance()
                call = Node("InvocationExpression", children=[node])
                args = Node("ArgumentList")
                while not ts.current.is_op(")"):
                    args.add_child(Node("Argument", children=[self.parse_expression()]))
                    if not ts.match_op(","):
                        break
                ts.expect_op(")")
                call.add_child(args)
                node = call
            else:
                return node

    def parse_primary(self) -> Node:
        ts = self.ts
        tok = ts.current
        if tok.kind == IDENT:
            ts.advance()
            return Node("IdentifierName", value=tok.text)
        if tok.kind == NUMBER:
            ts.advance()
            return Node("NumericLiteralExpression", value=tok.text)
        if tok.kind == STRING:
            ts.advance()
            return Node("StringLiteralExpression", value=tok.text)
        if tok.kind == CHAR:
            ts.advance()
            return Node("CharacterLiteralExpression", value=tok.text)
        if tok.is_keyword("true"):
            ts.advance()
            return Node("TrueLiteralExpression", value="true")
        if tok.is_keyword("false"):
            ts.advance()
            return Node("FalseLiteralExpression", value="false")
        if tok.is_keyword("null"):
            ts.advance()
            return Node("NullLiteralExpression", value="null")
        if tok.is_keyword("this"):
            ts.advance()
            return Node("ThisExpression", value="this")
        if tok.is_keyword("base"):
            ts.advance()
            return Node("BaseExpression", value="base")
        if tok.is_keyword(*_PREDEFINED_TYPES):
            # e.g. int.Parse(...)
            ts.advance()
            return Node("PredefinedType", value=tok.text)
        if tok.is_op("("):
            ts.advance()
            expr = self.parse_expression()
            ts.expect_op(")")
            return expr
        raise ts.error(f"unexpected token {tok}")


# ----------------------------------------------------------------------
# Binding resolution
# ----------------------------------------------------------------------


def resolve_csharp_bindings(root: Node) -> None:
    """Attach occurrence-grouping bindings, mirroring the Java frontend."""
    class_counter = [0]
    method_counter = [0]

    def classes(node: Node):
        for child in node.children:
            if child.kind in ("ClassDeclaration", "StructDeclaration", "InterfaceDeclaration"):
                yield child
            elif child.kind == "NamespaceDeclaration":
                yield from classes(child)

    def visit_class(class_node: Node) -> None:
        class_counter[0] += 1
        cid = class_counter[0]
        fields: Dict[str, str] = {}
        for member in class_node.children:
            if member.kind == "FieldDeclaration":
                for declarator in member.find("VariableDeclarator"):
                    name_node = declarator.children[0]
                    key = f"c{cid}:{name_node.value}"
                    fields[name_node.value or ""] = key
                    name_node.meta["binding"] = key
            elif member.kind == "PropertyDeclaration":
                name_node = member.children[1]
                key = f"c{cid}:{name_node.value}"
                fields[name_node.value or ""] = key
                name_node.meta["binding"] = key
        for member in class_node.children:
            if member.kind in ("MethodDeclaration", "ConstructorDeclaration"):
                visit_method(member, fields)

    def visit_method(method: Node, fields: Dict[str, str]) -> None:
        method_counter[0] += 1
        mid = method_counter[0]
        local_bindings: Dict[str, tuple] = {}

        def declare(name_node: Node, id_kind: str) -> None:
            key = f"m{mid}:{name_node.value}"
            local_bindings[name_node.value or ""] = (key, id_kind)
            name_node.meta["binding"] = key
            name_node.meta["id_kind"] = id_kind

        def visit(node: Node) -> None:
            if node.kind == "Parameter":
                declare(node.children[1], "param")
            elif node.kind == "VariableDeclaration":
                for declarator in node.children[1:]:
                    if declarator.kind == "VariableDeclarator":
                        declare(declarator.children[0], "local")
            elif node.kind == "ForEachStatement":
                declare(node.children[1], "local")
            elif node.kind == "CatchDeclaration" and len(node.children) > 1:
                declare(node.children[1], "local")
            elif node.kind == "IdentifierName" and "binding" not in node.meta:
                # Skip member names (the right side of a member access).
                parent = node.parent
                is_member_name = (
                    parent is not None
                    and parent.kind == "SimpleMemberAccessExpression"
                    and parent.children[1] is node
                )
                if not is_member_name:
                    name = node.value or ""
                    if name in local_bindings:
                        key, kind = local_bindings[name]
                        node.meta["binding"] = key
                        node.meta["id_kind"] = kind
                    elif name in fields:
                        node.meta["binding"] = fields[name]
                        node.meta["id_kind"] = "field"
                    else:
                        node.meta["binding"] = f"g:{name}"
                        node.meta["id_kind"] = "global"
            for child in node.children:
                if node.kind == "ForEachStatement" and child is node.children[1]:
                    continue  # already declared
                visit(child)

        visit(method)

    for class_node in classes(root):
        visit_class(class_node)


class CSharpFrontend:
    """PIGEON's C# module."""

    name = "csharp"

    def parse(self, source: str) -> Ast:
        root = _CSharpParser(source).parse_compilation_unit()
        resolve_csharp_bindings(root)
        return Ast(root, language="csharp")


def parse_csharp(source: str) -> Ast:
    """Parse C# source into a generic AST."""
    return CSharpFrontend().parse(source)
