"""C# frontend (Roslyn-style ASTs)."""

from .parser import CSharpFrontend, parse_csharp

__all__ = ["CSharpFrontend", "parse_csharp"]
