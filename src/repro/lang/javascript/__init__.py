"""JavaScript frontend (UglifyJS-style ASTs)."""

from .parser import JavaScriptFrontend, parse_js

__all__ = ["JavaScriptFrontend", "parse_js"]
