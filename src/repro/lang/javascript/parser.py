"""Recursive-descent parser for a JavaScript subset.

Node kinds mirror UglifyJS (the parser the paper used for JavaScript), so
the paths extracted here match the paper's examples literally.  The
running example of Fig. 1a::

    while (!d) { if (someCondition()) { d = true; } }

parses to a tree in which the path between the two occurrences of ``d`` is
``SymbolRef↑UnaryPrefix!↑While↓If↓Assign=↓SymbolRef``, exactly as printed
in the paper.  Two UglifyJS conventions matter for that:

* statement blocks are flattened into their parent construct (no
  ``Block``/``SimpleStatement`` wrapper between ``While`` and ``If`` or
  between ``If`` and the assignment expression);
* operator-bearing nodes embed the operator in the kind (``Assign=``,
  ``Binary==``, ``UnaryPrefix!``).

After parsing, a scope resolver marks every identifier terminal with
``meta["id_kind"]`` and, for local variables and parameters, a
``meta["binding"]`` key that groups the occurrences of one program
element (the CRF merges them into a single node, Sec. 5.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ...core.ast_model import Ast, Node
from ..base import ParseError
from ..lexing import CHAR, EOF, IDENT, KEYWORD, NUMBER, OP, STRING, Lexer, TokenStream

_KEYWORDS = frozenset(
    """
    var let const function return if else while do for in of new delete typeof
    instanceof this true false null undefined break continue throw try catch
    finally switch case default void
    """.split()
)

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")


class _JsParser:
    def __init__(self, source: str) -> None:
        tokens = Lexer(source, _KEYWORDS, "javascript").tokenize()
        self.ts = TokenStream(tokens, "javascript")

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def parse_program(self) -> Node:
        top = Node("Toplevel")
        while not self.ts.at_end():
            top.add_child(self.parse_statement())
        return top

    def parse_statement(self) -> Node:
        ts = self.ts
        tok = ts.current
        if tok.is_keyword("function"):
            return self.parse_function(declaration=True)
        if tok.is_keyword("var", "let", "const"):
            return self.parse_var_statement()
        if tok.is_keyword("if"):
            return self.parse_if()
        if tok.is_keyword("while"):
            return self.parse_while()
        if tok.is_keyword("do"):
            return self.parse_do_while()
        if tok.is_keyword("for"):
            return self.parse_for()
        if tok.is_keyword("return"):
            ts.advance()
            node = Node("Return")
            if not ts.current.is_op(";") and not ts.current.is_op("}") and ts.current.kind != EOF:
                node.add_child(self.parse_expression())
            ts.match_op(";")
            return node
        if tok.is_keyword("break"):
            ts.advance()
            ts.match_op(";")
            return Node("Break")
        if tok.is_keyword("continue"):
            ts.advance()
            ts.match_op(";")
            return Node("Continue")
        if tok.is_keyword("throw"):
            ts.advance()
            node = Node("Throw", children=[self.parse_expression()])
            ts.match_op(";")
            return node
        if tok.is_keyword("try"):
            return self.parse_try()
        if tok.is_op("{"):
            block = Node("Block")
            self.parse_block_into(block)
            return block
        if tok.is_op(";"):
            ts.advance()
            return Node("EmptyStatement")
        expr = self.parse_expression()
        ts.match_op(";")
        return expr

    def parse_block_into(self, parent: Node) -> None:
        """Parse ``{ stmt* }`` or a single statement into ``parent``.

        This is the UglifyJS-style flattening that keeps the paper's
        ``While↓If`` paths one edge long.
        """
        ts = self.ts
        if ts.match_op("{"):
            while not ts.current.is_op("}"):
                if ts.at_end():
                    raise ts.error("unterminated block")
                parent.add_child(self.parse_statement())
            ts.expect_op("}")
        else:
            parent.add_child(self.parse_statement())

    def parse_function(self, declaration: bool) -> Node:
        ts = self.ts
        ts.expect_keyword("function")
        kind = "Defun" if declaration else "Function"
        node = Node(kind)
        if ts.current.kind == IDENT:
            name = ts.advance().text
            sym_kind = "SymbolDefun" if declaration else "SymbolLambda"
            node.add_child(Node(sym_kind, value=name))
        elif declaration:
            raise ts.error("function declaration requires a name")
        ts.expect_op("(")
        while not ts.current.is_op(")"):
            param = ts.expect_ident()
            node.add_child(Node("SymbolFunarg", value=param.text))
            if not ts.match_op(","):
                break
        ts.expect_op(")")
        self.parse_block_into(node)
        return node

    def parse_var_statement(self) -> Node:
        ts = self.ts
        ts.advance()  # var / let / const
        node = Node("Var")
        while True:
            name = ts.expect_ident()
            vardef = Node("VarDef", children=[Node("SymbolVar", value=name.text)])
            if ts.match_op("="):
                vardef.add_child(self.parse_assignment())
            node.add_child(vardef)
            if not ts.match_op(","):
                break
        ts.match_op(";")
        return node

    def parse_if(self) -> Node:
        ts = self.ts
        ts.expect_keyword("if")
        ts.expect_op("(")
        node = Node("If", children=[self.parse_expression()])
        ts.expect_op(")")
        self.parse_block_into(node)
        if ts.match_keyword("else"):
            else_node = Node("Else")
            self.parse_block_into(else_node)
            node.add_child(else_node)
        return node

    def parse_while(self) -> Node:
        ts = self.ts
        ts.expect_keyword("while")
        ts.expect_op("(")
        node = Node("While", children=[self.parse_expression()])
        ts.expect_op(")")
        self.parse_block_into(node)
        return node

    def parse_do_while(self) -> Node:
        ts = self.ts
        ts.expect_keyword("do")
        node = Node("Do")
        self.parse_block_into(node)
        ts.expect_keyword("while")
        ts.expect_op("(")
        node.add_child(self.parse_expression())
        ts.expect_op(")")
        ts.match_op(";")
        return node

    def parse_for(self) -> Node:
        ts = self.ts
        ts.expect_keyword("for")
        ts.expect_op("(")
        # Distinguish for-in from the classic three-clause form.
        init: Optional[Node] = None
        if ts.current.is_keyword("var", "let", "const"):
            save = ts.pos
            ts.advance()
            name = ts.expect_ident()
            if ts.current.is_keyword("in", "of"):
                ts.advance()
                node = Node("ForIn", children=[Node("SymbolVar", value=name.text)])
                node.add_child(self.parse_expression())
                ts.expect_op(")")
                self.parse_block_into(node)
                return node
            ts.pos = save
            init = self.parse_var_statement_noconsume_semi()
        elif not ts.current.is_op(";"):
            first = self.parse_expression()
            if ts.current.is_keyword("in", "of"):
                ts.advance()
                node = Node("ForIn", children=[first, self.parse_expression()])
                ts.expect_op(")")
                self.parse_block_into(node)
                return node
            init = first
        node = Node("For")
        if init is not None:
            node.add_child(init)
        ts.expect_op(";")
        if not ts.current.is_op(";"):
            node.add_child(self.parse_expression())
        ts.expect_op(";")
        if not ts.current.is_op(")"):
            node.add_child(self.parse_expression())
        ts.expect_op(")")
        self.parse_block_into(node)
        return node

    def parse_var_statement_noconsume_semi(self) -> Node:
        """``var`` clause of a for-loop header (no trailing semicolon)."""
        ts = self.ts
        ts.advance()
        node = Node("Var")
        while True:
            name = ts.expect_ident()
            vardef = Node("VarDef", children=[Node("SymbolVar", value=name.text)])
            if ts.match_op("="):
                vardef.add_child(self.parse_assignment())
            node.add_child(vardef)
            if not ts.match_op(","):
                break
        return node

    def parse_try(self) -> Node:
        ts = self.ts
        ts.expect_keyword("try")
        node = Node("Try")
        body = Node("TryBody")
        self.parse_block_into(body)
        node.add_child(body)
        if ts.match_keyword("catch"):
            catch = Node("Catch")
            if ts.match_op("("):
                name = ts.expect_ident()
                catch.add_child(Node("SymbolCatch", value=name.text))
                ts.expect_op(")")
            self.parse_block_into(catch)
            node.add_child(catch)
        if ts.match_keyword("finally"):
            fin = Node("Finally")
            self.parse_block_into(fin)
            node.add_child(fin)
        return node

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> Node:
        expr = self.parse_assignment()
        if self.ts.current.is_op(","):
            seq = Node("Seq", children=[expr])
            while self.ts.match_op(","):
                seq.add_child(self.parse_assignment())
            return seq
        return expr

    def parse_assignment(self) -> Node:
        left = self.parse_conditional()
        tok = self.ts.current
        if tok.kind == OP and tok.text in _ASSIGN_OPS:
            op = self.ts.advance().text
            right = self.parse_assignment()
            return Node(f"Assign{op}", children=[left, right])
        return left

    def parse_conditional(self) -> Node:
        cond = self.parse_binary(0)
        if self.ts.match_op("?"):
            then = self.parse_assignment()
            self.ts.expect_op(":")
            other = self.parse_assignment()
            return Node("Conditional", children=[cond, then, other])
        return cond

    _BINARY_LEVELS = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!=", "===", "!=="),
        ("<", ">", "<=", ">=", "instanceof", "in"),
        ("<<", ">>", ">>>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def parse_binary(self, level: int) -> Node:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self.parse_binary(level + 1)
        while True:
            tok = self.ts.current
            is_kw_op = tok.kind == KEYWORD and tok.text in ops
            if (tok.kind == OP and tok.text in ops) or is_kw_op:
                op = self.ts.advance().text
                right = self.parse_binary(level + 1)
                left = Node(f"Binary{op}", children=[left, right])
            else:
                return left

    def parse_unary(self) -> Node:
        ts = self.ts
        tok = ts.current
        if tok.kind == OP and tok.text in ("!", "-", "+", "~", "++", "--"):
            op = ts.advance().text
            return Node(f"UnaryPrefix{op}", children=[self.parse_unary()])
        if tok.is_keyword("typeof", "delete", "void"):
            op = ts.advance().text
            return Node(f"UnaryPrefix{op}", children=[self.parse_unary()])
        if tok.is_keyword("new"):
            ts.advance()
            callee = self.parse_callee_for_new()
            node = Node("New", children=[callee])
            if ts.match_op("("):
                self.parse_args_into(node)
            return self.parse_call_tail(node)
        return self.parse_postfix()

    def parse_callee_for_new(self) -> Node:
        """Member chain of a ``new`` expression, without call parentheses."""
        node = self.parse_primary()
        while True:
            if self.ts.current.is_op("."):
                self.ts.advance()
                prop = self.ts.expect_ident()
                node = Node("Dot", children=[node, Node("Property", value=prop.text)])
            else:
                return node

    def parse_postfix(self) -> Node:
        node = self.parse_call_tail(self.parse_primary())
        tok = self.ts.current
        if tok.kind == OP and tok.text in ("++", "--"):
            op = self.ts.advance().text
            return Node(f"UnaryPostfix{op}", children=[node])
        return node

    def parse_call_tail(self, node: Node) -> Node:
        ts = self.ts
        while True:
            if ts.current.is_op("."):
                ts.advance()
                prop_tok = ts.current
                if prop_tok.kind not in (IDENT, KEYWORD):
                    raise ts.error("expected property name after '.'")
                ts.advance()
                node = Node("Dot", children=[node, Node("Property", value=prop_tok.text)])
            elif ts.current.is_op("["):
                ts.advance()
                index = self.parse_expression()
                ts.expect_op("]")
                node = Node("Sub", children=[node, index])
            elif ts.current.is_op("("):
                ts.advance()
                call = Node("Call", children=[node])
                self.parse_args_into(call)
                node = call
            else:
                return node

    def parse_args_into(self, node: Node) -> None:
        ts = self.ts
        while not ts.current.is_op(")"):
            node.add_child(self.parse_assignment())
            if not ts.match_op(","):
                break
        ts.expect_op(")")

    def parse_primary(self) -> Node:
        ts = self.ts
        tok = ts.current
        if tok.kind == IDENT:
            ts.advance()
            return Node("SymbolRef", value=tok.text)
        if tok.kind == NUMBER:
            ts.advance()
            return Node("Number", value=tok.text)
        if tok.kind in (STRING, CHAR):
            ts.advance()
            return Node("String", value=tok.text)
        if tok.is_keyword("true"):
            ts.advance()
            return Node("True", value="true")
        if tok.is_keyword("false"):
            ts.advance()
            return Node("False", value="false")
        if tok.is_keyword("null"):
            ts.advance()
            return Node("Null", value="null")
        if tok.is_keyword("undefined"):
            ts.advance()
            return Node("Undefined", value="undefined")
        if tok.is_keyword("this"):
            ts.advance()
            return Node("This", value="this")
        if tok.is_keyword("function"):
            return self.parse_function(declaration=False)
        if tok.is_op("("):
            ts.advance()
            expr = self.parse_expression()
            ts.expect_op(")")
            return expr
        if tok.is_op("["):
            ts.advance()
            arr = Node("Array")
            while not ts.current.is_op("]"):
                arr.add_child(self.parse_assignment())
                if not ts.match_op(","):
                    break
            ts.expect_op("]")
            return arr
        if tok.is_op("{"):
            ts.advance()
            obj = Node("Object")
            while not ts.current.is_op("}"):
                key_tok = ts.current
                if key_tok.kind not in (IDENT, STRING, NUMBER, KEYWORD):
                    raise ts.error("expected object key")
                ts.advance()
                kv = Node("ObjectKeyVal", children=[Node("Key", value=key_tok.text)])
                ts.expect_op(":")
                kv.add_child(self.parse_assignment())
                obj.add_child(kv)
                if not ts.match_op(","):
                    break
            ts.expect_op("}")
            return obj
        raise ts.error(f"unexpected token {tok}")


# ----------------------------------------------------------------------
# Scope resolution
# ----------------------------------------------------------------------

_FUNCTION_KINDS = ("Defun", "Function")


class _Scope:
    __slots__ = ("scope_id", "parent", "declarations")

    def __init__(self, scope_id: int, parent: Optional["_Scope"]) -> None:
        self.scope_id = scope_id
        self.parent = parent
        # name -> id_kind at declaration site
        self.declarations: Dict[str, str] = {}

    def resolve(self, name: str) -> Optional["_Scope"]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.declarations:
                return scope
            scope = scope.parent
        return None


def _collect_declarations(fn_node: Node, scope: _Scope) -> None:
    """Hoist declarations of one function scope (not nested functions)."""

    def rec(node: Node, at_function_root: bool) -> None:
        for child in node.children:
            if child.kind in _FUNCTION_KINDS and not at_function_root:
                # Nested function: its params/vars belong to its own scope,
                # but a Defun name is declared in *this* scope.
                for sub in child.children:
                    if sub.kind == "SymbolDefun":
                        scope.declarations.setdefault(sub.value or "", "function")
                continue
            if child.kind == "SymbolFunarg" and at_function_root:
                scope.declarations[child.value or ""] = "param"
            elif child.kind == "SymbolVar":
                scope.declarations.setdefault(child.value or "", "local")
            elif child.kind == "SymbolCatch":
                scope.declarations.setdefault(child.value or "", "local")
            elif child.kind == "SymbolDefun":
                scope.declarations.setdefault(child.value or "", "function")
            if child.kind in _FUNCTION_KINDS:
                continue  # do not descend into nested function bodies
            rec(child, at_function_root=False)

    rec(fn_node, at_function_root=True)
    # Also catch Defun/Function children's names declared directly above.
    for child in fn_node.children:
        if child.kind in _FUNCTION_KINDS:
            for sub in child.children:
                if sub.kind == "SymbolDefun":
                    scope.declarations.setdefault(sub.value or "", "function")


def resolve_scopes(root: Node) -> None:
    """Attach ``meta["binding"]`` / ``meta["id_kind"]`` to identifiers."""
    counter = [0]

    def new_scope(parent: Optional[_Scope]) -> _Scope:
        counter[0] += 1
        return _Scope(counter[0], parent)

    def mark(node: Node, scope: _Scope) -> None:
        if node.kind in ("SymbolRef", "SymbolVar", "SymbolFunarg", "SymbolCatch"):
            name = node.value or ""
            decl_scope = scope.resolve(name)
            if decl_scope is None:
                node.meta["id_kind"] = "global"
                node.meta["binding"] = f"g:{name}"
            else:
                node.meta["id_kind"] = decl_scope.declarations[name]
                node.meta["binding"] = f"s{decl_scope.scope_id}:{name}"
        elif node.kind in ("SymbolDefun", "SymbolLambda"):
            name = node.value or ""
            node.meta["id_kind"] = "function"
            decl_scope = scope.resolve(name) or scope
            node.meta["binding"] = f"s{decl_scope.scope_id}:{name}"
        elif node.kind in ("Property", "Key"):
            node.meta["id_kind"] = "property"
            node.meta["binding"] = f"p:{node.value}"

    def visit(node: Node, scope: _Scope) -> None:
        mark(node, scope)
        for child in node.children:
            if child.kind in _FUNCTION_KINDS:
                child_scope = new_scope(scope)
                _collect_declarations(child, child_scope)
                visit(child, child_scope)
            else:
                visit(child, scope)

    global_scope = new_scope(None)
    _collect_declarations(root, global_scope)
    visit(root, global_scope)


class JavaScriptFrontend:
    """PIGEON's JavaScript module."""

    name = "javascript"

    def parse(self, source: str) -> Ast:
        root = _JsParser(source).parse_program()
        resolve_scopes(root)
        return Ast(root, language="javascript")


def parse_js(source: str) -> Ast:
    """Parse JavaScript source into a generic AST."""
    return JavaScriptFrontend().parse(source)
