"""The combined prediction graph behind the ``translate`` task.

Translation renames *everything the CRF can rename* in one shot, so its
factor graph is the union of the variable-naming graph (Sec. 5.3.1) and
the method-naming graph (Sec. 5.3.2) over one file:

* one unknown per renameable variable/parameter binding, with the full
  path-factor structure of :func:`repro.tasks.variable_naming.build_crf_graph`;
* one unknown per method declaration (keyed ``method:{i}:{gold}`` exactly
  as :func:`repro.tasks.method_naming.method_elements` keys them), with
  internal, external, and occurrence-unary factors.

Key spaces cannot collide: variable unknowns are frontend binding keys
(``m1:total``, ``s2:count``, ...) while method unknowns carry the
``method:`` prefix.  :class:`repro.translate.Translator` relies on this
key identity -- it looks predictions up under the same binding / method
keys its lifters produce.
"""

from __future__ import annotations

from ..core.ast_model import Ast
from ..core.extraction import PathExtractor
from ..learning.crf.graph import CrfGraph
from .method_naming import add_method_factors, method_elements
from .variable_naming import _add_factor, element_groups


def build_translate_graph(
    ast: Ast, extractor: PathExtractor, name: str = ""
) -> CrfGraph:
    """One CRF graph holding a file's variable *and* method unknowns."""
    graph = CrfGraph(name=name, space=extractor.space)

    groups = element_groups(ast)
    for binding, occurrences in groups.items():
        graph.add_unknown(binding, gold=occurrences[0].value or "")

    methods = method_elements(ast)
    for key, info in methods.items():
        graph.add_unknown(key, gold=str(info["gold"]))

    for extracted in extractor.extract(ast):
        _add_factor(graph, extractor, extracted)
    add_method_factors(graph, ast, extractor, methods)
    return graph
