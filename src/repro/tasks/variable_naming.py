"""Variable-name prediction (Sec. 5.3.1).

The renameable program elements are local variables and parameters --
the names that minification strips in JavaScript and obfuscation strips
elsewhere.  All AST occurrences of one element (one frontend ``binding``)
merge into a single CRF node; paths between occurrences of the *same*
element become unary factors, paths to fixed-label neighbours become
pairwise factors, and paths between two renameable elements become
unknown-unknown factors.

Factors are built from the extractor's **interned ids** (relation ids
and endpoint-value ids) -- no path strings are materialised on this
path.  The same extraction drives word2vec: each (element, path-context)
pair becomes an SGNS training pair whose context token is the id pair
``(rel_id, other-endpoint value id)``.  Endpoints that are themselves
renameable elements are replaced by a placeholder so gold names never
leak into contexts.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.ast_model import Ast, Node
from ..core.extraction import ExtractedPath, PathExtractor
from ..core.interning import FeatureSpace
from ..core.path_context import endpoint_value
from ..learning.crf.graph import CrfGraph

#: ``meta["id_kind"]`` values that are prediction targets.
RENAMEABLE_KINDS = frozenset({"local", "param"})

#: Placeholder for the value of an unknown element inside a context.
PLACEHOLDER = "?"

#: Separator inside a *decoded* word2vec context token.
CONTEXT_SEP = "\x1d"

#: A word2vec context token: (relation id, other-endpoint value id).
W2vToken = Tuple[int, int]


def _binding_of(node: Node) -> Optional[str]:
    """The element key of a renameable identifier occurrence, else None."""
    if node.meta.get("id_kind") in RENAMEABLE_KINDS:
        return node.meta.get("binding")
    return None


def element_groups(ast: Ast) -> Dict[str, List[Node]]:
    """binding -> occurrence leaves, for every renameable element."""
    groups: Dict[str, List[Node]] = defaultdict(list)
    for leaf in ast.leaves:
        binding = _binding_of(leaf)
        if binding is not None:
            groups[binding].append(leaf)
    return dict(groups)


def build_crf_graph(
    ast: Ast, extractor: PathExtractor, name: str = ""
) -> CrfGraph:
    """Build the CRF factor graph of one program for variable naming."""
    graph = CrfGraph(name=name, space=extractor.space)
    groups = element_groups(ast)
    for binding, occurrences in groups.items():
        graph.add_unknown(binding, gold=occurrences[0].value or "")

    for extracted in extractor.extract(ast):
        _add_factor(graph, extractor, extracted)
    return graph


def _add_factor(
    graph: CrfGraph, extractor: PathExtractor, extracted: ExtractedPath
) -> None:
    start_binding = _binding_of(extracted.start)
    end_binding = _binding_of(extracted.end)
    if start_binding is None and end_binding is None:
        return
    rel_forward = extracted.rel_id

    if start_binding is not None and start_binding == end_binding:
        index = graph.index_of(start_binding)
        if index is not None:
            graph.add_unary_factor(index, rel_forward)
        return

    rel_backward = extractor.reversed_rel_id(extracted)
    if start_binding is not None and end_binding is not None:
        a = graph.index_of(start_binding)
        b = graph.index_of(end_binding)
        if a is not None and b is not None:
            graph.add_unknown_factor(a, b, rel_forward, rel_backward)
        return

    if start_binding is not None:
        index = graph.index_of(start_binding)
        if index is not None:
            graph.add_known_factor(index, rel_forward, extracted.end_value_id)
        return

    index = graph.index_of(end_binding)  # type: ignore[arg-type]
    if index is not None:
        graph.add_known_factor(index, rel_backward, extracted.start_value_id)


# ----------------------------------------------------------------------
# word2vec view of the same extraction
# ----------------------------------------------------------------------


def context_token(rel: str, other_label: str) -> str:
    """Serialise (relation, neighbour label) into one *string* token.

    Kept for token-stream baselines and debugging output; the AST-path
    pipeline passes interned :data:`W2vToken` id pairs instead.
    """
    return f"{rel}{CONTEXT_SEP}{other_label}"


def decode_w2v_token(token: W2vToken, space: FeatureSpace) -> str:
    """Render an interned (rel_id, value_id) token in the string form."""
    rel_id, value_id = token
    return context_token(space.paths.value(rel_id), space.values.value(value_id))


def element_contexts(
    ast: Ast, extractor: PathExtractor
) -> Dict[str, Tuple[str, List[W2vToken]]]:
    """binding -> (gold name, context id-pair tokens) for word2vec.

    Other unknown elements appearing at the far endpoint are masked with
    :data:`PLACEHOLDER` so that the gold assignment never leaks.
    """
    groups = element_groups(ast)
    contexts: Dict[str, List[W2vToken]] = {binding: [] for binding in groups}
    placeholder_id = extractor.space.values.intern(PLACEHOLDER)

    for extracted in extractor.extract(ast):
        start_binding = _binding_of(extracted.start)
        end_binding = _binding_of(extracted.end)
        if start_binding is None and end_binding is None:
            continue
        if start_binding is not None and start_binding == end_binding:
            continue  # self-contexts would pair a name with itself
        if start_binding is not None:
            other = (
                placeholder_id if end_binding is not None else extracted.end_value_id
            )
            contexts[start_binding].append((extracted.rel_id, other))
        if end_binding is not None:
            rel_back = extractor.reversed_rel_id(extracted)
            other = (
                placeholder_id
                if start_binding is not None
                else extracted.start_value_id
            )
            contexts[end_binding].append((rel_back, other))

    return {
        binding: (groups[binding][0].value or "", tokens)
        for binding, tokens in contexts.items()
    }


def extract_w2v_pairs(
    ast: Ast, extractor: PathExtractor
) -> List[Tuple[str, W2vToken]]:
    """(gold name, context id-pair token) training pairs for SGNS."""
    pairs: List[Tuple[str, W2vToken]] = []
    for _binding, (gold, tokens) in element_contexts(ast, extractor).items():
        for token in tokens:
            pairs.append((gold, token))
    return pairs
