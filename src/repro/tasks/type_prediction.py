"""Full-type prediction for Java (Sec. 5.3.3).

Targets are expressions whose fully-qualified type the frontend's local
inference oracle could determine (``meta["type"]``) -- the paper likewise
evaluates "only those that could be solved by a global type inference
engine".  Targets include nonterminals (method calls, binary expressions,
conditionals), so this task exercises paths between terminals and
*nonterminal* path ends.

Occurrences of one variable (same binding) share a type and merge into a
single element; other expressions are one element per occurrence.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ast_model import Ast, Node
from ..core.extraction import PathExtractor
from ..learning.crf.graph import CrfGraph

#: Literal node kinds are excluded: their types are lexically trivial.
_EXCLUDED_KINDS = frozenset(
    {
        "IntegerLiteral",
        "DoubleLiteral",
        "BooleanLiteral",
        "CharLiteral",
        "NullLiteral",
        "ThisExpr",
        "StringLiteral",
        "SimpleName",
        "Parameter",
        "VariableDeclarator",
        "VariableDeclarationExpr",
    }
)

#: All literal kinds are excluded -- their types are lexically trivial.
_INCLUDED_LITERALS = frozenset()

#: Primitive types are excluded from the task: the paper predicts *full*
#: (package-qualified) types, which only reference types have.
_PRIMITIVE_TYPES = frozenset(
    {"int", "long", "double", "float", "boolean", "char", "byte", "short", "void"}
)


def typed_targets(ast: Ast) -> List[Node]:
    """Expression nodes participating in the type task.

    Reference-typed expressions whose full type the oracle determined;
    primitives are out of scope (they have no package-qualified form).
    """
    targets = []
    for node in ast.root.walk():
        node_type = node.meta.get("type")
        if node_type is None or node_type in _PRIMITIVE_TYPES:
            continue
        if node.kind in _EXCLUDED_KINDS and node.kind not in _INCLUDED_LITERALS:
            continue
        targets.append(node)
    return targets


def _element_key(node: Node, counter: Dict[str, int]) -> str:
    """Merge variable occurrences by binding; others are per-occurrence."""
    binding = node.meta.get("binding")
    if node.kind == "NameExpr" and binding:
        return f"var:{binding}"
    counter["n"] += 1
    return f"expr:{counter['n']}:{node.kind}"


def build_type_graph(
    ast: Ast, extractor: PathExtractor, name: str = ""
) -> CrfGraph:
    """CRF graph whose unknowns are typed expressions; gold = full type."""
    graph = CrfGraph(name=name, space=extractor.space)
    counter = {"n": 0}
    occurrences: Dict[str, List[Node]] = defaultdict(list)
    golds: Dict[str, str] = {}

    for node in typed_targets(ast):
        key = _element_key(node, counter)
        occurrences[key].append(node)
        golds[key] = str(node.meta["type"])

    for key, nodes in occurrences.items():
        graph.add_unknown(key, gold=golds[key])

    all_leaves = ast.leaves
    for key, nodes in occurrences.items():
        index = graph.index_of(key)
        assert index is not None
        for node in nodes:
            targets = _nearby_leaves(ast, node, extractor)
            for extracted in extractor.paths_from([node], targets):
                graph.add_known_factor(
                    index, extracted.rel_id, extracted.end_value_id
                )
        # Unary factors between occurrences of the same variable.
        if len(nodes) > 1:
            for extracted in extractor.paths_from(nodes[:1], nodes[1:], enforce_limits=False):
                graph.add_unary_factor(index, extracted.rel_id)
    return graph


def _nearby_leaves(
    ast: Ast, node: Node, extractor: PathExtractor, window: int = 16
) -> List[Node]:
    """Candidate far-endpoints for one expression node.

    For a terminal target we use the leaf-order window; for a nonterminal
    we use the leaves around (and inside) its own span.
    """
    if node.is_terminal:
        try:
            center = ast.leaf_index(node)
        except ValueError:
            return []
        lo = max(0, center - window)
        hi = min(len(ast.leaves), center + window + 1)
        return [leaf for leaf in ast.leaves[lo:hi] if leaf is not node]
    inner = list(node.leaves())
    if not inner:
        return []
    try:
        first = ast.leaf_index(inner[0])
        last = ast.leaf_index(inner[-1])
    except ValueError:
        return inner
    lo = max(0, first - window // 2)
    hi = min(len(ast.leaves), last + window // 2 + 1)
    return [leaf for leaf in ast.leaves[lo:hi]]
