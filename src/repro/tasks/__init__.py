"""Prediction tasks (Sec. 5.3): variable names, method names, full types."""

from .variable_naming import (
    RENAMEABLE_KINDS,
    build_crf_graph,
    decode_w2v_token,
    element_groups,
    extract_w2v_pairs,
    element_contexts,
)
from .method_naming import build_method_graph, method_elements
from .type_prediction import build_type_graph, typed_targets

__all__ = [
    "RENAMEABLE_KINDS",
    "build_crf_graph",
    "decode_w2v_token",
    "element_groups",
    "extract_w2v_pairs",
    "element_contexts",
    "build_method_graph",
    "method_elements",
    "build_type_graph",
    "typed_targets",
]
