"""Method-name prediction (Sec. 5.3.2).

For each method we use the *internal* paths from the leaf that represents
the method name to the other leaves within the method (capturing the
implementation), and -- when available in the same file -- the *external*
paths from invocations of the method to their surrounding leaves
(capturing usage).  The paper found external paths worth about one
accuracy point; ``use_external=False`` reproduces that ablation.

All other names in the method are assumed given (the task definition of
Allamanis et al. [6] the paper follows), so neighbour labels are the real
identifier values.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ast_model import Ast, Node
from ..core.extraction import PathExtractor
from ..core.path_context import endpoint_value
from ..learning.crf.graph import CrfGraph

#: Per-language: node kind of a method *declaration* name terminal, and a
#: predicate for the declaration node kind that owns the method body.
_DECL_NAME_KINDS = {
    "javascript": ("SymbolDefun",),
    "java": ("SimpleName",),
    "python": ("FunctionName",),
    "csharp": ("IdentifierToken",),
}

_METHOD_OWNER_KINDS = {
    "javascript": ("Defun",),
    "java": ("MethodDeclaration",),
    "python": ("FunctionDef",),
    "csharp": ("MethodDeclaration",),
}


def _declaration_names(ast: Ast) -> List[Node]:
    """Declaration-site name terminals of the file's methods."""
    name_kinds = _DECL_NAME_KINDS.get(ast.language, ("SymbolDefun",))
    owner_kinds = _METHOD_OWNER_KINDS.get(ast.language, ("Defun",))
    out = []
    for node in ast.root.walk():
        if node.kind in owner_kinds:
            for child in node.children:
                if child.kind in name_kinds:
                    out.append(child)
                    break
    return out


def _invocation_names(ast: Ast, method_name: str) -> List[Node]:
    """Same-file invocation-site name nodes matching a method name."""
    language = ast.language
    matches: List[Node] = []
    for node in ast.root.walk():
        if language == "javascript":
            if node.kind == "Call" and node.children:
                callee = node.children[0]
                if callee.kind == "SymbolRef" and callee.value == method_name:
                    matches.append(callee)
        elif language == "java":
            if node.kind == "MethodCallExpr" and node.children:
                first = node.children[0]
                if first.kind == "SimpleName" and first.value == method_name:
                    matches.append(first)
        elif language == "python":
            if node.kind == "Call" and node.children:
                callee = node.children[0]
                if callee.kind == "Name" and callee.value == method_name:
                    matches.append(callee)
        elif language == "csharp":
            if node.kind == "InvocationExpression" and node.children:
                callee = node.children[0]
                if callee.kind == "IdentifierName" and callee.value == method_name:
                    matches.append(callee)
    return matches


def method_elements(ast: Ast) -> Dict[str, Dict[str, object]]:
    """key -> {gold, decl_node, occurrences, body_root} for each method."""
    out: Dict[str, Dict[str, object]] = {}
    for i, decl in enumerate(_declaration_names(ast)):
        gold = decl.value or ""
        occurrences = [decl] + _invocation_names(ast, gold)
        out[f"method:{i}:{gold}"] = {
            "gold": gold,
            "decl_node": decl,
            "occurrences": occurrences,
            "body_root": decl.parent,
        }
    return out


def build_method_graph(
    ast: Ast,
    extractor: PathExtractor,
    name: str = "",
    use_external: bool = True,
) -> CrfGraph:
    """CRF graph whose unknowns are the file's method names."""
    graph = CrfGraph(name=name, space=extractor.space)
    elements = method_elements(ast)
    for key, info in elements.items():
        graph.add_unknown(key, gold=str(info["gold"]))
    add_method_factors(graph, ast, extractor, elements, use_external=use_external)
    return graph


def add_method_factors(
    graph: CrfGraph,
    ast: Ast,
    extractor: PathExtractor,
    elements: Dict[str, Dict[str, object]],
    use_external: bool = True,
) -> None:
    """Attach the method-naming factors for ``elements`` to ``graph``.

    Shared between :func:`build_method_graph` and the combined
    ``translate`` task graph (:mod:`repro.tasks.translate`), which mixes
    method unknowns with variable unknowns in one graph.
    """
    # Nodes that are method-name occurrences must never appear as "known"
    # neighbours of another method (their labels are being predicted).
    occupied = {id(n) for info in elements.values() for n in info["occurrences"]}

    for key, info in elements.items():
        index = graph.index_of(key)
        assert index is not None
        decl = info["decl_node"]
        body_root = info["body_root"]
        occurrences: List[Node] = list(info["occurrences"])  # type: ignore[arg-type]

        # Internal paths: declaration name -> leaves of the method body.
        internal_targets = [
            leaf for leaf in body_root.leaves() if leaf is not decl
        ] if body_root is not None else []
        for extracted in extractor.paths_from([decl], internal_targets):
            if id(extracted.end) in occupied:
                continue
            graph.add_known_factor(index, extracted.rel_id, extracted.end_value_id)

        if use_external:
            for call_site in occurrences[1:]:
                # External paths: invocation name -> surrounding leaves of
                # the *calling* context (outside the method body).
                surrounding = _surrounding_leaves(ast, call_site, extractor)
                for extracted in extractor.paths_from([call_site], surrounding):
                    if id(extracted.end) in occupied:
                        continue
                    graph.add_known_factor(
                        index, extracted.rel_id, extracted.end_value_id
                    )
                # Unary factors between occurrences of the method name.
                for extracted in extractor.paths_from(
                    [decl], [call_site], enforce_limits=False
                ):
                    graph.add_unary_factor(index, extracted.rel_id)


def _surrounding_leaves(
    ast: Ast, node: Node, extractor: PathExtractor, window: int = 12
) -> List[Node]:
    """Leaves near an invocation site, by leaf order."""
    try:
        center = ast.leaf_index(node)
    except ValueError:
        return []
    lo = max(0, center - window)
    hi = min(len(ast.leaves), center + window + 1)
    return [leaf for leaf in ast.leaves[lo:hi] if leaf is not node]
