"""Evaluation: metrics, experiment harness, report formatting."""

from .metrics import (
    exact_match,
    normalize_name,
    subtoken_f1,
    subtokens,
    AccuracyCounter,
    SubtokenF1Counter,
)

__all__ = [
    "exact_match",
    "normalize_name",
    "subtoken_f1",
    "subtokens",
    "AccuracyCounter",
    "SubtokenF1Counter",
]
