"""Result analysis utilities.

The paper discusses out-of-vocabulary rates (5-15% across datasets and
tasks, Sec. 5.3), the interpretability of CRF weights, and qualitative
error patterns.  This module computes those analyses for our corpora:

* :func:`oov_rate` -- fraction of test labels never seen in training,
  split into *neologisms* (composable from known subtokens) and entirely
  new names, the two OoV classes of Allamanis et al. the paper cites;
* :func:`error_breakdown` -- confusion counts between gold and predicted
  names;
* :func:`label_distribution` -- gold-label frequencies (used to sanity
  check the naive baselines).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .metrics import exact_match, normalize_name, subtokens


@dataclass
class OovReport:
    """Out-of-vocabulary statistics for one train/test label split."""

    total: int = 0
    in_vocabulary: int = 0
    neologisms: int = 0
    unknown: int = 0

    @property
    def oov_rate(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.neologisms + self.unknown) / self.total

    @property
    def neologism_rate(self) -> float:
        return self.neologisms / self.total if self.total else 0.0


def oov_rate(train_labels: Iterable[str], test_labels: Iterable[str]) -> OovReport:
    """Classify test labels as in-vocabulary / neologism / unknown."""
    vocabulary = {normalize_name(label) for label in train_labels}
    subtoken_vocabulary: Set[str] = set()
    for label in vocabulary:
        subtoken_vocabulary.update(subtokens(label))

    report = OovReport()
    for label in test_labels:
        report.total += 1
        if normalize_name(label) in vocabulary:
            report.in_vocabulary += 1
        elif subtokens(label) and all(
            tok in subtoken_vocabulary for tok in subtokens(label)
        ):
            report.neologisms += 1
        else:
            report.unknown += 1
    return report


@dataclass
class ErrorBreakdown:
    """Confusions between gold and predicted labels."""

    confusions: Counter = field(default_factory=Counter)
    correct: int = 0
    total: int = 0

    def add(self, predicted: Optional[str], gold: str) -> None:
        self.total += 1
        if exact_match(predicted, gold):
            self.correct += 1
        else:
            self.confusions[(gold, predicted or "<none>")] += 1

    def top_confusions(self, n: int = 10) -> List[Tuple[Tuple[str, str], int]]:
        return self.confusions.most_common(n)

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


def error_breakdown(
    predictions: Sequence[Optional[str]], golds: Sequence[str]
) -> ErrorBreakdown:
    """Build an :class:`ErrorBreakdown` from parallel sequences."""
    if len(predictions) != len(golds):
        raise ValueError("predictions and golds must have the same length")
    breakdown = ErrorBreakdown()
    for predicted, gold in zip(predictions, golds):
        breakdown.add(predicted, gold)
    return breakdown


def label_distribution(labels: Iterable[str]) -> List[Tuple[str, float]]:
    """(label, fraction) pairs, most frequent first."""
    counts = Counter(labels)
    total = sum(counts.values())
    if total == 0:
        return []
    return [(label, count / total) for label, count in counts.most_common()]


def majority_baseline_accuracy(
    train_labels: Iterable[str], test_labels: Iterable[str]
) -> float:
    """Accuracy of always predicting the most frequent training label."""
    counts = Counter(normalize_name(label) for label in train_labels)
    if not counts:
        return 0.0
    majority = counts.most_common(1)[0][0]
    test = [normalize_name(label) for label in test_labels]
    if not test:
        return 0.0
    return sum(1 for label in test if label == majority) / len(test)
