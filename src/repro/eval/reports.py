"""Formatting of results into the paper's tables and figure series."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .harness import ExperimentResult


def format_table(
    title: str,
    rows: Sequence[Tuple[str, ...]],
    headers: Sequence[str],
) -> str:
    """Plain-text table with aligned columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells))

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [title, sep, fmt_row(headers), sep]
    lines.extend(fmt_row(row) for row in rows)
    lines.append(sep)
    return "\n".join(lines)


def accuracy_cell(result: Optional[ExperimentResult]) -> str:
    if result is None:
        return "-"
    return f"{result.accuracy:.1f}%"


def format_table2(
    sections: Sequence[Tuple[str, Sequence[Tuple[str, ExperimentResult]]]],
) -> str:
    """Table 2 layout: task sections, baseline vs AST-paths rows."""
    rows: List[Tuple[str, ...]] = []
    for section, entries in sections:
        rows.append((f"-- {section} --", "", ""))
        for label, result in entries:
            f1 = f"F1: {result.f1:.1f}" if result.f1 else ""
            rows.append((label, accuracy_cell(result), f1))
    return format_table(
        "Table 2: accuracy comparison (CRFs)",
        rows,
        ("Task / model", "Accuracy", ""),
    )


def format_series(
    title: str,
    results: Sequence[ExperimentResult],
    x_key: str,
    x_label: str,
) -> str:
    """A figure reported as a (x, accuracy, train-time) series."""
    rows = [
        (
            f"{r.extra.get(x_key, i):g}",
            f"{r.accuracy:.1f}%",
            f"{r.train_seconds:.1f}s",
            f"{r.n}",
        )
        for i, r in enumerate(results)
    ]
    return format_table(title, rows, (x_label, "Accuracy", "Train time", "n"))


def format_grid(
    title: str, results: Sequence[ExperimentResult]
) -> str:
    """Fig. 10 layout: accuracy by (max_length, max_width)."""
    lengths = sorted({int(r.extra["max_length"]) for r in results})
    widths = sorted({int(r.extra["max_width"]) for r in results})
    cell: Dict[Tuple[int, int], float] = {
        (int(r.extra["max_length"]), int(r.extra["max_width"])): r.accuracy
        for r in results
    }
    headers = ["max_width \\ max_length"] + [str(l) for l in lengths]
    rows = []
    for width in widths:
        row = [str(width)] + [
            f"{cell.get((length, width), float('nan')):.1f}%" for length in lengths
        ]
        rows.append(tuple(row))
    return format_table(title, rows, tuple(headers))


def format_comparison_rows(
    results: Sequence[Tuple[str, ExperimentResult]], title: str
) -> str:
    rows = [
        (label, accuracy_cell(result), f"{result.train_seconds:.1f}s", str(result.n))
        for label, result in results
    ]
    return format_table(title, rows, ("Model", "Accuracy", "Train time", "n"))
