"""Evaluation metrics (Sec. 5.2).

The paper measures **exact match**, case-insensitive and ignoring
non-alphabetical characters (``totalCount`` matches ``total_count``).
For the comparison against Allamanis et al. it additionally reports
**F1 over sub-tokens** (``getFoo`` vs gold ``getBar``: precision 1/2,
recall 1/2).  Unknown test labels ("UNK") always count as incorrect, and
models never predict UNK.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

#: The reserved unknown-label token.
UNK = "UNK"

_NON_ALNUM = re.compile(r"[^a-z0-9]+")
_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")


def normalize_name(name: str) -> str:
    """Lowercase and strip non-alphanumeric characters."""
    return _NON_ALNUM.sub("", name.lower())


def exact_match(predicted: Optional[str], gold: str) -> bool:
    """Paper's exact-match: case/punctuation-insensitive equality.

    ``None`` predictions and UNK gold labels never match.
    """
    if predicted is None or gold == UNK or predicted == UNK:
        return False
    return normalize_name(predicted) == normalize_name(gold)


def subtokens(name: str) -> List[str]:
    """Split a name into lowercase subtokens.

    Handles camelCase, PascalCase, snake_case and digit boundaries:
    ``multithreadedHttpConnectionManager`` ->
    ``[multithreaded, http, connection, manager]``.
    """
    pieces: List[str] = []
    for chunk in re.split(r"[^0-9a-zA-Z]+", name):
        if not chunk:
            continue
        for piece in _CAMEL_BOUNDARY.split(chunk):
            if piece:
                pieces.append(piece.lower())
    return pieces


def subtoken_f1(predicted: Optional[str], gold: str) -> Tuple[float, float, float]:
    """(precision, recall, F1) over sub-tokens for one prediction.

    Multiset intersection, as in the method-naming literature.  A ``None``
    prediction scores zero; UNK *parts* of a gold label reduce attainable
    recall (a partial prediction can still earn partial credit).
    """
    if predicted is None:
        return (0.0, 0.0, 0.0)
    pred_tokens = subtokens(predicted)
    gold_tokens = subtokens(gold)
    if not pred_tokens or not gold_tokens:
        return (0.0, 0.0, 0.0)
    overlap = 0
    remaining = list(gold_tokens)
    for token in pred_tokens:
        if token in remaining:
            remaining.remove(token)
            overlap += 1
    precision = overlap / len(pred_tokens)
    recall = overlap / len(gold_tokens)
    if precision + recall == 0:
        return (0.0, 0.0, 0.0)
    f1 = 2 * precision * recall / (precision + recall)
    return (precision, recall, f1)


@dataclass
class AccuracyCounter:
    """Streaming exact-match accuracy."""

    correct: int = 0
    total: int = 0

    def add(self, predicted: Optional[str], gold: str) -> bool:
        hit = exact_match(predicted, gold)
        self.correct += int(hit)
        self.total += 1
        return hit

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    def as_percent(self) -> float:
        return 100.0 * self.accuracy

    def merge(self, other: "AccuracyCounter") -> None:
        self.correct += other.correct
        self.total += other.total


@dataclass
class SubtokenF1Counter:
    """Streaming macro-averaged subtoken precision/recall/F1."""

    precision_sum: float = 0.0
    recall_sum: float = 0.0
    f1_sum: float = 0.0
    total: int = 0

    def add(self, predicted: Optional[str], gold: str) -> None:
        p, r, f = subtoken_f1(predicted, gold)
        self.precision_sum += p
        self.recall_sum += r
        self.f1_sum += f
        self.total += 1

    @property
    def precision(self) -> float:
        return self.precision_sum / self.total if self.total else 0.0

    @property
    def recall(self) -> float:
        return self.recall_sum / self.total if self.total else 0.0

    @property
    def f1(self) -> float:
        return self.f1_sum / self.total if self.total else 0.0


def topk_accuracy(
    predictions: Sequence[Sequence[str]], golds: Sequence[str], k: int
) -> float:
    """Fraction of golds found within the first k candidates."""
    if not golds:
        return 0.0
    hits = 0
    for candidates, gold in zip(predictions, golds):
        if any(exact_match(c, gold) for c in list(candidates)[:k]):
            hits += 1
    return hits / len(golds)
