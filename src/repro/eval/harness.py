"""Experiment harness: the machinery behind every table and figure.

Orchestrates corpus generation, parsing, training and evaluation for
each (language, task, representation, learner) cell, plus the parameter
sweeps of Figs. 10-12.  All entry points are deterministic under their
seeds, so the benchmark suite reproduces identical numbers across runs.

Cells are enumerated from the plugin registries
(:func:`compatible_specs`) and evaluated through the same
:class:`~repro.api.Pipeline` the public API uses
(:func:`evaluate_spec`), so a newly registered language, task,
representation or learner joins the experiment matrix without touching
this module.  The lower half of the module keeps the callable-based
engine (:func:`evaluate_crf` / :func:`evaluate_w2v`) that the parameter
sweeps and ablations drive with custom builders.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..api import ParsedProgram, Pipeline, RunSpec, UnsupportedSpecError
from ..api.learners import learners as learner_registry
from ..api.representations import representations as representation_registry
from ..api.tasks import tasks as task_registry
from ..core.ast_model import Ast
from ..core.extraction import ExtractionConfig, PathExtractor
from ..core.service import CorpusExtraction, ExtractionService
from ..corpus import deduplicate, generate_corpus, split_corpus
from ..corpus.generator import CorpusConfig, CorpusFile
from ..corpus.splits import CorpusSplit
from ..lang.base import parse_source, supported_languages
from ..learning.crf import CrfModel, CrfTrainer, TrainingConfig
from ..learning.crf.graph import CrfGraph
from ..learning.crf.inference import map_inference
from ..learning.word2vec import ContextPredictor, SgnsConfig, train_sgns
from ..tasks.method_naming import build_method_graph
from ..tasks.type_prediction import build_type_graph
from ..tasks.variable_naming import build_crf_graph, element_contexts
from .metrics import AccuracyCounter, SubtokenF1Counter

GraphBuilder = Callable[[CorpusFile, Ast], CrfGraph]
ContextProvider = Callable[[CorpusFile, Ast], Dict[str, Tuple[str, List[str]]]]


@dataclass
class ExperimentResult:
    """One cell of a results table."""

    name: str
    accuracy: float  # percent
    n: int
    f1: float = 0.0
    precision: float = 0.0
    recall: float = 0.0
    extract_seconds: float = 0.0
    train_seconds: float = 0.0
    predict_seconds: float = 0.0
    parameters: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        return f"{self.name}: {self.accuracy:.1f}% (n={self.n})"


@dataclass
class PreparedData:
    """A generated, deduplicated, split, parsed corpus for one language."""

    language: str
    split: CorpusSplit
    asts: Dict[str, Ast]
    removed_duplicates: int = 0

    def pairs(self, files: Sequence[CorpusFile]) -> List[Tuple[CorpusFile, Ast]]:
        return [(f, self.asts[f.path]) for f in files]

    @property
    def train(self) -> List[Tuple[CorpusFile, Ast]]:
        return self.pairs(self.split.train)

    @property
    def validation(self) -> List[Tuple[CorpusFile, Ast]]:
        return self.pairs(self.split.validation)

    @property
    def test(self) -> List[Tuple[CorpusFile, Ast]]:
        return self.pairs(self.split.test)


def prepare_language_data(
    language: str,
    corpus_config: Optional[CorpusConfig] = None,
    split_seed: int = 23,
) -> PreparedData:
    """Generate, dedup, split and parse a corpus for one language."""
    config = corpus_config or CorpusConfig(language=language)
    if config.language != language:
        config = CorpusConfig(**{**config.__dict__, "language": language})
    files = generate_corpus(config)
    kept, removed = deduplicate(files)
    split = split_corpus(kept, seed=split_seed)
    asts = {f.path: parse_source(language, f.source) for f in kept}
    return PreparedData(language=language, split=split, asts=asts, removed_duplicates=removed)


def extract_corpus(
    data: PreparedData,
    config: Optional[ExtractionConfig] = None,
    workers: int = 1,
) -> CorpusExtraction:
    """Index a prepared corpus through the :class:`ExtractionService`.

    Every file's path-contexts are interned into one shared vocab;
    ``workers > 1`` fans the parse+extract out over a process pool.  The
    result carries corpus-wide throughput stats (what ``pigeon extract``
    and the extraction benchmark report).
    """
    service = ExtractionService(config=config)
    files = (
        list(data.split.train) + list(data.split.validation) + list(data.split.test)
    )
    return service.index_sources(
        [f.source for f in files], data.language, workers=workers
    )


# ----------------------------------------------------------------------
# Registry-driven cells
# ----------------------------------------------------------------------


def compatible_specs(
    languages: Optional[Iterable[str]] = None,
    tasks: Optional[Iterable[str]] = None,
    representations: Optional[Iterable[str]] = None,
    learners: Optional[Iterable[str]] = None,
    **spec_fields,
) -> List[RunSpec]:
    """Every valid (language, task, representation, learner) cell.

    Each axis defaults to *everything currently registered*, so plugins
    added by user code appear in the matrix automatically.  Invalid
    combinations (a Java-only task under Python, a contexts-only
    representation with a graph learner, ...) are filtered by the same
    validation :class:`~repro.api.Pipeline` applies.  Extra keyword
    arguments (``extraction=...``, ``training=...``) are copied into
    every spec.
    """
    cells = []
    for language, task, representation, learner in product(
        tuple(languages) if languages is not None else supported_languages(),
        tuple(tasks) if tasks is not None else task_registry.names(),
        tuple(representations) if representations is not None else representation_registry.names(),
        tuple(learners) if learners is not None else learner_registry.names(),
    ):
        spec = RunSpec(
            language=language,
            task=task,
            representation=representation,
            learner=learner,
            **{k: dict(v) for k, v in spec_fields.items()},
        )
        try:
            Pipeline(spec)
        except UnsupportedSpecError:
            continue
        cells.append(spec)
    return cells


def _programs(language: str, pairs: Sequence[Tuple[CorpusFile, Ast]]) -> List[ParsedProgram]:
    return [
        ParsedProgram(language=language, source=f.source, ast=ast, name=f.path)
        for f, ast in pairs
    ]


def _view_gold(view) -> Dict[str, str]:
    """element key -> gold label, for either feature view."""
    if isinstance(view, CrfGraph):
        return {node.key: node.gold for node in view.unknowns}
    return {key: gold for key, (gold, _tokens) in view.items()}


def evaluate_spec(
    spec: RunSpec,
    data: PreparedData,
    name: Optional[str] = None,
    with_f1: bool = False,
    eval_files: Optional[Sequence[CorpusFile]] = None,
) -> ExperimentResult:
    """Train and evaluate one registry cell on a prepared corpus.

    The generic replacement for per-cell glue: builds the cell's
    :class:`~repro.api.Pipeline`, trains it on ``data.train``, and
    scores exact match (optionally subtoken F1) on ``data.test`` (or
    ``eval_files``).
    """
    if spec.language != data.language:
        raise ValueError(
            f"spec is for language {spec.language!r} but data is {data.language!r}"
        )
    pipeline = Pipeline(spec)

    t0 = time.perf_counter()
    train_views = [pipeline.view(p) for p in _programs(spec.language, data.train)]
    eval_pairs = data.pairs(eval_files) if eval_files is not None else data.test
    test_views = [pipeline.view(p) for p in _programs(spec.language, eval_pairs)]
    extract_seconds = time.perf_counter() - t0

    learner_stats = pipeline.fit_views(train_views)

    t0 = time.perf_counter()
    accuracy = AccuracyCounter()
    f1 = SubtokenF1Counter()
    for view in test_views:
        predictions = pipeline.learner.predict(view)
        for key, gold in _view_gold(view).items():
            accuracy.add(predictions.get(key), gold)
            if with_f1:
                f1.add(predictions.get(key), gold)
    predict_seconds = time.perf_counter() - t0

    return ExperimentResult(
        name=name or spec.cell(),
        accuracy=accuracy.as_percent(),
        n=accuracy.total,
        f1=100.0 * f1.f1 if with_f1 else 0.0,
        precision=100.0 * f1.precision if with_f1 else 0.0,
        recall=100.0 * f1.recall if with_f1 else 0.0,
        extract_seconds=extract_seconds,
        train_seconds=learner_stats.train_seconds,
        predict_seconds=predict_seconds,
        parameters=learner_stats.parameters,
    )


def evaluate_cells(
    specs: Iterable[RunSpec],
    data: Mapping[str, PreparedData],
    with_f1: bool = False,
) -> List[ExperimentResult]:
    """Evaluate a batch of cells; ``data`` maps language -> corpus."""
    return [
        evaluate_spec(spec, data[spec.language], with_f1=with_f1) for spec in specs
    ]


# ----------------------------------------------------------------------
# CRF evaluation
# ----------------------------------------------------------------------


def evaluate_crf(
    data: PreparedData,
    train_builder: GraphBuilder,
    test_builder: Optional[GraphBuilder] = None,
    training_config: Optional[TrainingConfig] = None,
    name: str = "crf",
    with_f1: bool = False,
    eval_files: Optional[Sequence[CorpusFile]] = None,
) -> ExperimentResult:
    """Train a CRF with one graph builder and evaluate exact match."""
    test_builder = test_builder or train_builder

    t0 = time.perf_counter()
    train_graphs = [train_builder(f, ast) for f, ast in data.train]
    eval_pairs = data.pairs(eval_files) if eval_files is not None else data.test
    test_graphs = [test_builder(f, ast) for f, ast in eval_pairs]
    extract_seconds = time.perf_counter() - t0

    trainer = CrfTrainer(training_config or TrainingConfig())
    model, stats = trainer.train(train_graphs)

    t0 = time.perf_counter()
    accuracy = AccuracyCounter()
    f1 = SubtokenF1Counter()
    for graph in test_graphs:
        assignment = map_inference(model, graph)
        for i, node in enumerate(graph.unknowns):
            accuracy.add(assignment[i], node.gold)
            if with_f1:
                f1.add(assignment[i], node.gold)
    predict_seconds = time.perf_counter() - t0

    return ExperimentResult(
        name=name,
        accuracy=accuracy.as_percent(),
        n=accuracy.total,
        f1=100.0 * f1.f1 if with_f1 else 0.0,
        precision=100.0 * f1.precision if with_f1 else 0.0,
        recall=100.0 * f1.recall if with_f1 else 0.0,
        extract_seconds=extract_seconds,
        train_seconds=stats.train_seconds,
        predict_seconds=predict_seconds,
        parameters=stats.parameters,
    )


def path_graph_builder(
    max_length: int = 7,
    max_width: int = 3,
    abstraction: str = "full",
    downsample_p: float = 1.0,
    seed: int = 17,
) -> GraphBuilder:
    """The standard AST-paths graph builder for variable naming."""
    extractor = PathExtractor(
        ExtractionConfig(
            max_length=max_length,
            max_width=max_width,
            abstraction=abstraction,
            downsample_p=downsample_p,
            seed=seed,
        )
    )

    def build(file: CorpusFile, ast: Ast) -> CrfGraph:
        return build_crf_graph(ast, extractor, name=file.path)

    return build


def method_graph_builder(
    max_length: int = 12,
    max_width: int = 4,
    abstraction: str = "full",
    use_external: bool = True,
) -> GraphBuilder:
    """Graph builder for the method-naming task."""
    extractor = PathExtractor(
        ExtractionConfig(
            max_length=max_length, max_width=max_width, abstraction=abstraction
        )
    )

    def build(file: CorpusFile, ast: Ast) -> CrfGraph:
        return build_method_graph(ast, extractor, name=file.path, use_external=use_external)

    return build


def type_graph_builder(
    max_length: int = 4, max_width: int = 1, abstraction: str = "full"
) -> GraphBuilder:
    """Graph builder for the full-type task (Java)."""
    extractor = PathExtractor(
        ExtractionConfig(
            max_length=max_length, max_width=max_width, abstraction=abstraction
        )
    )

    def build(file: CorpusFile, ast: Ast) -> CrfGraph:
        return build_type_graph(ast, extractor, name=file.path)

    return build


# ----------------------------------------------------------------------
# word2vec evaluation
# ----------------------------------------------------------------------


def evaluate_w2v(
    data: PreparedData,
    provider: ContextProvider,
    sgns_config: Optional[SgnsConfig] = None,
    name: str = "word2vec",
) -> ExperimentResult:
    """Train SGNS on (name, context) pairs and evaluate Eq. (4)."""
    t0 = time.perf_counter()
    pairs: List[Tuple[str, str]] = []
    for file, ast in data.train:
        for _binding, (gold, tokens) in provider(file, ast).items():
            for token in tokens:
                pairs.append((gold, token))
    extract_seconds = time.perf_counter() - t0

    model, stats = train_sgns(pairs, sgns_config or SgnsConfig())
    predictor = ContextPredictor(model)

    t0 = time.perf_counter()
    accuracy = AccuracyCounter()
    for file, ast in data.test:
        for _binding, (gold, tokens) in provider(file, ast).items():
            accuracy.add(predictor.predict(tokens), gold)
    predict_seconds = time.perf_counter() - t0

    return ExperimentResult(
        name=name,
        accuracy=accuracy.as_percent(),
        n=accuracy.total,
        extract_seconds=extract_seconds,
        train_seconds=stats.train_seconds,
        predict_seconds=predict_seconds,
        parameters=len(model.words) * model.dim + len(model.contexts) * model.dim,
        extra={"pairs": float(stats.pairs)},
    )


def path_context_provider(
    max_length: int = 7, max_width: int = 3
) -> ContextProvider:
    """The AST-paths context provider for word2vec."""
    extractor = PathExtractor(
        ExtractionConfig(max_length=max_length, max_width=max_width, abstraction="full")
    )

    def provide(file: CorpusFile, ast: Ast) -> Dict[str, Tuple[str, List[str]]]:
        return element_contexts(ast, extractor)

    return provide


# ----------------------------------------------------------------------
# Parameter sweeps (Figs. 10-12)
# ----------------------------------------------------------------------


def grid_search(
    data: PreparedData,
    lengths: Iterable[int] = (3, 4, 5, 6, 7),
    widths: Iterable[int] = (1, 2, 3),
    training_config: Optional[TrainingConfig] = None,
    on_validation: bool = True,
) -> List[ExperimentResult]:
    """Accuracy for each (max_length, max_width) combination (Fig. 10)."""
    results = []
    eval_files = data.split.validation if on_validation else data.split.test
    for width in widths:
        for length in lengths:
            result = evaluate_crf(
                data,
                path_graph_builder(max_length=length, max_width=width),
                training_config=training_config,
                name=f"length={length},width={width}",
                eval_files=eval_files,
            )
            result.extra["max_length"] = float(length)
            result.extra["max_width"] = float(width)
            results.append(result)
    return results


def downsampling_sweep(
    data: PreparedData,
    keep_probabilities: Iterable[float] = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    max_length: int = 7,
    max_width: int = 3,
    training_config: Optional[TrainingConfig] = None,
) -> List[ExperimentResult]:
    """Accuracy and training time vs keep-probability p (Fig. 11).

    Downsampling applies to *training* extraction only; evaluation always
    uses the full path set, exactly as in Sec. 5.5.
    """
    results = []
    full_builder = path_graph_builder(max_length=max_length, max_width=max_width)
    for p in keep_probabilities:
        train_builder = path_graph_builder(
            max_length=max_length, max_width=max_width, downsample_p=p
        )
        result = evaluate_crf(
            data,
            train_builder,
            test_builder=full_builder,
            training_config=training_config,
            name=f"p={p:.1f}",
        )
        result.extra["keep_probability"] = p
        results.append(result)
    return results


def abstraction_sweep(
    data: PreparedData,
    abstractions: Iterable[str] = (
        "no-path",
        "top",
        "first-last",
        "first-top-last",
        "forget-order",
        "no-arrows",
        "full",
    ),
    max_length: int = 7,
    max_width: int = 3,
    training_config: Optional[TrainingConfig] = None,
) -> List[ExperimentResult]:
    """Accuracy vs training time per abstraction level (Fig. 12)."""
    results = []
    for abstraction in abstractions:
        result = evaluate_crf(
            data,
            path_graph_builder(
                max_length=max_length, max_width=max_width, abstraction=abstraction
            ),
            training_config=training_config,
            name=abstraction,
        )
        result.extra["abstraction_index"] = float(len(results))
        results.append(result)
    return results


# ----------------------------------------------------------------------
# Non-CRF baselines
# ----------------------------------------------------------------------


def evaluate_prediction_map(
    data: PreparedData,
    predict_file: Callable[[CorpusFile, Ast], Dict[str, Optional[str]]],
    gold_map: Callable[[Ast], Dict[str, str]],
    name: str,
) -> ExperimentResult:
    """Evaluate a per-file {element -> prediction} function (rule-based,
    naive type, ...) against a per-file {element -> gold} map."""
    t0 = time.perf_counter()
    accuracy = AccuracyCounter()
    for file, ast in data.test:
        predictions = predict_file(file, ast)
        golds = gold_map(ast)
        for key, gold in golds.items():
            accuracy.add(predictions.get(key), gold)
    predict_seconds = time.perf_counter() - t0
    return ExperimentResult(
        name=name,
        accuracy=accuracy.as_percent(),
        n=accuracy.total,
        predict_seconds=predict_seconds,
    )
