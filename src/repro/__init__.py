"""PIGEON: a general path-based representation for predicting program
properties.

Reproduction of Alon, Zilberstein, Levy & Yahav, PLDI 2018.  The public
API surfaces three layers:

* **Representation** -- :class:`~repro.core.ast_model.Ast` trees from any
  of the four language frontends, AST paths, path-contexts and
  abstractions, and the :class:`~repro.core.extraction.PathExtractor`.
* **Learning** -- the CRF and word2vec engines any representation plugs
  into.
* **PIGEON** -- :class:`~repro.core.pigeon.Pigeon`, the train/predict
  facade for the three tasks over the four languages.
"""

from .core.abstractions import ABSTRACTIONS, get_abstraction
from .core.ast_model import Ast, Node
from .core.extraction import ExtractionConfig, PathExtractor, extract_path_contexts
from .core.path_context import PathContext
from .core.paths import AstPath, NWisePath, path_between, semi_path
from .core.pigeon import Pigeon
from .lang.base import parse_source, supported_languages

__version__ = "1.0.0"

__all__ = [
    "ABSTRACTIONS",
    "Ast",
    "AstPath",
    "ExtractionConfig",
    "NWisePath",
    "Node",
    "PathContext",
    "PathExtractor",
    "Pigeon",
    "extract_path_contexts",
    "get_abstraction",
    "parse_source",
    "path_between",
    "semi_path",
    "supported_languages",
    "__version__",
]
