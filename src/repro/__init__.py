"""PIGEON: a general path-based representation for predicting program
properties.

Reproduction of Alon, Zilberstein, Levy & Yahav, PLDI 2018.  The public
API surfaces three layers:

* **Representation** -- :class:`~repro.core.ast_model.Ast` trees from any
  of the four language frontends, AST paths, path-contexts and
  abstractions, and the :class:`~repro.core.extraction.PathExtractor`.
* **Learning** -- the CRF and word2vec engines any representation plugs
  into.
* **PIGEON** -- :class:`~repro.api.Pipeline`, the registry-driven
  train/predict facade: every (language, task, representation, learner)
  cell is one :class:`~repro.api.RunSpec` away, and trained pipelines
  persist to a single file.  (:class:`~repro.core.pigeon.Pigeon` remains
  as a back-compat shim over it.)

Languages, tasks, representations and learners are plugin registries
(:mod:`repro.registry`); registering a new implementation makes it
reachable from :class:`~repro.api.Pipeline`, the experiment harness and
the CLI alike.
"""

# repro.core must initialize before repro.api: core/__init__ pulls in the
# Pigeon shim, which itself imports repro.api, and that inner import only
# resolves cleanly when the core submodules it needs are already loaded.
from .core.abstractions import ABSTRACTIONS, get_abstraction
from .core.ast_model import Ast, Node
from .core.extraction import ExtractionConfig, PathExtractor, extract_path_contexts
from .core.path_context import PathContext
from .core.paths import AstPath, NWisePath, path_between, semi_path
from .core.pigeon import Pigeon
from .api import Pipeline, RunSpec, UnknownPluginError, UnsupportedSpecError
from .lang.base import parse_source, supported_languages

__version__ = "1.1.0"

__all__ = [
    "ABSTRACTIONS",
    "Ast",
    "AstPath",
    "ExtractionConfig",
    "NWisePath",
    "Node",
    "PathContext",
    "PathExtractor",
    "Pigeon",
    "Pipeline",
    "RunSpec",
    "UnknownPluginError",
    "UnsupportedSpecError",
    "extract_path_contexts",
    "get_abstraction",
    "parse_source",
    "path_between",
    "semi_path",
    "supported_languages",
    "__version__",
]
