"""Replica lifecycle: spawn/adopt serving replicas, track their health.

A fleet is N shared-nothing :class:`~repro.serving.server.PredictionServer`
processes (or in-process :class:`~repro.serving.server.ServerThread`
runners -- same HTTP surface, handy for tests and single-machine use)
plus this module's :class:`ReplicaSet`, which owns their lifecycle and
the health state the router routes by:

``starting -> healthy <-> draining -> dead``

* **active probes**: :meth:`ReplicaSet.poll` hits every replica's
  ``GET /healthz``; 200 means healthy, 503/"draining" means draining
  (in a graceful shutdown -- route around it, don't bury it), and
  repeated connection failures mean dead;
* **passive signals**: the router reports each forward's outcome via
  :meth:`mark_failure` / :meth:`mark_success`, so a crashed replica
  stops receiving traffic after one failed forward instead of waiting
  for the next probe tick;
* **rolling restart**: :meth:`restart` drains one replica, rebuilds it
  from its (possibly updated) model files and waits until it reports
  healthy again -- the primitive ``POST /fleet/reload`` iterates,
  one replica at a time, so the fleet never drops below N-1 healthy.

Three replica flavours share one interface: ``ThreadReplica`` (own
server on a background event loop in this process), ``ProcessReplica``
(a ``pigeon serve`` subprocess; real core-level parallelism), and
``AdoptedReplica`` (a URL someone else manages; probed and routed to,
never restarted).

Model files may be either saved-pipeline format --
:meth:`~repro.api.pipeline.Pipeline.load` sniffs JSON vs the binary
``pigeon-model/1`` container, so ``POST /fleet/reload`` rolls a fleet
onto a new artifact of either kind transparently.  Point every replica
on a box at the *same* binary artifact: each process mmaps it instead of
parsing JSON, so cold-start (and therefore rolling-restart downtime) is
near-zero and the OS page cache keeps one shared copy of the weights no
matter how many replicas serve it (weight memory O(1) per box instead
of O(replicas)).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence

from ..serving.client import ServingClient, ServingError

#: Replica states (the strings /fleet/stats and tests see).
STARTING = "starting"
HEALTHY = "healthy"
DRAINING = "draining"
DEAD = "dead"

#: Consecutive probe/forward failures before a replica is declared dead.
FAILURE_THRESHOLD = 2


def _free_port() -> int:
    """An OS-assigned free TCP port (bind-then-release).

    Momentarily racy like every external port allocation; replicas bind
    immediately after, and a clash surfaces as a failed healthz wait.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class Replica:
    """One serving replica: name, URL, health state, lifecycle hooks."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.url: Optional[str] = None
        self.state = STARTING
        self.failures = 0
        self.restarts = 0
        self.models: List[str] = []
        self._lock = threading.Lock()

    # -- lifecycle (overridden per flavour) -----------------------------
    def start(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        """Graceful drain-stop (finishes in-flight work)."""
        raise NotImplementedError

    def kill(self) -> None:
        """Abrupt stop, no drain (crash simulation / last resort)."""
        self.stop()

    def restart(self, model_paths: Optional[Sequence[str]] = None) -> None:
        raise NotImplementedError(f"replica {self.name!r} cannot be restarted")

    # -- health bookkeeping ---------------------------------------------
    def mark_healthy(self) -> None:
        with self._lock:
            self.failures = 0
            self.state = HEALTHY

    def mark_draining(self) -> None:
        with self._lock:
            self.state = DRAINING

    def mark_failure(self) -> None:
        with self._lock:
            self.failures += 1
            if self.failures >= FAILURE_THRESHOLD or self.state == STARTING:
                self.state = DEAD

    @property
    def routable(self) -> bool:
        return self.state == HEALTHY and self.url is not None

    def probe(self, timeout_s: float = 5.0) -> str:
        """One blocking healthz round-trip; updates and returns the state."""
        if self.url is None:
            return self.state
        try:
            with ServingClient(self.url, timeout_s=timeout_s, retries=0) as client:
                client.healthz()
        except ServingError as error:
            if error.status == 503:  # alive but draining
                self.mark_draining()
            else:
                self.mark_failure()
        except OSError:
            self.mark_failure()
        else:
            self.mark_healthy()
        return self.state

    def status(self) -> dict:
        return {
            "name": self.name,
            "url": self.url,
            "state": self.state,
            "failures": self.failures,
            "restarts": self.restarts,
            "models": [os.path.basename(path) for path in self.models],
        }


class ThreadReplica(Replica):
    """A PredictionServer on a background event loop in this process.

    Shared-nothing where it matters: its own :class:`ModelHost`, its own
    response cache, its own batcher.  What tests and single-process
    fleets use; for core-level parallelism use :class:`ProcessReplica`.
    """

    def __init__(self, name: str, model_paths: Sequence[str], **server_kwargs) -> None:
        super().__init__(name)
        self.models = list(model_paths)
        self.server_kwargs = dict(server_kwargs)
        self._runner = None
        self.server = None

    def start(self) -> None:
        from ..serving.host import ModelHost
        from ..serving.server import PredictionServer, ServerThread

        host = ModelHost(self.models, workers=0)
        self.server = PredictionServer(host, port=0, **self.server_kwargs)
        self._runner = ServerThread(self.server)
        self.url = self._runner.__enter__()
        self.mark_healthy()

    def stop(self) -> None:
        if self._runner is not None:
            self._runner.__exit__(None, None, None)
            self._runner = None
        self.state = DEAD

    def kill(self) -> None:
        if self._runner is not None:
            self._runner.kill()
            self._runner = None
        self.state = DEAD

    def restart(self, model_paths: Optional[Sequence[str]] = None) -> None:
        self.stop()
        if model_paths:
            self.models = list(model_paths)
        self.state = STARTING
        self.start()
        self.restarts += 1


class ProcessReplica(Replica):
    """A ``pigeon serve`` subprocess on a dedicated port."""

    def __init__(
        self,
        name: str,
        model_paths: Sequence[str],
        port: Optional[int] = None,
        workers: int = 0,
        extra_args: Sequence[str] = (),
        startup_timeout_s: float = 120.0,
    ) -> None:
        super().__init__(name)
        self.models = list(model_paths)
        self.port = port
        self.workers = workers
        self.extra_args = list(extra_args)
        self.startup_timeout_s = startup_timeout_s
        self.process: Optional[subprocess.Popen] = None

    def start(self) -> None:
        port = self.port if self.port else _free_port()
        command = [sys.executable, "-m", "repro.cli", "serve", "--port", str(port)]
        for path in self.models:
            command += ["--model", path]
        if self.workers:
            command += ["--workers", str(self.workers)]
        command += self.extra_args
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        self.url = f"http://127.0.0.1:{port}"
        deadline = time.monotonic() + self.startup_timeout_s
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"replica {self.name!r} exited with "
                    f"{self.process.returncode} before becoming healthy"
                )
            try:
                with ServingClient(self.url, timeout_s=5.0, retries=0) as client:
                    client.healthz()
            except (ServingError, OSError):
                time.sleep(0.05)
                continue
            self.mark_healthy()
            return
        raise RuntimeError(
            f"replica {self.name!r} did not answer /healthz within "
            f"{self.startup_timeout_s:.0f}s"
        )

    def stop(self) -> None:
        process = self.process
        if process is not None and process.poll() is None:
            # SIGTERM triggers the server's graceful drain handler.
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=60)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck drain
                process.kill()
                process.wait(timeout=10)
        self.process = None
        self.state = DEAD

    def kill(self) -> None:
        process = self.process
        if process is not None and process.poll() is None:
            process.kill()
            process.wait(timeout=10)
        self.process = None
        self.state = DEAD

    def restart(self, model_paths: Optional[Sequence[str]] = None) -> None:
        self.stop()
        if model_paths:
            self.models = list(model_paths)
        self.state = STARTING
        self.start()
        self.restarts += 1


class AdoptedReplica(Replica):
    """An already-running server adopted by URL; probed, never managed."""

    def __init__(self, name: str, url: str) -> None:
        super().__init__(name)
        self.url = url

    def start(self) -> None:
        self.probe()

    def stop(self) -> None:
        self.state = DEAD  # forget it; the actual process is not ours


class ReplicaSet:
    """The fleet's membership: N replicas and their health states."""

    def __init__(self, replicas: Sequence[Replica]) -> None:
        if not replicas:
            raise ValueError("a fleet needs at least one replica")
        names = [replica.name for replica in replicas]
        if len(set(names)) != len(names):
            raise ValueError(f"replica names must be unique; got {names}")
        self.replicas: Dict[str, Replica] = {r.name: r for r in replicas}
        self._restart_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def in_process(
        cls, model_paths: Sequence[str], count: int, **server_kwargs
    ) -> "ReplicaSet":
        return cls(
            [
                ThreadReplica(f"replica-{index}", model_paths, **server_kwargs)
                for index in range(count)
            ]
        )

    @classmethod
    def spawn(
        cls,
        model_paths: Sequence[str],
        count: int,
        base_port: Optional[int] = None,
        workers: int = 0,
    ) -> "ReplicaSet":
        return cls(
            [
                ProcessReplica(
                    f"replica-{index}",
                    model_paths,
                    port=(base_port + index) if base_port else None,
                    workers=workers,
                )
                for index in range(count)
            ]
        )

    @classmethod
    def adopt(cls, urls: Sequence[str]) -> "ReplicaSet":
        return cls(
            [AdoptedReplica(f"replica-{index}", url) for index, url in enumerate(urls)]
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every replica; tears the started ones down on failure."""
        started: List[Replica] = []
        try:
            for replica in self.replicas.values():
                replica.start()
                started.append(replica)
        except BaseException:
            for replica in started:
                try:
                    replica.kill()
                except Exception:  # pragma: no cover - teardown best effort
                    pass
            raise

    def stop(self) -> None:
        for replica in self.replicas.values():
            try:
                replica.stop()
            except Exception:  # pragma: no cover - teardown best effort
                pass

    def restart(
        self, name: str, model_paths: Optional[Sequence[str]] = None
    ) -> Replica:
        """Drain-restart one replica (serialized: one at a time per fleet)."""
        replica = self.replicas[name]
        with self._restart_lock:
            replica.mark_draining()
            replica.restart(model_paths)
        return replica

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def poll(self, timeout_s: float = 5.0) -> Dict[str, str]:
        """Probe every replica's /healthz; returns name -> state."""
        for replica in self.replicas.values():
            replica.probe(timeout_s=timeout_s)
        return self.states()

    def wait_healthy(self, timeout_s: float = 120.0) -> None:
        """Block until every replica answers healthz (ReplicaSet.start helper)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if all(r.probe() == HEALTHY for r in self.replicas.values()):
                return
            time.sleep(0.05)
        laggards = [r.name for r in self.replicas.values() if r.state != HEALTHY]
        raise RuntimeError(f"replicas never became healthy: {laggards}")

    def states(self) -> Dict[str, str]:
        return {name: replica.state for name, replica in self.replicas.items()}

    def healthy(self) -> List[Replica]:
        return [r for r in self.replicas.values() if r.routable]

    def get(self, name: str) -> Replica:
        return self.replicas[name]

    def __len__(self) -> int:
        return len(self.replicas)

    def __iter__(self):
        return iter(self.replicas.values())

    def status(self) -> List[dict]:
        return [replica.status() for replica in self.replicas.values()]

    def stats(self, timeout_s: float = 10.0) -> Dict[str, dict]:
        """Each healthy replica's /stats payload (skips the unreachable)."""
        collected: Dict[str, dict] = {}
        for replica in self.replicas.values():
            if replica.url is None or replica.state == DEAD:
                continue
            try:
                with ServingClient(
                    replica.url, timeout_s=timeout_s, retries=0
                ) as client:
                    collected[replica.name] = client.stats()
            except (ServingError, OSError):
                continue
        return collected


def models_signature(model_paths: Sequence[str]) -> str:
    """A short provenance tag for /fleet/stats (paths + mtimes)."""
    parts = []
    for path in model_paths:
        try:
            mtime = int(os.stat(path).st_mtime)
        except OSError:
            mtime = -1
        parts.append(f"{os.path.basename(path)}@{mtime}")
    return json.dumps(parts)
