"""Grey-box queueing model behind fleet admission and sizing.

"Grey box" in the sense of the classic processor-modelling idiom: rather
than simulating the replicas, fit a small analytic model (an M/M/N
queue) to *measured* counters, then use it for two decisions:

* **admission** -- is the fleet so far beyond its fitted service
  capacity that queueing another request only manufactures latency?
  If so the router answers 503 with a model-derived ``Retry-After``.
* **sizing** -- :func:`recommend_replicas` inverts the model: the
  smallest replica count whose predicted p95 response time meets a
  target at a target request rate.

The measured side comes from each replica's ``GET /stats``: the
``/predict`` latency histogram (count + sum -> mean service time, i.e.
the service rate ``mu``) and the live congestion counters (``inflight``,
``queue_depth``).  Each replica is fitted separately -- heterogeneous
hardware yields heterogeneous rates -- and the fleet model uses the mean
fitted rate, which is exact for homogeneous replicas and a standard
approximation otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional


@dataclass(frozen=True)
class ServiceEstimate:
    """One replica's fitted service behaviour (from its /stats)."""

    replica: str
    requests: int
    mean_service_ms: float
    p95_service_ms: float

    @property
    def service_rate(self) -> float:
        """Fitted service rate mu in requests/second."""
        if self.mean_service_ms <= 0:
            return 0.0
        return 1000.0 / self.mean_service_ms

    def to_dict(self) -> dict:
        return {
            "replica": self.replica,
            "requests": self.requests,
            "mean_service_ms": round(self.mean_service_ms, 3),
            "p95_service_ms": round(self.p95_service_ms, 3),
            "service_rate_rps": round(self.service_rate, 2),
        }


def fit_service_estimate(replica: str, stats: Mapping) -> Optional[ServiceEstimate]:
    """Fit one replica's service rate from its ``/stats`` payload.

    Uses the ``/predict`` endpoint's latency histogram (the mix of cache
    hits and full scoring actually flowing through the replica -- the
    *effective* service time, which is what capacity planning needs).
    Returns ``None`` until the replica has served at least one request.
    """
    latency = stats.get("latency") if isinstance(stats, Mapping) else None
    if not isinstance(latency, Mapping):
        return None
    predict = latency.get("/predict")
    if not isinstance(predict, Mapping):
        return None
    count = int(predict.get("count", 0))
    if count <= 0:
        return None
    mean_ms = float(predict.get("sum_ms", 0.0)) / count
    return ServiceEstimate(
        replica=replica,
        requests=count,
        mean_service_ms=mean_ms,
        p95_service_ms=float(predict.get("p95_ms", mean_ms)),
    )


def erlang_c(servers: int, offered_load: float) -> float:
    """P(wait) for an M/M/N queue at ``offered_load`` Erlangs.

    Computed with the numerically stable iterative Erlang-B recurrence
    (no factorials), then converted to Erlang C.  Returns 1.0 at or
    beyond saturation (``offered_load >= servers``): every arrival waits.
    """
    if servers < 1 or offered_load <= 0:
        return 0.0
    if offered_load >= servers:
        return 1.0
    blocking = 1.0  # Erlang B with 0 servers
    for k in range(1, servers + 1):
        blocking = (offered_load * blocking) / (k + offered_load * blocking)
    rho = offered_load / servers
    return blocking / (1.0 - rho + rho * blocking)


@dataclass
class FleetModel:
    """An M/M/N view of the fleet: N replicas at a fitted rate each."""

    replicas: int
    service_rate: float  # per-replica mu, requests/second
    p95_service_ms: float = 0.0

    @property
    def capacity_rps(self) -> float:
        """The fleet's fitted saturation throughput (N * mu)."""
        return self.replicas * self.service_rate

    def utilization(self, arrival_rps: float) -> float:
        if self.capacity_rps <= 0:
            return math.inf if arrival_rps > 0 else 0.0
        return arrival_rps / self.capacity_rps

    def wait_probability(self, arrival_rps: float) -> float:
        if self.service_rate <= 0:
            return 1.0
        return erlang_c(self.replicas, arrival_rps / self.service_rate)

    def mean_wait_ms(self, arrival_rps: float) -> float:
        """Expected queueing delay (excluding service) in milliseconds."""
        headroom = self.capacity_rps - arrival_rps
        if headroom <= 0:
            return math.inf
        return self.wait_probability(arrival_rps) / headroom * 1000.0

    def p95_response_ms(self, arrival_rps: float) -> float:
        """Approximate p95 response time: queueing tail + observed service p95.

        The M/M/N waiting time beyond the 5% tail is
        ``ln(C/0.05) / (N*mu - lambda)`` when the wait probability C
        exceeds 5%, zero otherwise; the grey-box part adds the
        *measured* p95 service time instead of assuming the exponential
        service the closed form would.
        """
        headroom = self.capacity_rps - arrival_rps
        if headroom <= 0:
            return math.inf
        tail = self.wait_probability(arrival_rps)
        wait_ms = 0.0
        if tail > 0.05:
            wait_ms = math.log(tail / 0.05) / headroom * 1000.0
        service_ms = self.p95_service_ms or (
            1000.0 / self.service_rate if self.service_rate > 0 else 0.0
        )
        return wait_ms + service_ms

    def to_dict(self) -> dict:
        return {
            "replicas": self.replicas,
            "service_rate_rps": round(self.service_rate, 2),
            "capacity_rps": round(self.capacity_rps, 2),
            "p95_service_ms": round(self.p95_service_ms, 3),
        }


def fleet_model(estimates: List[ServiceEstimate], replicas: int) -> Optional[FleetModel]:
    """The fleet-level model from per-replica fits (None before any data)."""
    rates = [e.service_rate for e in estimates if e.service_rate > 0]
    if not rates or replicas < 1:
        return None
    mean_rate = sum(rates) / len(rates)
    p95 = max(e.p95_service_ms for e in estimates)
    return FleetModel(replicas=replicas, service_rate=mean_rate, p95_service_ms=p95)


def recommend_replicas(
    target_rps: float,
    p95_ms: float,
    service_rate: float,
    p95_service_ms: float = 0.0,
    max_replicas: int = 256,
) -> dict:
    """The smallest replica count meeting a latency SLO at a load target.

    Walks N upward until the modelled p95 response at ``target_rps``
    drops under ``p95_ms``.  The report carries the model's predictions
    at the recommendation (and flags infeasible SLOs: a p95 target below
    the service time itself cannot be bought with replicas).
    """
    report = {
        "target_rps": target_rps,
        "target_p95_ms": p95_ms,
        "service_rate_rps": round(service_rate, 2),
    }
    if service_rate <= 0 or target_rps <= 0:
        return dict(report, feasible=False, reason="no fitted service rate or load")
    floor_ms = p95_service_ms or 1000.0 / service_rate
    if floor_ms > p95_ms:
        return dict(
            report,
            feasible=False,
            reason=(
                f"p95 target {p95_ms:.0f}ms is below the per-request service "
                f"floor {floor_ms:.0f}ms; replicas add throughput, not speed"
            ),
        )
    minimum = max(1, math.ceil(target_rps / service_rate))
    for replicas in range(minimum, max_replicas + 1):
        model = FleetModel(replicas, service_rate, p95_service_ms)
        predicted = model.p95_response_ms(target_rps)
        if predicted <= p95_ms:
            return dict(
                report,
                feasible=True,
                recommended_replicas=replicas,
                predicted_p95_ms=round(predicted, 2),
                predicted_utilization=round(model.utilization(target_rps), 4),
                wait_probability=round(model.wait_probability(target_rps), 4),
            )
    return dict(report, feasible=False, reason=f"not met within {max_replicas} replicas")


class AdmissionController:
    """Load shedding at the front tier, with a model-derived retry hint.

    The live signal is the router's own in-flight count (requests
    forwarded but unanswered -- which includes everything queued inside
    replicas).  Admission is denied once that exceeds
    ``max_inflight_per_replica`` per *healthy* replica: beyond that
    depth the M/M/N wait grows without bound and queueing more work
    only converts requests into timeouts.  The fitted model turns the
    excess into a ``Retry-After`` estimate: how long the fleet needs to
    drain back under the admission line.
    """

    def __init__(self, max_inflight_per_replica: int = 16) -> None:
        self.max_inflight_per_replica = max(1, int(max_inflight_per_replica))
        self.rejected = 0

    def limit(self, healthy_replicas: int) -> int:
        return self.max_inflight_per_replica * max(1, healthy_replicas)

    def admit(
        self,
        inflight: int,
        healthy_replicas: int,
        model: Optional[FleetModel] = None,
    ) -> Dict[str, object]:
        """{"admit": bool, "retry_after_s": int, ...} for one arrival."""
        limit = self.limit(healthy_replicas)
        if healthy_replicas >= 1 and inflight < limit:
            return {"admit": True, "limit": limit}
        self.rejected += 1
        excess = max(1, inflight - limit + 1)
        retry_after = 1
        if model is not None and model.capacity_rps > 0:
            retry_after = math.ceil(excess / model.capacity_rps)
        return {
            "admit": False,
            "limit": limit,
            "inflight": inflight,
            "retry_after_s": max(1, min(30, retry_after)),
        }
