"""The consistent-hash front tier: one address for N serving replicas.

:class:`FleetRouter` is an asyncio HTTP server (stdlib only, the same
wire dialect as :class:`~repro.serving.server.PredictionServer`) that
owns no model and scores nothing.  Its whole job is placement:

* ``POST /predict`` -- parse the source *here* (the router runs the same
  frontends the replicas do), derive the structural
  :func:`~repro.core.extraction.ast_digest`, and forward the request --
  body bytes untouched -- to the replica that owns
  ``digest x task`` on the :class:`~repro.fleet.ring.HashRing`.  Owner
  dead, draining or timed out?  One retry, after an exponential-backoff-
  with-jitter pause, on the ring successor -- the replica whose cache
  inherits that key range anyway.  The response is the replica's
  response, byte-for-byte the same JSON a direct server would return
  (the replica that answered is named in an ``X-Fleet-Replica`` header,
  never in the body).
* ``GET /healthz`` -- fleet liveness: 200 while at least one replica is
  routable.
* ``GET /fleet/stats`` -- every replica's ``/stats`` merged (counters
  summed, latency histograms added bucket-wise), the ring layout,
  per-replica health, and the fitted grey-box capacity model
  (:mod:`~repro.fleet.capacity`) with a sizing hint.
* ``POST /fleet/reload`` -- rolling drain-restart: one replica at a
  time leaves the ring, drains, restarts from its (possibly updated)
  model files, proves itself healthy and rejoins -- the fleet never
  drops below N-1 healthy replicas.

Admission control sits in front of all forwarding: when the router's
own in-flight count says the fleet is saturated, new work is refused
with 503 and a model-derived ``Retry-After`` instead of being queued
into certain timeout.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from typing import Dict, List, Optional, Tuple

from ..core.extraction import ast_digest
from ..lang.base import parse_source
from ..resilience import faults
from ..resilience.faults import FaultInjected
from ..serving.http import (
    BadRequest,
    Connection,
    ConnectionPool,
    HttpRequest,
    read_request,
    respond,
)
from ..serving.metrics import FixedHistogram
from .capacity import (
    AdmissionController,
    FleetModel,
    fit_service_estimate,
    fleet_model,
    recommend_replicas,
)
from .replicas import HEALTHY, Replica, ReplicaSet
from .ring import DEFAULT_VNODES, HashRing, request_key


class FleetRouter:
    """Route predictions across a :class:`ReplicaSet` by consistent hash."""

    def __init__(
        self,
        replicas: ReplicaSet,
        address: str = "127.0.0.1",
        port: int = 8016,
        vnodes: int = DEFAULT_VNODES,
        forward_timeout_s: float = 60.0,
        retry_backoff_s: float = 0.05,
        max_inflight_per_replica: int = 16,
        poll_interval_s: float = 2.0,
    ) -> None:
        self.replicas = replicas
        self.address = address
        self.port = port
        self.forward_timeout_s = float(forward_timeout_s)
        self.retry_backoff_s = max(0.0, float(retry_backoff_s))
        self.poll_interval_s = float(poll_interval_s)
        self.ring = HashRing(vnodes=vnodes)
        self.admission = AdmissionController(max_inflight_per_replica)
        self._pools: Dict[str, ConnectionPool] = {}
        self._routes: Dict[Tuple[str, str], str] = {}  # (language, task) -> cell
        self._server: Optional[asyncio.AbstractServer] = None
        self._connection_tasks: set = set()
        self._poll_task: Optional[asyncio.Task] = None
        self._inflight = 0
        self._requests = 0
        self._routed: Dict[str, int] = {}
        self._failovers = 0
        self._reloads = 0
        self._reloading = False
        self._model: Optional[FleetModel] = None
        self._started_monotonic = 0.0

    # ------------------------------------------------------------------
    # Lifecycle (the same surface ServerThread drives)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Learn the served cells, build the ring, bind the listener."""
        await self._learn_routes()
        self._sync_ring()
        if not len(self.ring):
            raise RuntimeError("no healthy replicas; cannot start the router")
        self._server = await asyncio.start_server(
            self._handle_connection, self.address, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()
        self._poll_task = asyncio.get_running_loop().create_task(self._poll_loop())

    async def shutdown(self) -> None:
        if self._poll_task is not None:
            self._poll_task.cancel()
            try:
                await self._poll_task
            except asyncio.CancelledError:
                pass
            self._poll_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + 30.0
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()

    async def abort(self) -> None:
        """Crash-stop (ServerThread.kill drives this); replicas keep running."""
        await self.shutdown()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    @property
    def url(self) -> str:
        return f"http://{self.address}:{self.port}"

    # ------------------------------------------------------------------
    # Membership: ring <-> replica health
    # ------------------------------------------------------------------
    def _sync_ring(self) -> None:
        """Make ring membership equal the currently-routable replicas.

        Consistent hashing keeps this cheap to call eagerly: each
        membership change moves only the changed replica's arcs, so a
        replica bouncing dead->healthy hands back exactly the key
        ranges its successors were covering for it.
        """
        routable = {replica.name for replica in self.replicas if replica.routable}
        for name in list(self.ring.members):
            if name not in routable:
                self.ring.remove(name)
        for name in routable:
            if name not in self.ring:
                self.ring.add(name)

    async def _poll_loop(self) -> None:
        """Active health checks, off-loop (probes are blocking HTTP)."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.poll_interval_s)
            if self._reloading:
                continue  # reload owns health transitions while it runs
            try:
                await loop.run_in_executor(None, self.replicas.poll)
            except Exception:  # pragma: no cover - keep polling regardless
                pass
            self._sync_ring()

    def _pool(self, replica: Replica) -> ConnectionPool:
        host, _, port = replica.url.rpartition("//")[2].partition(":")
        pool = self._pools.get(replica.name)
        if pool is None or pool.port != int(port) or pool.host != host:
            # New replica, or the same name restarted on a new port.
            if pool is not None:
                pool.close()
            pool = self._pools[replica.name] = ConnectionPool(host, int(port))
        return pool

    async def _learn_routes(self) -> None:
        """Fetch the served cells from a replica; build the route table.

        Every replica serves the same models (shared-nothing copies of
        one fleet), so the first answer wins.  Cells look like
        ``language/task/representation/learner``; routing only needs the
        first two components.
        """
        last_error: Optional[BaseException] = None
        for replica in self.replicas:
            if replica.url is None:
                continue
            host, _, port = replica.url.rpartition("//")[2].partition(":")
            try:
                connection = await Connection.open(host, int(port), timeout=10.0)
                try:
                    status, _headers, payload = await connection.call(
                        "GET", "/healthz", timeout=10.0
                    )
                finally:
                    connection.close()
            except OSError as error:
                last_error = error
                continue
            if status != 200:
                continue
            cells = payload.get("models") or []
            routes: Dict[Tuple[str, str], str] = {}
            for cell in cells:
                parts = str(cell).split("/")
                if len(parts) >= 2:
                    routes[(parts[0], parts[1])] = str(cell)
            if routes:
                self._routes = routes
                return
        raise RuntimeError(
            f"could not learn served models from any replica: {last_error}"
        )

    def _resolve(
        self, language: Optional[str], task: Optional[str]
    ) -> Tuple[str, str]:
        """(language, task) for one request -- ModelHost.resolve's twin.

        The router and the replicas must agree on resolution, otherwise
        a request could route on one cell and score on another.
        """
        matches = [
            (lang, tsk)
            for (lang, tsk) in self._routes
            if (language is None or lang == language)
            and (task is None or tsk == task)
        ]
        if len(matches) == 1:
            return matches[0]
        served = ", ".join(f"({lang}, {tsk})" for lang, tsk in sorted(self._routes))
        wanted = f"(language={language or '*'}, task={task or '*'})"
        if not matches:
            raise LookupError(f"no model serves {wanted}; serving: {served}")
        raise LookupError(f"{wanted} is ambiguous; serving: {served}")

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except BadRequest as error:
                    await respond(
                        writer, error.status, {"error": str(error)}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                self._requests += 1
                status, payload, headers = await self._route(request)
                await respond(
                    writer,
                    status,
                    payload,
                    keep_alive=request.keep_alive,
                    extra_headers=headers,
                )
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Only shutdown() cancels connection tasks (and awaits them
            # right after); finishing normally keeps asyncio's stream
            # machinery from logging teardown cancellations.
            pass
        finally:
            if task is not None:
                self._connection_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass

    async def _route(
        self, request: HttpRequest
    ) -> Tuple[int, dict, Optional[Dict[str, str]]]:
        if request.path == "/predict":
            if request.method != "POST":
                return 405, {"error": "use POST /predict"}, None
            return await self._predict(request)
        if request.path == "/healthz":
            if request.method != "GET":
                return 405, {"error": "use GET /healthz"}, None
            status, payload = self._healthz()
            return status, payload, None
        if request.path == "/fleet/stats":
            if request.method != "GET":
                return 405, {"error": "use GET /fleet/stats"}, None
            return 200, await self._fleet_stats(), None
        if request.path == "/fleet/reload":
            if request.method != "POST":
                return 405, {"error": "use POST /fleet/reload"}, None
            status, payload = await self._fleet_reload(request)
            return status, payload, None
        return 404, {
            "error": f"unknown path {request.path!r}; routes: POST /predict, "
            f"GET /healthz, GET /fleet/stats, POST /fleet/reload"
        }, None

    def _healthz(self) -> Tuple[int, dict]:
        states = self.replicas.states()
        healthy = sum(1 for state in states.values() if state == HEALTHY)
        payload = {
            "status": "ok" if healthy else "unavailable",
            "role": "fleet-router",
            "replicas": states,
            "healthy": healthy,
            "inflight": self._inflight,
            "uptime_seconds": round(self._uptime(), 3),
        }
        return (200 if healthy else 503), payload

    def _uptime(self) -> float:
        if not self._started_monotonic:
            return 0.0
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------
    # POST /predict: admit -> place -> forward (retry once on successor)
    # ------------------------------------------------------------------
    async def _predict(
        self, request: HttpRequest
    ) -> Tuple[int, dict, Optional[Dict[str, str]]]:
        self._sync_ring()
        healthy = len(self.replicas.healthy())
        verdict = self.admission.admit(self._inflight, healthy, self._model)
        if not verdict["admit"]:
            retry_after = int(verdict.get("retry_after_s", 1))
            return (
                503,
                {
                    "error": "fleet saturated; retry later",
                    "inflight": self._inflight,
                    "limit": verdict["limit"],
                    "retry_after_s": retry_after,
                },
                {"Retry-After": str(retry_after)},
            )

        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"body is not valid JSON: {error}"}, None
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}, None
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            return 400, {"error": "field 'source' (non-empty string) is required"}, None
        language = payload.get("language")
        task = payload.get("task")
        for field_name, value in (("language", language), ("task", task)):
            if value is not None and not isinstance(value, str):
                return 400, {"error": f"field {field_name!r} must be a string"}, None

        try:
            route_language, route_task = self._resolve(language, task)
        except LookupError as error:
            return 404, {"error": str(error)}, None

        # The routing key is the same structural digest the replica's
        # response cache keys on, so one program always lands on the
        # replica already holding its answer.  Parsing is CPU-bound:
        # off-loop, like the replicas do it.
        loop = asyncio.get_running_loop()
        try:
            digest = await loop.run_in_executor(
                None, _digest_source, route_language, source
            )
        except Exception as error:  # noqa: BLE001 - parser errors are user input
            return 400, {"error": f"cannot parse source: {error}"}, None

        key = request_key(digest, route_task)
        # The forward path (owner attempt + backoff + successor retry)
        # runs against one deadline derived from the caller's announced
        # budget: a failover must never make the client wait longer than
        # it said it would.  The header is the hint ServingClient sends;
        # requests without one get the router's own cap.
        budget = self.forward_timeout_s
        hint = request.headers.get("x-request-timeout-s")
        if hint is not None:
            try:
                announced = float(hint)
            except ValueError:
                announced = -1.0
            if announced > 0:
                budget = min(budget, announced)
        deadline = time.monotonic() + budget
        self._inflight += 1
        try:
            return await self._forward(key, request.body, deadline)
        finally:
            self._inflight -= 1

    async def _forward(
        self, key: str, body: bytes, deadline: Optional[float] = None
    ) -> Tuple[int, dict, Optional[Dict[str, str]]]:
        """Owner first; one backoff-then-retry on the ring successor.

        All attempts (including backoff sleeps) share ``deadline``: per-
        attempt timeouts shrink to the remaining budget, and when it runs
        out the caller gets a 504 instead of a late answer it already
        gave up on.
        """
        if deadline is None:
            deadline = time.monotonic() + self.forward_timeout_s
        attempts = 0
        last_error: Optional[str] = None
        retry_hint: Optional[float] = None
        for name in self.ring.preference(key):
            replica = self.replicas.get(name)
            if not replica.routable:
                continue  # died between sync and forward
            if attempts >= 2:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                last_error = last_error or "request deadline exhausted"
                break
            if attempts == 1:
                self._failovers += 1
                if retry_hint is not None:
                    # The draining replica told us when it expects to
                    # take traffic again; honoring that beats guessing,
                    # but never sleep past the caller's budget.
                    delay = min(retry_hint, remaining, 1.0)
                else:
                    # Exponential backoff with jitter before the one
                    # retry: gives a restarting owner a beat to come
                    # back, and de-synchronizes concurrent failovers.
                    delay = self.retry_backoff_s * (2**attempts)
                    delay = min(delay + random.uniform(0, delay), remaining)
                await asyncio.sleep(max(0.0, delay))
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    last_error = last_error or "request deadline exhausted"
                    break
            attempts += 1
            try:
                # Fault site "router.forward": "timeout" is a forward
                # that never answers, "unavail"/"error" a connection
                # yanked mid-flight -- exercised on the real failover
                # path below, not a simulation of it.
                action = faults.fire("router.forward")
                if action == "timeout":
                    raise asyncio.TimeoutError
                if action == "unavail":
                    raise ConnectionResetError("injected fault: forward dropped")
                status, headers, payload = await self._pool(replica).call(
                    "POST",
                    "/predict",
                    body=body,
                    timeout=min(self.forward_timeout_s, remaining),
                )
            except asyncio.TimeoutError:
                last_error = f"replica {name} timed out"
                replica.mark_failure()
                self._sync_ring()
                continue
            except FaultInjected as error:
                last_error = f"replica {name} unreachable: {error}"
                replica.mark_failure()
                self._sync_ring()
                continue
            except (OSError, ConnectionError) as error:
                # Refused/reset: the replica is gone.  Mark it straight
                # to dead so the next request never tries it, and let
                # the ring hand its range to the successor now.
                last_error = f"replica {name} unreachable: {error}"
                replica.mark_failure()
                replica.mark_failure()
                self._sync_ring()
                continue
            if status == 503:
                # Alive but draining (rolling reload): route around it,
                # keeping its Retry-After hint for the backoff above.
                last_error = f"replica {name} is draining"
                hinted = headers.get("retry-after")
                if hinted is not None:
                    try:
                        retry_hint = max(0.0, float(hinted))
                    except ValueError:
                        retry_hint = None
                replica.mark_draining()
                self._sync_ring()
                continue
            replica.mark_healthy()
            self._routed[name] = self._routed.get(name, 0) + 1
            return status, payload, {"X-Fleet-Replica": name}
        if last_error is None:
            return 503, {"error": "no healthy replica to route to"}, None
        timed_out = "timed out" in last_error or "deadline" in last_error
        status = 504 if timed_out else 502
        return status, {"error": f"fleet forward failed: {last_error}"}, None

    # ------------------------------------------------------------------
    # GET /fleet/stats
    # ------------------------------------------------------------------
    async def _fleet_stats(self) -> dict:
        per_replica = await self._collect_stats()
        merged = _merge_stats(per_replica)
        estimates = [
            estimate
            for name, stats in per_replica.items()
            if (estimate := fit_service_estimate(name, stats)) is not None
        ]
        healthy = len(self.replicas.healthy())
        self._model = fleet_model(estimates, healthy) or self._model
        capacity: dict = {
            "estimates": [estimate.to_dict() for estimate in estimates],
            "model": self._model.to_dict() if self._model else None,
        }
        if self._model is not None:
            capacity["recommendation"] = recommend_replicas(
                target_rps=self._model.capacity_rps * 0.7,
                p95_ms=max(self._model.p95_service_ms * 4, 50.0),
                service_rate=self._model.service_rate,
                p95_service_ms=self._model.p95_service_ms,
            )
        return {
            "router": {
                "uptime_seconds": round(self._uptime(), 3),
                "requests": self._requests,
                "inflight": self._inflight,
                "routed": dict(sorted(self._routed.items())),
                "failovers": self._failovers,
                "rejected": self.admission.rejected,
                "reloads": self._reloads,
                "admission_limit": self.admission.limit(healthy),
            },
            "ring": self.ring.describe(),
            "replicas": self.replicas.status(),
            "merged": merged,
            "per_replica": per_replica,
            "capacity": capacity,
        }

    async def _collect_stats(self) -> Dict[str, dict]:
        """Every routable replica's /stats, gathered concurrently."""

        async def fetch(replica: Replica) -> Optional[Tuple[str, dict]]:
            try:
                status, _headers, payload = await self._pool(replica).call(
                    "GET", "/stats", timeout=10.0
                )
            except (OSError, ConnectionError, asyncio.TimeoutError):
                return None
            if status != 200:
                return None
            return replica.name, payload

        targets = [replica for replica in self.replicas if replica.routable]
        fetched = await asyncio.gather(*(fetch(replica) for replica in targets))
        return {name: stats for item in fetched if item for name, stats in [item]}

    # ------------------------------------------------------------------
    # POST /fleet/reload: rolling drain-restart
    # ------------------------------------------------------------------
    async def _fleet_reload(self, request: HttpRequest) -> Tuple[int, dict]:
        model_paths: Optional[List[str]] = None
        if request.body:
            try:
                payload = json.loads(request.body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return 400, {"error": f"body is not valid JSON: {error}"}
            if not isinstance(payload, dict):
                return 400, {"error": "body must be a JSON object"}
            models = payload.get("models")
            if models is not None:
                if not isinstance(models, list) or not all(
                    isinstance(path, str) for path in models
                ):
                    return 400, {"error": "field 'models' must be a list of paths"}
                model_paths = models
        if self._reloading:
            return 409, {"error": "a rolling reload is already in progress"}
        self._reloading = True
        loop = asyncio.get_running_loop()
        report = []
        try:
            for replica in list(self.replicas):
                before = len(self.replicas.healthy())
                # Leave the ring first (the drain), then restart.  One
                # replica at a time: the fleet never has more than one
                # replica below healthy, i.e. never below N-1.
                replica.mark_draining()
                self._sync_ring()
                started = time.monotonic()
                try:
                    await loop.run_in_executor(
                        None, self.replicas.restart, replica.name, model_paths
                    )
                except Exception as error:  # noqa: BLE001 - reported per replica
                    report.append(
                        {
                            "replica": replica.name,
                            "ok": False,
                            "error": str(error),
                        }
                    )
                    # Stop the roll: a fleet that cannot restart one
                    # replica should not grind through the rest.
                    return 500, {"reloaded": report, "error": str(error)}
                self._sync_ring()
                report.append(
                    {
                        "replica": replica.name,
                        "ok": True,
                        "healthy_during_drain": before - 1,
                        "seconds": round(time.monotonic() - started, 3),
                    }
                )
            self._reloads += 1
        finally:
            self._reloading = False
        return 200, {"reloaded": report, "models": model_paths or "unchanged"}


def _digest_source(language: str, source: str) -> str:
    """The structural routing digest (module-level: executor-friendly)."""
    return ast_digest(parse_source(language, source))


def _merge_stats(per_replica: Dict[str, dict]) -> dict:
    """Fleet-level view: counters summed, histograms added bucket-wise."""
    merged: dict = {
        "replicas": len(per_replica),
        "requests": 0,
        "predictions": 0,
        "coalesced": 0,
        "errors": 0,
        "inflight": 0,
        "queue_depth": 0,
    }
    hits = misses = evictions = 0
    size = capacity = 0
    latency_snapshots: Dict[str, List[dict]] = {}
    for stats in per_replica.values():
        for counter in (
            "requests",
            "predictions",
            "coalesced",
            "errors",
            "inflight",
            "queue_depth",
        ):
            merged[counter] += int(stats.get(counter, 0))
        cache = stats.get("cache") or {}
        hits += int(cache.get("hits", 0))
        misses += int(cache.get("misses", 0))
        evictions += int(cache.get("evictions", 0))
        size += int(cache.get("size", 0))
        capacity += int(cache.get("capacity", 0))
        for path, snapshot in (stats.get("latency") or {}).items():
            latency_snapshots.setdefault(path, []).append(snapshot)
    lookups = hits + misses
    merged["cache"] = {
        "hits": hits,
        "misses": misses,
        "evictions": evictions,
        "size": size,
        "capacity": capacity,
        "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
    }
    merged["latency"] = {
        path: FixedHistogram.merge(snapshots)
        for path, snapshots in latency_snapshots.items()
    }
    return merged
