"""Fleet serving: a consistent-hash front tier over shared-nothing replicas.

This subsystem is the ROADMAP's "scale serving out" line: one router
address in front of N independent :class:`~repro.serving.server.
PredictionServer` replicas, each with its own model copy, response cache
and micro-batcher (nothing shared, so replicas can live in one process,
N processes, or N machines) -- while keeping the serving tier's core
invariant: **every routed prediction is bit-identical to a direct**
``Pipeline.predict`` **call** on the same model.

:mod:`repro.fleet.ring`
    :class:`HashRing`: the Karger-style consistent-hash ring (virtual
    nodes, blake2b points -- deterministic across processes) that
    partitions the ``ast_digest x task`` keyspace across replicas.
    Same key -> same replica, so N replica caches behave as N
    partitions of one large cache rather than N copies of a small one,
    and membership churn remaps only the changed replica's arcs.
:mod:`repro.fleet.replicas`
    :class:`ReplicaSet`: replica lifecycle and health.  Spawns replicas
    in-process (``ThreadReplica``) or as ``pigeon serve`` subprocesses
    (``ProcessReplica``), adopts already-running servers by URL, probes
    ``/healthz``, folds in the router's passive per-forward outcomes,
    and drain-restarts single replicas for rolling reloads.
:mod:`repro.fleet.router`
    :class:`FleetRouter`: the asyncio front tier (stdlib only, the same
    HTTP dialect as the single server).  ``POST /predict`` parses the
    source locally, routes by digest, forwards the body verbatim to the
    ring owner and retries once -- after exponential backoff with
    jitter -- on the ring successor when the owner is dead, draining or
    timed out.  ``GET /fleet/stats`` merges replica stats and the
    fitted capacity model; ``POST /fleet/reload`` rolls a
    drain-restart through the fleet one replica at a time (never below
    N-1 healthy).
:mod:`repro.fleet.capacity`
    The grey-box queueing model: per-replica service rates fitted from
    ``/stats`` latency histograms feed an M/M/N model used twice -- by
    the router's :class:`AdmissionController` (503 + ``Retry-After``
    under saturation, instead of queueing work into certain timeout)
    and by :func:`recommend_replicas` (the smallest fleet meeting a
    p95 target at a load target).

The end-to-end flow (``pigeon fleet serve`` in front of clients, or
:class:`ReplicaSet` + :class:`FleetRouter` in code)::

    client --POST /predict--> router --(parse -> ast_digest x task)-->
        ring owner replica --(cache hit | micro-batched scoring)--> answer
    owner dead/draining?  --(backoff + jitter)--> ring successor
    saturated?            --> 503 + Retry-After (grey-box estimate)

Correctness argument, in one paragraph: the router never touches the
prediction itself -- request bodies are forwarded byte-for-byte and
replica responses returned unchanged (the answering replica is named
only in an ``X-Fleet-Replica`` header) -- and every replica loads the
same model files into the same deterministic scoring path, so *which*
replica answers can never change *what* is answered.  Routing placement
is a pure function of (member names, digest, task) with no
process-seeded hashing, so distinct routers agree; and the digest is
the same structural key the replica cache uses, so a repeated program
lands where its cached answer sits.  ``benchmarks/bench_fleet.py``
gates the invariant end to end: zero prediction mismatches between a
3-replica fleet and a direct single server over a duplicated workload.
"""

from .capacity import (
    AdmissionController,
    FleetModel,
    ServiceEstimate,
    erlang_c,
    fit_service_estimate,
    fleet_model,
    recommend_replicas,
)
from .replicas import (
    DEAD,
    DRAINING,
    HEALTHY,
    STARTING,
    AdoptedReplica,
    ProcessReplica,
    Replica,
    ReplicaSet,
    ThreadReplica,
)
from .ring import DEFAULT_VNODES, HashRing, remapped_fraction, request_key
from .router import FleetRouter

__all__ = [
    "DEAD",
    "DEFAULT_VNODES",
    "DRAINING",
    "HEALTHY",
    "STARTING",
    "AdmissionController",
    "AdoptedReplica",
    "FleetModel",
    "FleetRouter",
    "HashRing",
    "ProcessReplica",
    "Replica",
    "ReplicaSet",
    "ServiceEstimate",
    "ThreadReplica",
    "erlang_c",
    "fit_service_estimate",
    "fleet_model",
    "recommend_replicas",
    "remapped_fraction",
    "request_key",
]
