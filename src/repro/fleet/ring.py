"""The consistent-hash ring that partitions the ``ast_digest`` keyspace.

Every serving replica keeps an LRU response cache keyed on
``ast_digest(source) x task`` (:mod:`repro.serving.cache`).  Routing the
same key to the same replica turns N replica caches into N *partitions*
of one big cache instead of N duplicates of a small one: the fleet's
aggregate cache capacity grows linearly with replicas, and a repeated
program always lands where its answer already sits.

The ring is the classic construction (Karger et al.): each replica name
is hashed onto ``vnodes`` points of a 64-bit circle, a key is hashed to
one point, and the key's **owner** is the first replica point clockwise
from it.  Properties the fleet relies on, all tested:

* **determinism** -- ownership is a pure function of the member names
  (blake2b, no process-seeded hashing), so every router process, today
  or after a restart, routes identically;
* **balance** -- with enough virtual nodes the keyspace splits close to
  uniformly across replicas;
* **minimal remapping** -- removing a replica only reassigns the keys it
  owned (its arc segments fall to their clockwise successors); every
  other key keeps its owner, so surviving replicas keep their warm
  caches through membership churn.

:meth:`HashRing.preference` returns the owner followed by distinct
successors -- the order the router tries replicas in when the owner is
dead or draining.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Virtual nodes per replica.  128 points keeps the max/min keyspace
#: share under ~1.3x for small fleets while membership changes stay
#: cheap to apply (an insort/remove of 128 points).
DEFAULT_VNODES = 128


def _hash64(data: str) -> int:
    """A stable 64-bit point on the ring (blake2b, process-independent)."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


def request_key(digest: str, task: str) -> str:
    """The routing key of one prediction request.

    ``digest`` is the structural :func:`~repro.core.extraction.ast_digest`
    of the parsed source -- the same value the replica's response cache
    keys on -- and ``task`` disambiguates multi-model fleets, mirroring
    the cache's ``cell`` component.  Layout-only variants of a program
    therefore route (and hit) identically.
    """
    return f"{task}\x00{digest}"


class HashRing:
    """A consistent-hash ring over named replicas with virtual nodes."""

    def __init__(
        self, members: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._members: Dict[str, List[int]] = {}
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        for name in members:
            self.add(name)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add(self, name: str) -> None:
        if name in self._members:
            return
        points = []
        for index in range(self.vnodes):
            point = _hash64(f"{name}#{index}")
            # A 64-bit collision across members is ~impossible, but the
            # ring must stay well-defined if one happens: first owner
            # keeps the point.
            if point in self._owners:
                continue
            self._owners[point] = name
            bisect.insort(self._points, point)
            points.append(point)
        self._members[name] = points

    def remove(self, name: str) -> None:
        points = self._members.pop(name, None)
        if points is None:
            return
        for point in points:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    def owner(self, key: str) -> Optional[str]:
        """The replica owning ``key`` (None on an empty ring)."""
        if not self._points:
            return None
        point = _hash64(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap past 2**64 back to the first point
        return self._owners[self._points[index]]

    def preference(self, key: str, count: Optional[int] = None) -> List[str]:
        """Owner first, then distinct clockwise successors.

        The failover order: when the owner is dead or draining the
        router retries on ``preference(key)[1]``, whose cache is the
        one that inherits this key range if the owner leaves for good.
        """
        if not self._points:
            return []
        wanted = len(self._members) if count is None else min(count, len(self._members))
        point = _hash64(key)
        start = bisect.bisect_right(self._points, point)
        ordered: List[str] = []
        seen = set()
        for offset in range(len(self._points)):
            ring_point = self._points[(start + offset) % len(self._points)]
            name = self._owners[ring_point]
            if name not in seen:
                seen.add(name)
                ordered.append(name)
                if len(ordered) >= wanted:
                    break
        return ordered

    # ------------------------------------------------------------------
    # Introspection (tests, /fleet/stats)
    # ------------------------------------------------------------------
    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each member owns (balance checks)."""
        counts = {name: 0 for name in self._members}
        for key in keys:
            owner = self.owner(key)
            if owner is not None:
                counts[owner] += 1
        return counts

    def describe(self) -> dict:
        return {
            "members": self.members,
            "vnodes": self.vnodes,
            "points": len(self._points),
        }


def remapped_fraction(
    before: "HashRing", after: "HashRing", keys: Iterable[str]
) -> Tuple[int, int]:
    """(moved, total): keys whose owner differs between two rings."""
    moved = 0
    total = 0
    for key in keys:
        total += 1
        if before.owner(key) != after.owner(key):
            moved += 1
    return moved, total
