"""The on-disk shard container: versioned header, digest, vocab, records.

A shard file is two lines of UTF-8 JSON::

    {"format": "pigeon-shard/1", "digest": "<blake2b>", "meta": {...}}
    {"space": {"paths": [...], "values": [...]}, "records": [...]}

The first line is the **header**: format tag, an integrity digest of the
payload line, and the shard's metadata (its index in the corpus, the
view kind, the spec and resolved extraction parameters it was built
under, and record counts).  The second line is the **payload**: the
shard-local :class:`~repro.core.interning.FeatureSpace` snapshot -- the
complete interning order of this shard's files, including entries no
record references, because the vocab merge replays that order -- and one
record per source file, keyed entirely on shard-local integer ids.

Headers are tiny, so a :class:`ShardReader` parses only the header
until :meth:`ShardReader.load` is called; readers therefore open a
thousand-shard corpus without touching a payload, and the
:class:`~repro.shards.corpus.ShardedCorpus` keeps at most a few loaded
payloads resident at a time.

Records come in three kinds (``meta["kind"]``):

``graph``
    one serialized CRF factor graph per file (the ``crf`` learner view);
``contexts``
    one element->(gold, context tokens) map per file (the ``word2vec``
    learner view);
``triples``
    the raw extraction output -- one ``(start, rel, end)`` id-triple
    list per file (what :meth:`ExtractionService.index_to_shards`
    writes).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence

from ..core.interning import FeatureSpace
from ..resilience import faults
from ..resilience.atomicio import CorruptArtifactError, atomic_write_bytes

#: On-disk format tag.  Bump when the header or payload layout changes;
#: readers refuse other versions with a clear error.
SHARD_FORMAT = "pigeon-shard/1"

#: Known record kinds (``meta["kind"]``).
GRAPH_KIND = "graph"
CONTEXTS_KIND = "contexts"
TRIPLES_KIND = "triples"
SHARD_KINDS = (GRAPH_KIND, CONTEXTS_KIND, TRIPLES_KIND)


class ShardError(ValueError):
    """Base class for everything wrong with a shard file or shard set."""


class ShardFormatError(ShardError):
    """The file is not a shard, or was written by an unknown version."""


class ShardIntegrityError(ShardError, CorruptArtifactError):
    """The payload does not match the header's digest (truncated/corrupt).

    Also a :class:`~repro.resilience.atomicio.CorruptArtifactError`, so
    callers that quarantine corrupt artifacts generically catch shard
    corruption too (``ShardError`` adds no ``__init__``; construction
    uses ``CorruptArtifactError``'s structured form).
    """


class ShardMismatchError(ShardError):
    """Shards of one set disagree (kind, spec, extraction, indices)."""


def _canonical_meta(meta: Dict[str, object]) -> bytes:
    """The meta dict in the exact byte form the digest covers.

    ``json.dumps`` of a dict that itself came from ``json.loads`` is
    byte-stable (key order is insertion order, scalar formatting is
    round-trip exact), so writer and reader agree on these bytes.
    """
    return json.dumps(meta, separators=(",", ":")).encode("utf-8")


def shard_digest(meta: Dict[str, object], payload_bytes: bytes) -> str:
    """The integrity digest the header pins: 128-bit blake2b, hex.

    Covers the payload bytes *and* the header meta, so tampering with
    shard_index, file counts or the recorded spec is caught exactly like
    payload corruption.
    """
    hasher = hashlib.blake2b(_canonical_meta(meta), digest_size=16)
    hasher.update(b"\n")
    hasher.update(payload_bytes)
    return hasher.hexdigest()


class ShardWriter:
    """Accumulates one shard's records and writes the two-line file.

    The writer is index-aware but otherwise dumb: callers (the builders
    in :mod:`repro.shards.build`) decide what a record is and own the
    shard-local feature space the records' ids reference.
    """

    def __init__(self, path: str, meta: Dict[str, object]) -> None:
        kind = meta.get("kind")
        if kind not in SHARD_KINDS:
            raise ShardFormatError(
                f"unknown shard kind {kind!r}; expected one of {SHARD_KINDS}"
            )
        self.path = path
        self.meta = dict(meta)
        self.records: List[object] = []

    def add_record(self, record: object) -> None:
        self.records.append(record)

    def finish(self, space: FeatureSpace) -> str:
        """Write the shard file; returns the path.

        ``space`` is the shard-local vocab the records' ids index into.
        The digest is computed over the exact payload bytes written, so
        any later mutation of the file -- truncation, bit rot, a manual
        edit -- is caught at read time.
        """
        payload = {"space": space.to_dict(), "records": self.records}
        payload_bytes = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        # Round-trip the meta through JSON before digesting so the bytes
        # the reader reconstructs from its parsed header match exactly.
        meta = json.loads(_canonical_meta(dict(self.meta, files=len(self.records))))
        header = {
            "format": SHARD_FORMAT,
            "digest": shard_digest(meta, payload_bytes),
            "meta": meta,
        }
        faults.fire("shard.write")
        # One atomic binary write: the digest pins the exact payload
        # bytes (no newline translation), and a crash mid-build leaves
        # either no shard file or a complete, verifiable one.
        data = b"".join(
            (
                json.dumps(header, separators=(",", ":")).encode("utf-8"),
                b"\n",
                payload_bytes,
                b"\n",
            )
        )
        atomic_write_bytes(self.path, data)
        return self.path


class ShardReader:
    """Header-eager, payload-lazy view of one shard file."""

    def __init__(self, path: str) -> None:
        self.path = path
        with open(path, "rb") as handle:
            header_line = handle.readline()
        try:
            header = json.loads(header_line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ShardFormatError(
                f"{path!r} is not a shard file (unparsable header)"
            ) from error
        if not isinstance(header, dict) or "format" not in header:
            raise ShardFormatError(
                f"{path!r} is not a shard file (no format tag in header)"
            )
        fmt = header.get("format")
        if fmt != SHARD_FORMAT:
            raise ShardFormatError(
                f"{path!r} was written as {fmt!r}; this version reads "
                f"{SHARD_FORMAT!r} -- rebuild the shard with 'pigeon shard build'"
            )
        self.digest: str = str(header.get("digest", ""))
        self.meta: Dict[str, object] = dict(header.get("meta", {}))
        self._payload: Optional[dict] = None
        self._verified = False

    # ------------------------------------------------------------------
    # Header accessors
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return str(self.meta.get("kind", ""))

    @property
    def shard_index(self) -> int:
        return int(self.meta.get("shard_index", 0))  # type: ignore[arg-type]

    @property
    def files(self) -> int:
        return int(self.meta.get("files", 0))  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Payload
    # ------------------------------------------------------------------
    def _read_payload_bytes(self) -> bytes:
        with open(self.path, "rb") as handle:
            handle.readline()  # header
            payload = handle.readline()
        return payload.rstrip(b"\n")

    def verify(self) -> None:
        """Check meta + payload against the header digest (raises on mismatch)."""
        payload_bytes = self._read_payload_bytes()
        actual = shard_digest(self.meta, payload_bytes)
        if actual != self.digest:
            raise self._integrity_error(actual)

    def _integrity_error(self, actual: str) -> ShardIntegrityError:
        return ShardIntegrityError(
            self.path,
            expected=self.digest,
            actual=actual,
            hint="the shard is truncated or corrupted -- rebuild it with "
            "'pigeon shard build'",
        )

    def load(self) -> dict:
        """The verified, parsed payload ``{"space": ..., "records": [...]}``.

        Cached until :meth:`release`.  Integrity is checked before the
        first parse, so a corrupt shard never yields partial records;
        re-loads after a :meth:`release` skip the digest (the file was
        already proven intact, and the streaming LRU re-loads shards
        many times per training epoch).
        """
        if self._payload is None:
            payload_bytes = self._read_payload_bytes()
            if not self._verified:
                actual = shard_digest(self.meta, payload_bytes)
                if actual != self.digest:
                    raise self._integrity_error(actual)
                self._verified = True
            self._payload = json.loads(payload_bytes)
        return self._payload

    def release(self) -> None:
        """Drop the cached payload (the bounded-memory lever)."""
        self._payload = None

    @property
    def loaded(self) -> bool:
        return self._payload is not None

    def local_space(self) -> FeatureSpace:
        """The shard-local vocab as a :class:`FeatureSpace` (fresh object)."""
        return FeatureSpace.from_dict(self.load()["space"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardReader({os.path.basename(self.path)!r}, "
            f"kind={self.kind!r}, index={self.shard_index}, files={self.files})"
        )


#: Meta keys every shard of one set must agree on (``shard_index``,
#: ``files`` and the per-shard count keys legitimately differ).
_SET_KEYS = ("kind", "language", "spec", "extraction")


class ShardSet:
    """An ordered, validated collection of shards forming one corpus.

    Shards are ordered by their recorded ``shard_index`` -- never by the
    order the paths were passed in -- so a shuffled directory listing
    merges into exactly the same global vocabulary.  Construction
    validates that the indices form ``0..n-1`` with no gaps or twins and
    that every shard was built under the same kind/spec/extraction.
    """

    def __init__(self, readers: Sequence[ShardReader]) -> None:
        if not readers:
            raise ShardError("a shard set needs at least one shard")
        ordered = sorted(readers, key=lambda r: r.shard_index)
        indices = [r.shard_index for r in ordered]
        if indices != list(range(len(ordered))):
            raise ShardMismatchError(
                f"shard indices must form 0..{len(ordered) - 1} with no "
                f"gaps or duplicates; got {indices} -- the set is missing "
                f"shards or mixes two corpora"
            )
        first = ordered[0].meta
        for reader in ordered[1:]:
            for key in _SET_KEYS:
                if reader.meta.get(key) != first.get(key):
                    raise ShardMismatchError(
                        f"shard {reader.path!r} disagrees with "
                        f"{ordered[0].path!r} on {key!r} "
                        f"({reader.meta.get(key)!r} != {first.get(key)!r}); "
                        f"all shards of a set must be built by one "
                        f"'pigeon shard build' run"
                    )
        self.readers: List[ShardReader] = list(ordered)

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, target: object) -> "ShardSet":
        """Open a shard directory, a list of paths, or pass a set through."""
        if isinstance(target, ShardSet):
            return target
        if isinstance(target, os.PathLike):
            target = os.fspath(target)
        if isinstance(target, str):
            if os.path.isdir(target):
                paths = sorted(
                    os.path.join(target, name)
                    for name in os.listdir(target)
                    if name.endswith(".shard.json")
                )
                if not paths:
                    raise ShardError(f"no *.shard.json files in {target!r}")
            else:
                paths = [target]
        else:
            paths = [str(p) for p in target]  # type: ignore[union-attr]
        return cls([ShardReader(path) for path in paths])

    # ------------------------------------------------------------------
    @property
    def meta(self) -> Dict[str, object]:
        """The set-wide metadata (validated equal across shards)."""
        return self.readers[0].meta

    @property
    def kind(self) -> str:
        return self.readers[0].kind

    @property
    def spec_dict(self) -> Optional[dict]:
        spec = self.meta.get("spec")
        return dict(spec) if isinstance(spec, dict) else None

    @property
    def files(self) -> int:
        return sum(r.files for r in self.readers)

    def counts(self, key: str) -> int:
        """Sum one per-shard count key (``elements``, ``paths``) over the set."""
        return sum(int(r.meta.get(key, 0)) for r in self.readers)  # type: ignore[arg-type]

    def __len__(self) -> int:
        return len(self.readers)

    def __iter__(self):
        return iter(self.readers)

    def summary(self) -> dict:
        """JSON-ready set stats (what ``pigeon shard info`` prints)."""
        return {
            "shards": len(self.readers),
            "kind": self.kind,
            "language": self.meta.get("language"),
            "files": self.files,
            "elements": self.counts("elements"),
            "paths": self.counts("paths"),
        }
