"""First-seen vocabulary merging: shard-local ids -> one global space.

Each shard carries the *complete interning order* of its slice of the
corpus.  :class:`VocabMerger` replays those orders shard-by-shard
(ordered by recorded shard index) into one global
:class:`~repro.core.interning.FeatureSpace`, interning every string
first-seen.  Because a shard's local vocab is exactly the sequence of
intern calls a sequential run would have made over that shard's files,
the merged space is **bit-identical to the space a single-process run
over the whole corpus would have built** -- same strings, same ids, same
order.  That identity is what makes sharded training interchangeable
with in-memory training.

The merger also emits one :class:`ShardRemap` per shard: dense arrays
mapping each shard-local id to its global id, which is all the
:class:`~repro.shards.corpus.ShardedCorpus` needs to stream a shard's
records in global-id form.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass
from typing import List, Sequence

from ..core.interning import FeatureSpace
from ..resilience.atomicio import read_stamped_json, stamped_json_bytes, atomic_write_bytes
from .format import ShardFormatError, ShardMismatchError, ShardReader, ShardSet

#: Format tag of a persisted merge manifest (``pigeon shard merge``).
MERGE_FORMAT = "pigeon-merge/1"


@dataclass
class ShardRemap:
    """Dense shard-local -> global id maps for one shard.

    Stored as typed ``array('q')``s: remaps are the one merge artifact
    whose total size scales with shard count, and a machine-int array is
    ~10x smaller than a list of boxed ints.
    """

    paths: Sequence[int]
    values: Sequence[int]


@dataclass
class MergedSpace:
    """The outcome of one merge: the global space + per-shard remaps."""

    space: FeatureSpace
    remaps: Sequence[ShardRemap]

    def remap_for(self, shard_index: int) -> ShardRemap:
        return self.remaps[shard_index]

    def summary(self) -> dict:
        return {
            "shards": len(self.remaps),
            "unique_paths": len(self.space.paths),
            "unique_values": len(self.space.values),
        }


class VocabMerger:
    """Folds shard-local vocabs into one global first-seen space."""

    def merge(self, shards: ShardSet) -> MergedSpace:
        """Merge a validated shard set (ordered by shard index)."""
        space = FeatureSpace()
        remaps: List[ShardRemap] = []
        for reader in shards:
            remaps.append(self.merge_one(reader, space))
        return MergedSpace(space=space, remaps=remaps)

    def merge_one(self, reader: ShardReader, space: FeatureSpace) -> ShardRemap:
        """Fold one shard's local vocab into ``space``; returns its remap.

        Only the vocab lists are consumed, and the payload is released
        before returning -- merging must stay one-shard-resident, or the
        merge itself would materialise the corpus the streaming exists
        to avoid.
        """
        local = reader.load()["space"]
        paths = array("q", (space.paths.intern(v) for v in local.get("paths", ())))
        values = array("q", (space.values.intern(v) for v in local.get("values", ())))
        reader.release()
        return ShardRemap(paths=paths, values=values)


def merge_shards(target: object) -> MergedSpace:
    """Open + merge in one call (directory path, path list, or ShardSet)."""
    return VocabMerger().merge(ShardSet.open(target))


# ----------------------------------------------------------------------
# Manifest persistence (``pigeon shard merge``)
# ----------------------------------------------------------------------


def save_manifest(path: str, shards: ShardSet, merged: MergedSpace) -> None:
    """Persist a merge: global vocab + per-shard remaps + provenance."""
    payload = {
        "format": MERGE_FORMAT,
        "meta": {
            "kind": shards.kind,
            "language": shards.meta.get("language"),
            "spec": shards.spec_dict,
            "extraction": shards.meta.get("extraction"),
            "shards": [
                {"shard_index": r.shard_index, "digest": r.digest, "files": r.files}
                for r in shards
            ],
        },
        "space": merged.space.to_dict(),
        "remaps": [
            {"paths": list(remap.paths), "values": list(remap.values)}
            for remap in merged.remaps
        ],
    }
    # Digest-stamped + atomic: manifests are rebuilt cheaply, but a torn
    # one must never silently feed wrong remaps into training.
    atomic_write_bytes(os.fspath(path), stamped_json_bytes(payload))


def load_manifest(path: str, shards: "ShardSet" = None) -> MergedSpace:
    """Reload a persisted merge (inverse of :func:`save_manifest`).

    Passing the ``shards`` the merge is about to be used with checks the
    manifest's provenance: the per-shard digests recorded at save time
    must match the set, so a manifest can never be replayed against
    rebuilt or reshuffled shards (whose local vocabs -- and therefore
    remap tables -- could differ).
    """
    payload = read_stamped_json(
        path, hint="the manifest is torn -- re-run 'pigeon shard merge'"
    )
    fmt = payload.get("format") if isinstance(payload, dict) else None
    if fmt != MERGE_FORMAT:
        raise ShardFormatError(
            f"{path!r} is not a merge manifest (format {fmt!r}; "
            f"expected {MERGE_FORMAT!r})"
        )
    if shards is not None:
        recorded = {
            int(entry.get("shard_index", -1)): entry.get("digest")
            for entry in payload.get("meta", {}).get("shards", ())
        }
        for reader in shards:
            if recorded.get(reader.shard_index) != reader.digest:
                raise ShardMismatchError(
                    f"merge manifest {path!r} was built from different "
                    f"shards (digest mismatch at shard "
                    f"{reader.shard_index}); re-run 'pigeon shard merge'"
                )
    return MergedSpace(
        space=FeatureSpace.from_dict(payload.get("space", {})),
        remaps=[
            ShardRemap(
                paths=array("q", (int(i) for i in remap.get("paths", ()))),
                values=array("q", (int(i) for i in remap.get("values", ()))),
            )
            for remap in payload.get("remaps", ())
        ],
    )
