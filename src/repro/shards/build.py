"""Shard building: slice a corpus, build each slice in its own space.

The builder's one invariant makes the whole subsystem deterministic:
**a shard is built exactly the way a sequential run would have processed
its files**, just against a fresh shard-local
:class:`~repro.core.interning.FeatureSpace`.  Views are produced by the
same :class:`~repro.api.Pipeline` code path ``Pipeline.train()`` uses
(same parse, same extraction, same factor construction, same program
names), so the shard-local vocab records the complete intern-call
sequence of that slice.  Shards are therefore independent -- each one
can be built on a different core or a different machine -- and the
first-seen merge (:mod:`repro.shards.merge`) reassembles the exact
global id assignment of a single-process run.

Fan-out uses a ``multiprocessing`` pool with one task per shard.
Workers write the shard files themselves and return only summaries, so
nothing corpus-sized ever crosses a process boundary.  Any pool failure
(sandboxed environment, unpicklable config) falls back to building the
same shards sequentially -- byte-identical files either way.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.extraction import ExtractionConfig, PathExtractor
from ..core.interning import FeatureSpace
from ..learning.crf.graph import CrfGraph
from ..resilience.atomicio import (
    fsync_directory,
    read_stamped_json,
    write_stamped_json,
)
from ..resilience.checkpoint import corpus_fingerprint
from .format import (
    _SET_KEYS,
    CONTEXTS_KIND,
    GRAPH_KIND,
    TRIPLES_KIND,
    ShardError,
    ShardMismatchError,
    ShardReader,
    ShardWriter,
)

#: File-name template for shard files (index-padded so listings sort).
SHARD_NAME = "{prefix}-{index:05d}.shard.json"

#: The build journal (``--resume`` provenance).  Deliberately does NOT
#: match the ``*.shard.json`` glob, so an in-progress build directory
#: still opens as a plain shard set once complete.
JOURNAL_NAME = "shard-build.journal.json"
JOURNAL_FORMAT = "pigeon-shard-journal/1"


def plan_shards(n_files: int, shard_size: int) -> List[Tuple[int, int]]:
    """Split ``n_files`` into contiguous ``[start, end)`` slices."""
    if shard_size < 1:
        raise ShardError(f"shard_size must be >= 1, got {shard_size}")
    if n_files < 1:
        raise ShardError("cannot shard an empty corpus")
    return [
        (start, min(start + shard_size, n_files))
        for start in range(0, n_files, shard_size)
    ]


def parse_partition(text: str) -> Tuple[int, int]:
    """Parse a ``"i/n"`` partition designator (1-based) into ``(i, n)``.

    ``"2/4"`` means: of the full shard plan, build only the shards
    assigned to the second of four partitions.  Every partition computes
    the *same* global plan from the same corpus, so shard indices (and
    file names) stay global -- ``gather_shards`` just collects them.
    """
    index_text, sep, total_text = text.partition("/")
    try:
        index, total = int(index_text), int(total_text)
    except ValueError:
        index = total = 0
    if not sep or total < 1 or not (1 <= index <= total):
        raise ShardError(
            f"bad partition {text!r}; expected i/n with 1 <= i <= n (e.g. 2/4)"
        )
    return index, total


def partition_plan(n_shards: int, partition: Tuple[int, int]) -> List[int]:
    """The global shard indices one partition builds (round-robin).

    Round-robin (shard ``s`` goes to partition ``s mod n``) balances
    partitions to within one shard of each other even when the corpus
    does not divide evenly.
    """
    index, total = partition
    return [s for s in range(n_shards) if s % total == index - 1]


def extraction_meta(config: ExtractionConfig) -> Dict[str, object]:
    """The JSON-able fingerprint of an extraction config.

    Callable abstractions and leaf filters cannot be serialized (or
    compared across processes); they are recorded as opaque markers so a
    mismatch is still caught.
    """
    return {
        "max_length": config.max_length,
        "max_width": config.max_width,
        "include_semi_paths": config.include_semi_paths,
        "semi_path_min_length": config.semi_path_min_length,
        "downsample_p": config.downsample_p,
        "seed": config.seed,
        "abstraction": (
            config.abstraction
            if isinstance(config.abstraction, str)
            else "<callable>"
        ),
        "leaf_filter": None if config.leaf_filter is None else "<callable>",
    }


@dataclass
class ShardBuildResult:
    """What one shard-building run produced."""

    out_dir: str
    paths: List[str] = field(default_factory=list)
    files: int = 0
    elements: int = 0
    record_paths: int = 0
    seconds: float = 0.0
    workers: int = 1
    #: Set on partitioned builds: ("i/n", total shards in the full plan).
    partition: Optional[str] = None
    planned_shards: int = 0
    #: Set on ``--resume`` builds: how many shards verified and skipped.
    resumed: bool = False
    skipped: int = 0

    @property
    def shards(self) -> int:
        return len(self.paths)

    def summary(self) -> dict:
        """JSON-ready stats (what ``pigeon shard build`` prints)."""
        report = {
            "out_dir": self.out_dir,
            "shards": self.shards,
            "files": self.files,
            "elements": self.elements,
            "paths": self.record_paths,
            "seconds": round(self.seconds, 4),
            "files_per_second": (
                round(self.files / self.seconds, 1) if self.seconds > 0 else 0.0
            ),
            "workers": self.workers,
        }
        if self.partition is not None:
            report["partition"] = self.partition
            report["planned_shards"] = self.planned_shards
        if self.resumed:
            report["skipped"] = self.skipped
        return report


# ----------------------------------------------------------------------
# View encoding (inverse of repro.shards.corpus.decode_*)
# ----------------------------------------------------------------------


def encode_graph(graph: CrfGraph) -> dict:
    """Serialize one CRF graph with its (shard-local) integer ids."""
    return {
        "name": graph.name,
        "nodes": [
            [
                node.key,
                node.gold,
                [[f.rel, f.label] for f in node.known],
                [[e.rel, e.other] for e in node.edges],
                list(node.unary),
            ]
            for node in graph.unknowns
        ],
    }


def encode_contexts(view: dict, name: str = "") -> dict:
    """Serialize one element->(gold, tokens) map with its local ids."""
    return {
        "name": name,
        "elements": [
            [binding, gold, [[rel, vid] for rel, vid in tokens]]
            for binding, (gold, tokens) in view.items()
        ],
    }


def _view_counts(record: dict, kind: str) -> Tuple[int, int]:
    """(elements, paths) of one encoded record, for the shard meta."""
    if kind == GRAPH_KIND:
        nodes = record["nodes"]
        return len(nodes), sum(
            len(known) + len(edges) + len(unary)
            for _k, _g, known, edges, unary in nodes
        )
    elements = record["elements"]
    return len(elements), sum(len(tokens) for _b, _g, tokens in elements)


# ----------------------------------------------------------------------
# Spec-driven view shards (what training consumes)
# ----------------------------------------------------------------------


def _build_view_shard(
    spec_dict: dict,
    sources: Sequence[str],
    start_index: int,
    shard_index: int,
    out_path: str,
    kind: str,
    base_meta: dict,
) -> dict:
    """Build + write one view shard; returns its summary counts.

    Runs in a worker process (or inline on the sequential path).  The
    fresh :class:`~repro.api.Pipeline` gives this shard its own private
    feature space; program names use the *global* file index so decoded
    views match an in-memory run exactly.
    """
    from ..api import Pipeline, RunSpec  # local import: workers pay it once

    pipeline = Pipeline(RunSpec.from_dict(spec_dict))
    writer = ShardWriter(
        out_path, dict(base_meta, shard_index=shard_index, start_file=start_index)
    )
    elements = 0
    record_paths = 0
    for offset, source in enumerate(sources):
        program = pipeline.parse(source, name=f"train:{start_index + offset}")
        view = pipeline.view(program)
        if kind == GRAPH_KIND:
            record = encode_graph(view)
        else:
            record = encode_contexts(view, name=program.name)
        n_elements, n_paths = _view_counts(record, kind)
        elements += n_elements
        record_paths += n_paths
        writer.add_record(record)
    writer.meta["elements"] = elements
    writer.meta["paths"] = record_paths
    writer.finish(pipeline.space)
    return {"path": out_path, "files": len(sources), "elements": elements, "paths": record_paths}


def build_spec_shards(
    spec,
    sources: Sequence[str],
    out_dir: str,
    shard_size: int = 32,
    workers: int = 1,
    prefix: str = "corpus",
    partition: Optional[Tuple[int, int]] = None,
    resume: bool = False,
) -> ShardBuildResult:
    """Shard a corpus into training-ready view shards for one spec.

    ``spec`` is a :class:`~repro.api.RunSpec`; the shard kind follows the
    spec's learner view (``crf`` -> graph records, ``word2vec`` ->
    context records).  With ``workers > 1`` each shard is built by its
    own process; ids are deterministic either way because every shard
    owns a private vocabulary.

    ``partition=(i, n)`` builds only the i-th (1-based) of n round-robin
    slices of the full shard plan -- shard indices, file names and
    contents stay exactly what a full build would produce, so n machines
    each building one partition and :func:`gather_shards` collecting the
    outputs yields a byte-identical shard set.

    ``resume=True`` re-enters an interrupted build: the directory's
    journal (written before any shard) is checked against this
    invocation's corpus/spec/arguments, digest-verified completed shards
    are skipped, and only missing or torn shards are rebuilt -- the
    finished directory is byte-identical to a from-scratch build.
    """
    from ..api import Pipeline
    from ..api.protocols import GRAPH_VIEW

    pipeline = Pipeline(spec)  # validates the cell before any work
    if pipeline.space is None:
        raise ShardError(
            f"representation {spec.representation!r} has no feature space; "
            f"sharding needs an interning (path-based) representation"
        )
    kind = GRAPH_KIND if pipeline.learner.consumes == GRAPH_VIEW else CONTEXTS_KIND
    base_meta = {
        "kind": kind,
        "language": spec.language,
        "spec": spec.to_dict(),
        "extraction": extraction_meta(pipeline.service.config),
    }

    os.makedirs(out_dir, exist_ok=True)
    started = time.perf_counter()
    _prepare_journal(
        out_dir,
        {
            "format": JOURNAL_FORMAT,
            "kind": kind,
            "language": spec.language,
            "spec": spec.to_dict(),
            "extraction": base_meta["extraction"],
            "corpus": corpus_fingerprint(sources),
            "files": len(sources),
            "shard_size": shard_size,
            "prefix": prefix,
            "partition": None if partition is None else f"{partition[0]}/{partition[1]}",
        },
        resume,
    )
    tasks = [
        (
            spec.to_dict(),
            list(sources[start:end]),
            start,
            shard_index,
            os.path.join(out_dir, SHARD_NAME.format(prefix=prefix, index=shard_index)),
            kind,
            base_meta,
        )
        for shard_index, (start, end) in enumerate(plan_shards(len(sources), shard_size))
    ]
    tasks, planned = _partition_tasks(tasks, partition, index_position=3)
    skipped: List[dict] = []
    if resume:
        _clean_temp_files(out_dir)
        tasks, skipped = _filter_completed(
            tasks, base_meta, index_position=3, sources_position=1, path_position=4
        )
    summaries, used_workers = _run_shard_tasks(_build_view_shard, tasks, workers)
    result = _collect(
        out_dir,
        sorted(skipped + summaries, key=lambda s: s["path"]),
        started,
        used_workers,
        partition,
        planned,
    )
    result.resumed = resume
    result.skipped = len(skipped)
    return result


# ----------------------------------------------------------------------
# Raw extraction-output shards (ExtractionService.index_to_shards)
# ----------------------------------------------------------------------


def _build_triples_shard(
    config: ExtractionConfig,
    language: str,
    sources: Sequence[str],
    start_index: int,
    shard_index: int,
    out_path: str,
    base_meta: dict,
) -> dict:
    """Build + write one raw-triples shard (worker or inline)."""
    from ..lang.base import parse_source  # local import: avoid a cycle

    extractor = PathExtractor(config, space=FeatureSpace())
    writer = ShardWriter(
        out_path, dict(base_meta, shard_index=shard_index, start_file=start_index)
    )
    record_paths = 0
    nodes = 0
    for offset, source in enumerate(sources):
        ast = parse_source(language, source)
        triples = [
            [e.start_value_id, e.rel_id, e.end_value_id]
            for e in extractor.extract(ast)
        ]
        nodes += ast.size()
        record_paths += len(triples)
        writer.add_record(
            {"name": f"file:{start_index + offset}", "nodes": ast.size(), "triples": triples}
        )
    writer.meta["paths"] = record_paths
    writer.meta["nodes"] = nodes
    writer.finish(extractor.space)
    return {"path": out_path, "files": len(sources), "elements": 0, "paths": record_paths}


def build_triples_shards(
    sources: Sequence[str],
    language: str,
    config: ExtractionConfig,
    out_dir: str,
    shard_size: int = 32,
    workers: int = 1,
    prefix: str = "extract",
    partition: Optional[Tuple[int, int]] = None,
    resume: bool = False,
) -> ShardBuildResult:
    """Shard raw extraction output (the service-level entry point)."""
    base_meta = {
        "kind": TRIPLES_KIND,
        "language": language,
        "spec": None,
        "extraction": extraction_meta(config),
    }
    os.makedirs(out_dir, exist_ok=True)
    started = time.perf_counter()
    _prepare_journal(
        out_dir,
        {
            "format": JOURNAL_FORMAT,
            "kind": TRIPLES_KIND,
            "language": language,
            "spec": None,
            "extraction": base_meta["extraction"],
            "corpus": corpus_fingerprint(sources),
            "files": len(sources),
            "shard_size": shard_size,
            "prefix": prefix,
            "partition": None if partition is None else f"{partition[0]}/{partition[1]}",
        },
        resume,
    )
    tasks = [
        (
            config,
            language,
            list(sources[start:end]),
            start,
            shard_index,
            os.path.join(out_dir, SHARD_NAME.format(prefix=prefix, index=shard_index)),
            base_meta,
        )
        for shard_index, (start, end) in enumerate(plan_shards(len(sources), shard_size))
    ]
    tasks, planned = _partition_tasks(tasks, partition, index_position=4)
    skipped: List[dict] = []
    if resume:
        _clean_temp_files(out_dir)
        tasks, skipped = _filter_completed(
            tasks, base_meta, index_position=4, sources_position=2, path_position=5
        )
    summaries, used_workers = _run_shard_tasks(_build_triples_shard, tasks, workers)
    result = _collect(
        out_dir,
        sorted(skipped + summaries, key=lambda s: s["path"]),
        started,
        used_workers,
        partition,
        planned,
    )
    result.resumed = resume
    result.skipped = len(skipped)
    return result


# ----------------------------------------------------------------------
# Resume machinery (the build journal)
# ----------------------------------------------------------------------


def _prepare_journal(out_dir: str, payload: dict, resume: bool) -> str:
    """Write (or, on resume, verify) the build journal for ``out_dir``.

    The journal is written atomically *before any shard*, so a resumed
    invocation can prove it describes the same build -- same corpus
    fingerprint, spec, extraction, shard size and partition -- before
    trusting any shard file it finds.  A disagreement raises
    :class:`ShardMismatchError` naming the keys that changed.
    """
    path = os.path.join(out_dir, JOURNAL_NAME)
    payload = json.loads(json.dumps(payload))  # normalise tuples etc.
    if resume and os.path.exists(path):
        recorded = read_stamped_json(
            path,
            require_digest=True,
            hint="delete the journal (and the directory) to rebuild from scratch",
        )
        if recorded != payload:
            changed = sorted(
                key
                for key in set(recorded) | set(payload)
                if recorded.get(key) != payload.get(key)
            )
            raise ShardMismatchError(
                f"cannot resume into {out_dir!r}: the build journal "
                f"disagrees with this invocation on {', '.join(changed)}; "
                f"re-run with the original arguments or rebuild from scratch"
            )
        return path
    write_stamped_json(path, payload)
    return path


def _clean_temp_files(out_dir: str) -> None:
    """Remove orphaned atomic-write temp files left by a killed build."""
    for name in os.listdir(out_dir):
        if name.startswith(".") and name.endswith(".tmp"):
            try:
                os.unlink(os.path.join(out_dir, name))
            except OSError:
                pass


def _verify_completed_shard(
    path: str, shard_index: int, expected_files: int, expected_meta: dict
) -> Optional[dict]:
    """A skip-summary for ``path`` if it is a complete, matching shard."""
    if not os.path.exists(path):
        return None
    try:
        reader = ShardReader(path)
        if reader.shard_index != shard_index or reader.files != expected_files:
            return None
        for key in _SET_KEYS:
            if reader.meta.get(key) != expected_meta.get(key):
                return None
        reader.verify()
    except ShardError:
        return None  # torn or foreign file -> rebuild it
    return {
        "path": path,
        "files": reader.files,
        "elements": int(reader.meta.get("elements", 0)),  # type: ignore[arg-type]
        "paths": int(reader.meta.get("paths", 0)),  # type: ignore[arg-type]
        "skipped": True,
    }


def _filter_completed(
    tasks: List[tuple],
    base_meta: dict,
    *,
    index_position: int,
    sources_position: int,
    path_position: int,
) -> Tuple[List[tuple], List[dict]]:
    """Partition tasks into (still to build, verified-complete summaries)."""
    expected_meta = json.loads(json.dumps(base_meta))
    remaining: List[tuple] = []
    skipped: List[dict] = []
    for task in tasks:
        summary = _verify_completed_shard(
            task[path_position],
            task[index_position],
            len(task[sources_position]),
            expected_meta,
        )
        if summary is None:
            remaining.append(task)
        else:
            skipped.append(summary)
    return remaining, skipped


# ----------------------------------------------------------------------
# Shared fan-out machinery
# ----------------------------------------------------------------------


def _partition_tasks(
    tasks: List[tuple], partition: Optional[Tuple[int, int]], index_position: int
) -> Tuple[List[tuple], int]:
    """Keep only this partition's shard tasks; returns (tasks, full-plan size)."""
    planned = len(tasks)
    if partition is None:
        return tasks, planned
    index, total = partition
    if not (1 <= index <= total):
        raise ShardError(f"bad partition ({index}, {total}); need 1 <= i <= n")
    mine = set(partition_plan(planned, partition))
    return [task for task in tasks if task[index_position] in mine], planned


def _run_shard_tasks(
    build_fn, tasks: List[tuple], workers: int
) -> Tuple[List[dict], int]:
    """One task per shard, over a process pool when asked (and possible).

    Only *pool availability* problems (sandboxed environment, task
    payloads that cannot pickle) fall back to a sequential build; a
    genuine build failure inside a worker -- an unparsable source, a
    shard that cannot be written -- propagates immediately instead of
    being retried sequentially just to fail again.
    """
    n_workers = max(1, int(workers))
    if n_workers > 1 and len(tasks) > 1:
        n_workers = min(n_workers, len(tasks))
        try:
            import multiprocessing
            import pickle

            context = multiprocessing.get_context()
            pool = context.Pool(processes=n_workers)
        except Exception:
            pool = None  # no subprocesses here (sandbox) -> sequential
        if pool is not None:
            with pool:
                try:
                    return pool.starmap(build_fn, tasks), n_workers
                except (pickle.PicklingError, AttributeError, TypeError):
                    # Unpicklable task payloads surface as any of these
                    # (PicklingError, "Can't pickle local object", ...).
                    # A genuine build failure that happens to share the
                    # type is retried sequentially and raises its real
                    # error there; other exception types (parse errors,
                    # OSError, ShardError) propagate immediately.
                    pass
    return [build_fn(*task) for task in tasks], 1


def _collect(
    out_dir: str,
    summaries: List[dict],
    started: float,
    workers: int,
    partition: Optional[Tuple[int, int]] = None,
    planned: int = 0,
) -> ShardBuildResult:
    result = ShardBuildResult(out_dir=out_dir, workers=max(1, int(workers)))
    for summary in summaries:
        result.paths.append(summary["path"])
        result.files += summary["files"]
        result.elements += summary["elements"]
        result.record_paths += summary["paths"]
    result.seconds = time.perf_counter() - started
    if partition is not None:
        result.partition = f"{partition[0]}/{partition[1]}"
        result.planned_shards = planned
    return result


# ----------------------------------------------------------------------
# Gathering partitioned builds back into one shard set
# ----------------------------------------------------------------------


def gather_shards(partition_dirs: Sequence[str], out_dir: str) -> dict:
    """Collect partitioned shard builds into one validated shard set.

    Copies every ``*.shard.json`` from each partition directory into
    ``out_dir`` (file names carry the global shard index, so a clash
    means two partitions built the same shard -- an error, not a merge),
    then opens the assembled directory as a :class:`ShardSet`, whose
    validation proves the partitions are complete and compatible: shard
    indices form exactly ``0..n-1`` and every header agrees on
    kind/spec/extraction.  Returns the gathered set's summary.

    The assembly is staged: shards are copied into a hidden staging
    directory next to ``out_dir`` and validated *there*; only a set that
    passes is renamed into place.  A failed gather (overlapping or
    incomplete partitions, torn shards) removes the staging directory
    and leaves no half-gathered store on disk.
    """
    from .format import ShardSet

    if not partition_dirs:
        raise ShardError("pass at least one partition directory to gather")
    out_dir = os.fspath(out_dir)
    gathered: Dict[str, str] = {}  # shard file name -> source partition dir
    for partition_dir in partition_dirs:
        if not os.path.isdir(partition_dir):
            raise ShardError(f"partition directory {partition_dir!r} does not exist")
        names = sorted(
            name
            for name in os.listdir(partition_dir)
            if name.endswith(".shard.json")
        )
        if not names:
            raise ShardError(f"no shard files in partition {partition_dir!r}")
        for name in names:
            previous = gathered.get(name)
            if previous is not None:
                raise ShardError(
                    f"shard {name!r} appears in both {previous!r} and "
                    f"{partition_dir!r}; partitions must be disjoint"
                )
            gathered[name] = partition_dir
    if os.path.isdir(out_dir) and os.listdir(out_dir):
        raise ShardError(
            f"gather output directory {out_dir!r} already exists and is "
            f"not empty; remove it (or gather somewhere else) first"
        )
    parent = os.path.dirname(os.path.abspath(out_dir)) or "."
    os.makedirs(parent, exist_ok=True)
    staging = tempfile.mkdtemp(prefix=".gather-", dir=parent)
    try:
        for name, partition_dir in sorted(gathered.items()):
            shutil.copyfile(
                os.path.join(partition_dir, name), os.path.join(staging, name)
            )
        shard_set = ShardSet.open(staging)  # completeness + agreement checks
        summary = shard_set.summary()
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    if os.path.isdir(out_dir):
        os.rmdir(out_dir)  # empty (checked above); replaced by the rename
    os.rename(staging, out_dir)
    fsync_directory(parent)
    summary["out_dir"] = out_dir
    summary["partitions"] = len(partition_dirs)
    return summary
