"""Sharded corpus store: on-disk shards, vocab merging, streamed training.

This subsystem is the ROADMAP's "sharded corpora" line: it lets a corpus
of any size be extracted once, persisted as independent shards (on one
machine or many), and streamed through training with bounded memory --
while producing **bit-identical models and predictions** to an in-memory
``Pipeline.train()`` over the same sources.

:mod:`repro.shards.format`
    :class:`ShardWriter` / :class:`ShardReader` and :class:`ShardSet`:
    the two-line shard container (versioned header + blake2b integrity
    digest over the payload; shard-local vocab + per-file records keyed
    on local integer ids).  Readers parse only the header until a
    payload is needed; sets validate index completeness and that every
    shard was built under one kind/spec/extraction.
:mod:`repro.shards.build`
    shard builders.  Each shard is its slice of the corpus processed
    exactly as a sequential run would -- same Pipeline view code, fresh
    private :class:`~repro.core.interning.FeatureSpace` -- so shards are
    embarrassingly parallel (``workers > 1`` builds one shard per
    process) yet fully deterministic.  ``partition=(i, n)`` builds only
    the i-th round-robin slice of the full plan -- with *global* shard
    indices -- so n machines can each build one partition and
    :func:`gather_shards` reassembles (and validates) the complete set.
    :meth:`~repro.core.service.ExtractionService.index_to_shards`
    delegates here for raw extraction-output shards.
:mod:`repro.shards.merge`
    :class:`VocabMerger`: replays the shard-local vocabs in shard-index
    order into one global first-seen :class:`FeatureSpace` -- the exact
    space a single-process run would build -- and emits one dense
    local->global :class:`ShardRemap` per shard.
:mod:`repro.shards.corpus`
    :class:`ShardedCorpus`: a sequence-of-views facade the trainers
    consume.  Views decode on access with ids remapped to the global
    space; a small LRU keeps at most a few shard payloads resident, so
    both the sequential passes and the CRF trainer's shuffled epochs run
    in bounded memory however large the corpus grows.

The end-to-end flow (``pigeon shard build`` -> ``pigeon shard merge`` ->
``pigeon train --shards``, or ``Pipeline.train(shards=...)``)::

    sources --(build: N independent processes/machines)--> shard files
    shard files --(merge: first-seen vocab fold)--> global space + remaps
    shards + remaps --(ShardedCorpus: streamed epochs)--> trained model

Determinism argument, in one paragraph: a sequential run's feature space
is the replay of all intern calls in file order.  A shard's local vocab
is the replay of the same calls restricted to its slice (the builder
runs the same code on the same files in the same order), and first-seen
merging of the slices in shard order replays the concatenation -- which
*is* the full sequence.  Decoded views then carry the same global ids,
gold labels and factor order as in-memory views, so the trainer (which
is deterministic under its seed) takes the same steps and lands on the
same weights, bit for bit.  ``benchmarks/bench_sharding.py`` gates both
halves: prediction equality and bounded peak memory per shard pass.
"""

from .build import (
    ShardBuildResult,
    build_spec_shards,
    build_triples_shards,
    gather_shards,
    parse_partition,
    partition_plan,
    plan_shards,
)
from .corpus import ShardedCorpus
from .format import (
    CONTEXTS_KIND,
    GRAPH_KIND,
    SHARD_FORMAT,
    TRIPLES_KIND,
    ShardError,
    ShardFormatError,
    ShardIntegrityError,
    ShardMismatchError,
    ShardReader,
    ShardSet,
    ShardWriter,
)
from .merge import (
    MergedSpace,
    ShardRemap,
    VocabMerger,
    load_manifest,
    merge_shards,
    save_manifest,
)

__all__ = [
    "CONTEXTS_KIND",
    "GRAPH_KIND",
    "MergedSpace",
    "SHARD_FORMAT",
    "ShardBuildResult",
    "ShardError",
    "ShardFormatError",
    "ShardIntegrityError",
    "ShardMismatchError",
    "ShardReader",
    "ShardRemap",
    "ShardSet",
    "ShardWriter",
    "ShardedCorpus",
    "TRIPLES_KIND",
    "VocabMerger",
    "build_spec_shards",
    "build_triples_shards",
    "gather_shards",
    "load_manifest",
    "merge_shards",
    "parse_partition",
    "partition_plan",
    "plan_shards",
    "save_manifest",
]
