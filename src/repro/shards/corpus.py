"""Streaming view of a sharded corpus: remapped graphs, bounded memory.

:class:`ShardedCorpus` is what the trainers consume.  It looks like a
sequence of feature views -- ``len()``, integer indexing, iteration --
but at most ``cache_shards`` shard payloads are resident at any moment;
every view is decoded on access from its shard's records, with
shard-local ids translated to global ids through the merge's remap
tables.  Training therefore never holds the full corpus in memory:

* the trainer's sequential passes (candidate indexing, streamed epochs)
  walk shard 0, shard 1, ... with exactly one payload loaded at a time;
* the shuffled epoch order of the CRF trainer random-accesses views, and
  the small LRU of loaded payloads bounds residency at a few shards no
  matter how large the corpus grows.

The bound is bought with I/O: under a *shuffled* epoch most accesses
miss the LRU and re-parse a shard payload (integrity is only digested
on a shard's first load), so shuffled training over S shards costs
about one payload parse per view per epoch.  That trade is deliberate
-- visiting views in the exact in-memory order is what keeps sharded
models bit-identical; a shard-local shuffle would be faster but train a
(slightly) different model.  Raise ``cache_shards`` to spend memory on
fewer re-parses.

Decoded views are bit-identical to the views an in-memory
``Pipeline.train()`` run builds over the same sources in the same
order: same element keys and gold labels, same factors, same global ids
(see :mod:`repro.shards.merge` for why the ids line up).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.interning import FeatureSpace
from ..learning.crf.graph import CrfGraph, KnownNeighbor, UnknownEdge
from .format import CONTEXTS_KIND, GRAPH_KIND, ShardError, ShardSet, TRIPLES_KIND
from .merge import MergedSpace, ShardRemap, VocabMerger


def decode_graph_record(
    record: dict, remap: ShardRemap, space: FeatureSpace
) -> CrfGraph:
    """Rebuild one CRF factor graph in global-id form."""
    graph = CrfGraph(name=str(record.get("name", "")), space=space)
    paths = remap.paths
    values = remap.values
    for key, gold, known, edges, unary in record["nodes"]:
        index = graph.add_unknown(key, gold=gold)
        node = graph.unknowns[index]
        node.known.extend(
            KnownNeighbor(paths[rel], values[label]) for rel, label in known
        )
        node.edges.extend(UnknownEdge(paths[rel], other) for rel, other in edges)
        node.unary.extend(paths[rel] for rel in unary)
    return graph


def decode_contexts_record(
    record: dict, remap: ShardRemap, space: FeatureSpace
) -> Dict[str, Tuple[str, List[Tuple[int, int]]]]:
    """Rebuild one element->(gold, tokens) context map in global-id form."""
    paths = remap.paths
    values = remap.values
    return {
        binding: (gold, [(paths[rel], values[vid]) for rel, vid in tokens])
        for binding, gold, tokens in record["elements"]
    }


def decode_triples_record(
    record: dict, remap: ShardRemap, space: FeatureSpace
) -> List[Tuple[int, int, int]]:
    """Rebuild one file's raw context triples in global-id form."""
    paths = remap.paths
    values = remap.values
    return [
        (values[start], paths[rel], values[end])
        for start, rel, end in record["triples"]
    ]


_DECODERS = {
    GRAPH_KIND: decode_graph_record,
    CONTEXTS_KIND: decode_contexts_record,
    TRIPLES_KIND: decode_triples_record,
}


class ShardedCorpus:
    """Sequence-of-views facade over a shard set with a tiny payload LRU."""

    def __init__(
        self,
        shards: ShardSet,
        merged: Optional[MergedSpace] = None,
        cache_shards: int = 2,
    ) -> None:
        self.shards = shards
        self.merged = merged if merged is not None else VocabMerger().merge(shards)
        if len(self.merged.remaps) != len(shards):
            raise ShardError(
                f"merge covers {len(self.merged.remaps)} shards but the set "
                f"has {len(shards)}; merge and set are from different builds"
            )
        decoder = _DECODERS.get(shards.kind)
        if decoder is None:
            raise ShardError(f"cannot stream views of kind {shards.kind!r}")
        self._decode = decoder
        self.cache_shards = max(1, int(cache_shards))
        # shard_index -> records list, in LRU order (most recent last).
        self._cache: "OrderedDict[int, list]" = OrderedDict()
        # Cumulative file counts: shard s covers [offsets[s], offsets[s+1]).
        self._offsets: List[int] = [0]
        for reader in shards:
            self._offsets.append(self._offsets[-1] + reader.files)

    # ------------------------------------------------------------------
    # Corpus-level facts (from headers -- no payload touched)
    # ------------------------------------------------------------------
    @property
    def space(self) -> FeatureSpace:
        """The merged global feature space every decoded view references."""
        return self.merged.space

    @property
    def files(self) -> int:
        return self._offsets[-1]

    @property
    def elements(self) -> int:
        return self.shards.counts("elements")

    def __len__(self) -> int:
        return self._offsets[-1]

    # ------------------------------------------------------------------
    # Payload residency
    # ------------------------------------------------------------------
    def _records(self, shard_index: int) -> list:
        records = self._cache.get(shard_index)
        if records is not None:
            self._cache.move_to_end(shard_index)
            return records
        reader = self.shards.readers[shard_index]
        records = reader.load()["records"]
        reader.release()  # the LRU below is the only retention policy
        self._cache[shard_index] = records
        while len(self._cache) > self.cache_shards:
            self._cache.popitem(last=False)
        return records

    def resident_shards(self) -> int:
        """How many shard payloads are loaded right now (<= cache_shards)."""
        return len(self._cache)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def _locate(self, index: int) -> Tuple[int, int]:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        lo, hi = 0, len(self.shards) - 1
        while lo < hi:  # bisect over cumulative offsets
            mid = (lo + hi + 1) // 2
            if self._offsets[mid] <= index:
                lo = mid
            else:
                hi = mid - 1
        return lo, index - self._offsets[lo]

    def __getitem__(self, index: int):
        shard_index, offset = self._locate(index)
        record = self._records(shard_index)[offset]
        return self._decode(record, self.merged.remaps[shard_index], self.space)

    def __iter__(self) -> Iterator:
        """One shard pass: stream every view, one shard resident at a time."""
        for shard_index in range(len(self.shards)):
            remap = self.merged.remaps[shard_index]
            for record in self._records(shard_index):
                yield self._decode(record, remap, self.space)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedCorpus({len(self.shards)} shards, {len(self)} files, "
            f"kind={self.shards.kind!r})"
        )
