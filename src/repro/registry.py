"""Generic named plugin registries: PIGEON's extension points.

The paper's central claim (Sec. 5.1) is that the approach is
cross-language and cross-task *by construction*: languages, tasks,
representations and learners are independent axes, and any cell of the
cross product is one configuration away.  This module provides the
mechanism that makes the claim true in code -- a small, uniform
:class:`Registry` that each extension point instantiates:

* ``repro.lang.base.languages`` -- language frontends;
* ``repro.api.tasks.tasks`` -- prediction tasks;
* ``repro.api.representations.representations`` -- program representations;
* ``repro.api.learners.learners`` -- learning engines.

Plugins register under a public name, either imperatively::

    languages.register("kotlin", KotlinFrontend)

or with the decorator form::

    @representations.register("ast-paths")
    class AstPathsRepresentation: ...

Lookups of unknown names raise :class:`UnknownPluginError` listing every
known name, so a typo in a config or CLI flag is a one-glance fix.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Tuple, TypeVar

T = TypeVar("T")


class UnknownPluginError(KeyError, ValueError):
    """An unregistered name was looked up in a registry.

    Subclasses both :class:`KeyError` (registries are mappings) and
    :class:`ValueError` (an unknown name in a :class:`~repro.api.RunSpec`
    is an invalid configuration value), so callers can catch whichever
    reads naturally at their call site.
    """

    def __init__(self, kind: str, name: str, known: Tuple[str, ...]) -> None:
        known_list = ", ".join(known) if known else "(none registered)"
        super().__init__(f"unknown {kind} {name!r}; known {kind}s: {known_list}")
        self.kind = kind
        self.name = name
        self.known = known

    def __str__(self) -> str:  # KeyError.__str__ would repr-quote the message
        return self.args[0]


class Registry:
    """A named collection of plugin factories for one extension point.

    ``kind`` is the human-readable noun used in error messages
    (``"language"``, ``"task"``, ...).  A registry may carry a *bootstrap*
    hook that registers the built-in plugins on first lookup; deferring
    the imports this way keeps plugin modules free to import the package
    that owns the registry without cycles.
    """

    def __init__(self, kind: str, bootstrap: Optional[Callable[[], None]] = None) -> None:
        self.kind = kind
        self._entries: Dict[str, Any] = {}
        self._bootstrap = bootstrap
        self._booted = False

    # ------------------------------------------------------------------
    def register(self, name: str, obj: Any = None):
        """Register ``obj`` under ``name``; with one argument, a decorator.

        Re-registering a name replaces the previous entry, so user code
        can override a built-in implementation.  Built-ins are forced in
        first (the bootstrap runs now if it hasn't) so a user entry can
        never be clobbered by a later lazy bootstrap.
        """
        self._ensure_booted()
        if obj is None:

            def decorator(target: T) -> T:
                self._entries[name] = target
                return target

            return decorator
        self._entries[name] = obj
        return obj

    def set_bootstrap(self, bootstrap: Callable[[], None]) -> None:
        """Install the hook that registers built-ins on first lookup."""
        self._bootstrap = bootstrap

    # ------------------------------------------------------------------
    def _ensure_booted(self) -> None:
        if not self._booted and self._bootstrap is not None:
            self._booted = True  # set first: the hook's imports re-enter us
            try:
                self._bootstrap()
            except BaseException:
                # A failed bootstrap (e.g. a frontend import error) must
                # stay retryable, not leave a permanently empty registry.
                self._booted = False
                raise

    def get(self, name: str) -> Any:
        """The registered factory, or :class:`UnknownPluginError`."""
        self._ensure_booted()
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownPluginError(self.kind, name, self.names()) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the factory registered under ``name``."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        self._ensure_booted()
        return tuple(sorted(self._entries))

    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        self._ensure_booted()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_booted()
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, names={list(self.names())})"
