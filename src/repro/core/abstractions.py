"""Path abstraction functions ``alpha`` (Definition 4.4 and Sec. 5.6).

An abstraction maps a concrete :class:`repro.core.paths.AstPath` to a
hashable encoding.  Coarser abstractions conflate more paths, shrinking
the model and the training time at some cost in accuracy; Fig. 12 of the
paper sweeps the ladder implemented here:

========================  ====================================================
``alpha_id``              full node-by-node encoding with arrows (the default)
``alpha_no_arrows``       node sequence without the up/down symbols
``alpha_forget_order``    unordered bag of node kinds
``alpha_first_top_last``  only the first, top and last nodes
``alpha_first_last``      only the first and last nodes
``alpha_top``             only the top node
``alpha_no_path``         a single constant symbol (the "no-paths" baseline)
========================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Dict

from .paths import AstPath

Abstraction = Callable[[AstPath], str]

#: Separator used by non-arrow encodings.
_SEP = ","

#: The single symbol all paths map to under the "no-paths" abstraction.
NO_PATH_SYMBOL = "*"


def alpha_id(path: AstPath) -> str:
    """Identity abstraction: the full encoding, e.g. ``A↑B↓C``."""
    return path.encode()


def alpha_no_arrows(path: AstPath) -> str:
    """Full node sequence but without the movement arrows."""
    return _SEP.join(path.kinds())


def alpha_forget_order(path: AstPath) -> str:
    """Unordered multiset of the path's node kinds."""
    return _SEP.join(sorted(path.kinds()))


def alpha_first_top_last(path: AstPath) -> str:
    """Keep only the first, hierarchically-highest, and last nodes.

    The paper's "sweet spot": roughly 95% of full accuracy at half the
    training time.
    """
    kinds = path.kinds()
    return _SEP.join((kinds[0], path.top.kind, kinds[-1]))


def alpha_first_last(path: AstPath) -> str:
    """Keep only the two endpoint node kinds."""
    kinds = path.kinds()
    return _SEP.join((kinds[0], kinds[-1]))


def alpha_top(path: AstPath) -> str:
    """Keep only the top node kind."""
    return path.top.kind


def alpha_no_path(path: AstPath) -> str:
    """Hide the path entirely: every relation looks the same.

    With this abstraction the model degenerates to a bag of neighbouring
    identifiers -- the "no-paths" baseline rows of Table 2.
    """
    return NO_PATH_SYMBOL


#: Registry keyed by the names used in Fig. 12.
ABSTRACTIONS: Dict[str, Abstraction] = {
    "full": alpha_id,
    "no-arrows": alpha_no_arrows,
    "forget-order": alpha_forget_order,
    "first-top-last": alpha_first_top_last,
    "first-last": alpha_first_last,
    "top": alpha_top,
    "no-path": alpha_no_path,
}

#: The ladder order used when plotting Fig. 12 (coarsest to finest).
ABSTRACTION_LADDER = (
    "no-path",
    "top",
    "first-last",
    "first-top-last",
    "forget-order",
    "no-arrows",
    "full",
)


def get_abstraction(name: str) -> Abstraction:
    """Look up an abstraction by its Fig. 12 name."""
    try:
        return ABSTRACTIONS[name]
    except KeyError:
        known = ", ".join(sorted(ABSTRACTIONS))
        raise KeyError(f"unknown abstraction {name!r}; known: {known}") from None
