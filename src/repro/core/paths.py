"""AST paths (Definition 4.2) and their geometry.

An AST path of length ``k`` is a sequence ``n1 d1 n2 d2 ... nk dk n(k+1)``
where the ``ni`` are nodes and each ``di`` is an up or down movement: if
``di`` is up then ``n(i+1)`` is the parent of ``ni``; if down, ``ni`` is the
parent of ``n(i+1)``.

We materialise the path between two nodes canonically: climb from the start
node to the lowest common ancestor, then descend to the end node.  Such a
path changes direction at most once, at the *top* node; the paper's width
parameter is the distance between the two children of the top node the path
passes through (Fig. 5).

Three shapes are used in the paper and implemented here:

* **leafwise paths** -- both endpoints are terminals (most experiments);
* **semi-paths** -- one endpoint is a terminal and the other one of its
  ancestors (used for extra generalisation);
* **n-wise paths** -- a bundle of pairwise paths sharing a pivot node
  (mentioned as part of the representation family; provided for
  completeness and exercised by tests).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .ast_model import Node

UP = "↑"  # ↑
DOWN = "↓"  # ↓


class AstPath:
    """A concrete AST path between two nodes of one tree.

    Attributes
    ----------
    nodes:
        The node sequence ``n1 .. n(k+1)``.
    directions:
        The movement sequence ``d1 .. dk`` (each :data:`UP` or :data:`DOWN`).
    """

    __slots__ = ("nodes", "directions")

    def __init__(self, nodes: Sequence[Node], directions: Sequence[str]) -> None:
        if len(nodes) != len(directions) + 1:
            raise ValueError(
                f"a path of length k has k+1 nodes and k directions, got "
                f"{len(nodes)} nodes / {len(directions)} directions"
            )
        for d in directions:
            if d not in (UP, DOWN):
                raise ValueError(f"invalid direction {d!r}")
        self.nodes: Tuple[Node, ...] = tuple(nodes)
        self.directions: Tuple[str, ...] = tuple(directions)

    # -- Def. 4.2 accessors -------------------------------------------
    @property
    def start(self) -> Node:
        """``start(p) = n1``."""
        return self.nodes[0]

    @property
    def end(self) -> Node:
        """``end(p) = n(k+1)``."""
        return self.nodes[-1]

    @property
    def length(self) -> int:
        """The path length ``k`` (number of movements)."""
        return len(self.directions)

    @property
    def top(self) -> Node:
        """The hierarchically-highest node on the path.

        For a canonical up-then-down path this is the node where the
        direction changes; for a pure ascent/descent it is the highest
        endpoint.
        """
        for i, d in enumerate(self.directions):
            if d == DOWN:
                return self.nodes[i]
        return self.nodes[-1]

    @property
    def top_index(self) -> int:
        """Index of :attr:`top` within :attr:`nodes`."""
        for i, d in enumerate(self.directions):
            if d == DOWN:
                return i
        return len(self.nodes) - 1

    @property
    def width(self) -> int:
        """Distance between the top node's children used by the path.

        Per Sec. 4.2 / Fig. 5 the width is the difference between the
        positions of the two sibling nodes (children of the top node) that
        participate in the path.  Paths that do not pass through two
        distinct children of their top node (e.g. semi-paths) have width 0.
        """
        t = self.top_index
        if t == 0 or t == len(self.nodes) - 1:
            return 0
        left = self.nodes[t - 1]
        right = self.nodes[t + 1]
        return abs(right.child_index() - left.child_index())

    # -- Transformations ----------------------------------------------
    def reversed(self) -> "AstPath":
        """The same path walked from the other endpoint."""
        flipped = tuple(UP if d == DOWN else DOWN for d in reversed(self.directions))
        return AstPath(tuple(reversed(self.nodes)), flipped)

    def kinds(self) -> Tuple[str, ...]:
        """The node-kind sequence (what representations actually use)."""
        return tuple(n.kind for n in self.nodes)

    def encode(self) -> str:
        """The paper's textual form, e.g. ``SymbolRef↑Assign=↓True``."""
        parts: List[str] = [self.nodes[0].kind]
        for d, n in zip(self.directions, self.nodes[1:]):
            parts.append(d)
            parts.append(n.kind)
        return "".join(parts)

    def __eq__(self, other: object) -> bool:
        """Paths are equal iff they traverse the *same node objects*.

        Equality is node-identity-based (and ``__hash__`` agrees): two
        paths over structurally identical but distinct trees are distinct
        paths.  Compare :meth:`encode` outputs for structural equality.
        """
        if not isinstance(other, AstPath):
            return NotImplemented
        if self.directions != other.directions:
            return False
        return all(a is b for a, b in zip(self.nodes, other.nodes))

    def __hash__(self) -> int:
        return hash((tuple(id(n) for n in self.nodes), self.directions))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AstPath({self.encode()})"


def path_between(a: Node, b: Node) -> AstPath:
    """The canonical path from ``a`` to ``b`` (up to the LCA, then down).

    Works for any pair of nodes in one tree, covering leafwise paths,
    semi-paths (when one node is an ancestor of the other) and paths
    between arbitrary nodes, e.g. a terminal and an expression nonterminal
    for the full-type task.
    """
    a_chain: List[Node] = [a]
    node: Optional[Node] = a
    while node.parent is not None:
        node = node.parent
        a_chain.append(node)
    a_ids = {id(n): i for i, n in enumerate(a_chain)}

    b_chain: List[Node] = []
    node = b
    while node is not None and id(node) not in a_ids:
        b_chain.append(node)
        node = node.parent
    if node is None:
        raise ValueError("nodes do not belong to the same tree")
    lca_pos = a_ids[id(node)]

    nodes: List[Node] = a_chain[: lca_pos + 1]
    directions: List[str] = [UP] * lca_pos
    for down_node in reversed(b_chain):
        nodes.append(down_node)
        directions.append(DOWN)
    return AstPath(nodes, directions)


def semi_path(leaf: Node, ancestor: Node) -> AstPath:
    """A semi-path: from a terminal up to one of its ancestors.

    Raises ``ValueError`` when ``ancestor`` is not actually an ancestor of
    ``leaf``.
    """
    nodes: List[Node] = [leaf]
    node: Optional[Node] = leaf
    while node is not None and node is not ancestor:
        node = node.parent
        if node is not None:
            nodes.append(node)
    if node is not ancestor:
        raise ValueError("second node is not an ancestor of the first")
    return AstPath(nodes, [UP] * (len(nodes) - 1))


class NWisePath:
    """An n-wise path: pairwise paths from ``n`` endpoint nodes to a pivot.

    The paper's representation family includes paths with more than two
    ends.  We model an n-wise path as a pivot node together with the
    ordered bundle of paths from each endpoint to the pivot.
    """

    __slots__ = ("pivot", "branches")

    def __init__(self, pivot: Node, endpoints: Sequence[Node]) -> None:
        if len(endpoints) < 2:
            raise ValueError("an n-wise path needs at least two endpoints")
        self.pivot = pivot
        self.branches: Tuple[AstPath, ...] = tuple(
            path_between(e, pivot) for e in endpoints
        )

    @property
    def arity(self) -> int:
        return len(self.branches)

    def endpoints(self) -> Tuple[Node, ...]:
        return tuple(p.start for p in self.branches)

    def encode(self) -> str:
        return " | ".join(p.encode() for p in self.branches)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NWisePath(arity={self.arity}, pivot={self.pivot.kind})"
