"""PIGEON: the cross-language tool of the paper (Sec. 5.1).

A high-level facade over the whole library: parse programs of any
supported language, represent program elements with AST paths, train a
CRF or word2vec model, and predict names (or types) for new programs --
including top-k suggestions.

Typical use::

    from repro import Pigeon

    pigeon = Pigeon(language="javascript")
    pigeon.train(list_of_training_sources)
    predictions = pigeon.predict(test_source)      # binding -> name
    suggestions = pigeon.suggest(test_source, k=5) # binding -> top-k
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.base import parse_source, supported_languages
from ..learning.crf import CrfModel, CrfTrainer, TrainingConfig
from ..learning.crf.inference import map_inference, topk_for_node
from ..learning.word2vec import ContextPredictor, SgnsConfig, train_sgns
from ..tasks.method_naming import build_method_graph
from ..tasks.type_prediction import build_type_graph
from ..tasks.variable_naming import build_crf_graph, element_contexts
from .extraction import ExtractionConfig, PathExtractor

TASKS = ("variable_naming", "method_naming", "type_prediction")
LEARNERS = ("crf", "word2vec")

#: Tuned (max_length, max_width) per language and task (Table 2).
DEFAULT_PARAMS: Dict[Tuple[str, str], Tuple[int, int]] = {
    ("javascript", "variable_naming"): (7, 3),
    ("java", "variable_naming"): (6, 3),
    ("python", "variable_naming"): (7, 4),
    ("csharp", "variable_naming"): (7, 4),
    ("javascript", "method_naming"): (12, 4),
    ("java", "method_naming"): (6, 2),
    ("python", "method_naming"): (10, 6),
    ("java", "type_prediction"): (4, 1),
}


@dataclass
class PigeonStats:
    files_trained: int = 0
    elements_trained: int = 0
    parameters: int = 0
    train_seconds: float = 0.0


class Pigeon:
    """Train-and-predict facade for one (language, task, learner)."""

    def __init__(
        self,
        language: str = "javascript",
        task: str = "variable_naming",
        learner: str = "crf",
        max_length: Optional[int] = None,
        max_width: Optional[int] = None,
        abstraction: str = "full",
        training_config: Optional[TrainingConfig] = None,
        sgns_config: Optional[SgnsConfig] = None,
    ) -> None:
        if language not in supported_languages():
            raise ValueError(
                f"unsupported language {language!r}; supported: {supported_languages()}"
            )
        if task not in TASKS:
            raise ValueError(f"unsupported task {task!r}; supported: {TASKS}")
        if learner not in LEARNERS:
            raise ValueError(f"unsupported learner {learner!r}; supported: {LEARNERS}")
        if task != "variable_naming" and learner == "word2vec":
            raise ValueError("the word2vec learner is wired for variable naming")
        if task == "type_prediction" and language != "java":
            raise ValueError("full-type prediction is implemented for Java")

        self.language = language
        self.task = task
        self.learner = learner
        default_len, default_width = DEFAULT_PARAMS.get(
            (language, task), (7, 3)
        )
        self.extractor = PathExtractor(
            ExtractionConfig(
                max_length=max_length if max_length is not None else default_len,
                max_width=max_width if max_width is not None else default_width,
                abstraction=abstraction,
            )
        )
        self.training_config = training_config or TrainingConfig()
        self.sgns_config = sgns_config or SgnsConfig()
        self.crf_model: Optional[CrfModel] = None
        self.w2v_predictor: Optional[ContextPredictor] = None
        self.stats = PigeonStats()

    # ------------------------------------------------------------------
    def _build_graph(self, source: str, name: str = ""):
        ast = parse_source(self.language, source)
        if self.task == "variable_naming":
            return build_crf_graph(ast, self.extractor, name)
        if self.task == "method_naming":
            return build_method_graph(ast, self.extractor, name)
        return build_type_graph(ast, self.extractor, name)

    # ------------------------------------------------------------------
    def train(self, sources: Sequence[str]) -> PigeonStats:
        """Train from a list of source texts with their original names."""
        if self.learner == "crf":
            graphs = [self._build_graph(src, f"train:{i}") for i, src in enumerate(sources)]
            model, stats = CrfTrainer(self.training_config).train(graphs)
            self.crf_model = model
            self.stats = PigeonStats(
                files_trained=len(sources),
                elements_trained=sum(len(g) for g in graphs),
                parameters=stats.parameters,
                train_seconds=stats.train_seconds,
            )
            return self.stats

        pairs: List[Tuple[str, str]] = []
        elements = 0
        for source in sources:
            ast = parse_source(self.language, source)
            for _binding, (gold, tokens) in element_contexts(ast, self.extractor).items():
                elements += 1
                for token in tokens:
                    pairs.append((gold, token))
        model, stats = train_sgns(pairs, self.sgns_config)
        self.w2v_predictor = ContextPredictor(model)
        self.stats = PigeonStats(
            files_trained=len(sources),
            elements_trained=elements,
            parameters=len(model.words) * model.dim + len(model.contexts) * model.dim,
            train_seconds=stats.train_seconds,
        )
        return self.stats

    # ------------------------------------------------------------------
    def predict(self, source: str) -> Dict[str, str]:
        """element key -> predicted label for one program."""
        self._require_trained()
        if self.learner == "crf":
            graph = self._build_graph(source)
            assignment = map_inference(self.crf_model, graph)
            return {node.key: assignment[i] for i, node in enumerate(graph.unknowns)}
        ast = parse_source(self.language, source)
        out: Dict[str, str] = {}
        for binding, (_gold, tokens) in element_contexts(ast, self.extractor).items():
            prediction = self.w2v_predictor.predict(tokens)
            if prediction is not None:
                out[binding] = prediction
        return out

    def suggest(self, source: str, k: int = 5) -> Dict[str, List[Tuple[str, float]]]:
        """element key -> top-k (label, score) suggestions."""
        self._require_trained()
        if self.learner == "crf":
            graph = self._build_graph(source)
            assignment = map_inference(self.crf_model, graph)
            return {
                node.key: topk_for_node(self.crf_model, graph, i, k=k, assignment=assignment)
                for i, node in enumerate(graph.unknowns)
            }
        ast = parse_source(self.language, source)
        out: Dict[str, List[Tuple[str, float]]] = {}
        for binding, (_gold, tokens) in element_contexts(ast, self.extractor).items():
            out[binding] = self.w2v_predictor.predict_topk(tokens, k=k)
        return out

    def rename(self, source: str) -> str:
        """Predict names and return the renamed program text.

        The paper's deobfuscation workflow (Figs. 7-8): parse the stripped
        program, predict a name for every renameable element, substitute
        the predictions on the tree, and print it back.  Available for the
        languages with a source printer (JavaScript, Python).
        """
        from ..lang.printing import apply_renaming, print_source

        self._require_trained()
        if self.task != "variable_naming":
            raise ValueError("rename() applies to the variable-naming task")
        predictions = self.predict(source)
        ast = parse_source(self.language, source)
        apply_renaming(ast, predictions)
        return print_source(ast)

    def _require_trained(self) -> None:
        if self.learner == "crf" and self.crf_model is None:
            raise RuntimeError("call train() before predict()")
        if self.learner == "word2vec" and self.w2v_predictor is None:
            raise RuntimeError("call train() before predict()")
