"""PIGEON: the cross-language tool of the paper (Sec. 5.1).

.. deprecated:: kept as a thin back-compat shim.  :class:`Pigeon` now
   delegates to :class:`repro.api.Pipeline`, the registry-driven facade
   that also reaches the baseline representations and persists trained
   models; new code should build a :class:`~repro.api.RunSpec` and use
   the pipeline directly.

Typical use::

    from repro import Pigeon

    pigeon = Pigeon(language="javascript")
    pigeon.train(list_of_training_sources)
    predictions = pigeon.predict(test_source)      # binding -> name
    suggestions = pigeon.suggest(test_source, k=5) # binding -> top-k
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import Pipeline, PipelineStats, RunSpec
from ..api.tasks import DEFAULT_PARAMS  # noqa: F401  (re-exported for back-compat)
from ..learning.crf import CrfModel, TrainingConfig
from ..learning.word2vec import ContextPredictor, SgnsConfig

TASKS = ("variable_naming", "method_naming", "type_prediction")
LEARNERS = ("crf", "word2vec")

#: Back-compat alias; training statistics now live on the pipeline.
PigeonStats = PipelineStats


class Pigeon:
    """Train-and-predict facade for one (language, task, learner).

    A shim over :class:`repro.api.Pipeline` pinned to the ``ast-paths``
    representation, preserving the original constructor and the
    ``extractor`` / ``crf_model`` / ``w2v_predictor`` attributes.
    """

    def __init__(
        self,
        language: str = "javascript",
        task: str = "variable_naming",
        learner: str = "crf",
        max_length: Optional[int] = None,
        max_width: Optional[int] = None,
        abstraction: str = "full",
        training_config: Optional[TrainingConfig] = None,
        sgns_config: Optional[SgnsConfig] = None,
    ) -> None:
        extraction: Dict[str, object] = {"abstraction": abstraction}
        if max_length is not None:
            extraction["max_length"] = max_length
        if max_width is not None:
            extraction["max_width"] = max_width
        spec = RunSpec(
            language=language,
            task=task,
            representation="ast-paths",
            learner=learner,
            extraction=extraction,
            training=asdict(training_config) if training_config is not None else {},
            sgns=asdict(sgns_config) if sgns_config is not None else {},
        )
        self.pipeline = Pipeline(spec)
        self.language = language
        self.task = task
        self.learner = learner
        self.training_config = training_config or TrainingConfig()
        self.sgns_config = sgns_config or SgnsConfig()

    # ------------------------------------------------------------------
    # Back-compat attribute surface
    # ------------------------------------------------------------------
    @property
    def extractor(self):
        return self.pipeline.representation.extractor

    @extractor.setter
    def extractor(self, value) -> None:
        self.pipeline.representation.extractor = value

    @property
    def stats(self) -> PipelineStats:
        return self.pipeline.stats

    @stats.setter
    def stats(self, value: PipelineStats) -> None:
        self.pipeline.stats = value

    @property
    def crf_model(self) -> Optional[CrfModel]:
        return getattr(self.pipeline.learner, "model", None)

    @crf_model.setter
    def crf_model(self, value: Optional[CrfModel]) -> None:
        self.pipeline.learner.model = value

    @property
    def w2v_predictor(self) -> Optional[ContextPredictor]:
        return getattr(self.pipeline.learner, "predictor", None)

    @w2v_predictor.setter
    def w2v_predictor(self, value: Optional[ContextPredictor]) -> None:
        self.pipeline.learner.predictor = value

    # ------------------------------------------------------------------
    def train(self, sources: Sequence[str]) -> PipelineStats:
        """Train from a list of source texts with their original names."""
        return self.pipeline.train(sources)

    def predict(self, source: str) -> Dict[str, str]:
        """element key -> predicted label for one program."""
        return self.pipeline.predict(source)

    def suggest(self, source: str, k: int = 5) -> Dict[str, List[Tuple[str, float]]]:
        """element key -> top-k (label, score) suggestions."""
        return self.pipeline.suggest(source, k=k)

    def rename(self, source: str) -> str:
        """Predict names and return the renamed program text (Figs. 7-8)."""
        return self.pipeline.rename(source)
