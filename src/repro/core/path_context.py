"""Path-contexts (Definition 4.3) and abstract path-contexts (Definition 4.4).

A path-context is the triple ``<xs, p, xf>`` of the values at a path's
endpoints together with the path itself.  An *abstract* path-context
replaces ``p`` with ``alpha(p)`` for an abstraction function ``alpha``
(see :mod:`repro.core.abstractions`).

Learning engines never see :class:`repro.core.ast_model.Node` objects;
they consume hashable :class:`PathContext` triples, which keeps the
representation decoupled from the tree (and from the language frontend
that produced it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from .paths import AstPath


@dataclass(frozen=True)
class PathContext:
    """An abstract path-context ``<xs, alpha(p), xf>``.

    ``start_value`` / ``end_value`` are the terminal values at the path
    endpoints (``val(start(p))`` and ``val(end(p))``).  For paths ending at
    a nonterminal (semi-paths, type targets) the endpoint "value" is the
    nonterminal's kind, which is the natural generalisation used by the
    paper for the full-type task.

    ``path`` is the abstracted path encoding -- a hashable token such as
    ``"SymbolRef↑Assign=↓True"`` for the identity abstraction, or a
    coarser token for the abstractions of Sec. 5.6.
    """

    start_value: str
    path: str
    end_value: str

    def flipped(self) -> "PathContext":
        """The same context read from the other endpoint.

        Only meaningful for abstractions that keep arrows; callers that
        need symmetric treatment should canonicalise instead.
        """
        return PathContext(self.end_value, _flip_encoding(self.path), self.start_value)

    def as_tuple(self) -> Tuple[str, str, str]:
        return (self.start_value, self.path, self.end_value)

    def __str__(self) -> str:
        return f"⟨{self.start_value}, {self.path}, {self.end_value}⟩"


def _flip_encoding(encoded: str) -> str:
    """Reverse an arrow-bearing path encoding."""
    # Tokenise on arrows, keeping them.
    tokens = []
    current = []
    for ch in encoded:
        if ch in ("↑", "↓"):
            tokens.append("".join(current))
            tokens.append(ch)
            current = []
        else:
            current.append(ch)
    tokens.append("".join(current))
    flipped = []
    for tok in reversed(tokens):
        if tok == "↑":
            flipped.append("↓")
        elif tok == "↓":
            flipped.append("↑")
        else:
            flipped.append(tok)
    return "".join(flipped)


def endpoint_value(node) -> str:
    """The value used for a path endpoint in a path-context."""
    if node.is_terminal and node.value is not None:
        return node.value
    return node.kind


def make_path_context(
    path: AstPath,
    abstraction: Optional[Callable[[AstPath], str]] = None,
    start_value: Optional[str] = None,
    end_value: Optional[str] = None,
) -> PathContext:
    """Build a :class:`PathContext` from a concrete path.

    ``abstraction`` defaults to the identity abstraction (full encoding).
    ``start_value`` / ``end_value`` allow callers to override endpoint
    values, e.g. to substitute the placeholder ``"?"`` for the element
    being predicted.
    """
    encoded = path.encode() if abstraction is None else abstraction(path)
    xs = endpoint_value(path.start) if start_value is None else start_value
    xf = endpoint_value(path.end) if end_value is None else end_value
    return PathContext(xs, encoded, xf)
