"""Path-context extraction with the paper's hyper-parameters (Sec. 4.2, 5.5).

:class:`PathExtractor` walks an :class:`repro.core.ast_model.Ast` and
produces :class:`ExtractedPath` records for

* every pair of terminals whose connecting path respects ``max_length``
  and ``max_width`` (leafwise paths), and
* optionally, every (terminal, ancestor) semi-path within ``max_length``.

Leafwise extraction is a **single bottom-up pass**: one post-order
traversal merges per-child leaf lists bucketed by depth, so a pair of
terminals is considered exactly once -- at its lowest common ancestor --
and pairs whose path would exceed ``max_length`` or ``max_width`` are
pruned *before* any path is materialised.  The naive all-pairs algorithm
(quadratic in the number of terminals, with an LCA climb per pair) is
kept as :class:`ReferencePathExtractor`, the oracle the tests and the
extraction benchmark compare against.

Extraction *interns* as it goes: each record carries the integer ids of
its abstract path encoding and endpoint values in the extractor's
:class:`~repro.core.interning.FeatureSpace`, so downstream consumers
(graph builders, learners) can stay on dense ids end-to-end.

It also implements the *downsampling* of Sec. 5.5 / Fig. 11: each
extracted path-context occurrence is kept with probability ``p`` using a
deterministic RNG.  The RNG is re-seeded per AST from the configured
seed and a stable fingerprint of the tree, so the sample drawn for one
tree does not depend on how many other trees were processed first.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .abstractions import ABSTRACTIONS, Abstraction, alpha_id, get_abstraction
from .ast_model import Ast, Node
from .interning import DEFAULT_SPACE, FeatureSpace, OverlayVocab, Vocab
from .path_context import PathContext, endpoint_value, make_path_context
from .paths import DOWN, UP, AstPath, path_between, semi_path


class ExtractedPath:
    """One extracted path occurrence: concrete endpoints + abstract context.

    ``rel_id`` / ``start_value_id`` / ``end_value_id`` are the interned
    ids of the abstract path encoding and the endpoint values in the
    extractor's feature space -- the integer features downstream layers
    key on.  The string-level :attr:`context` triple is *lazy*: it is
    reconstructed from the feature space on first access, so extraction
    never pays for strings nobody reads.
    """

    __slots__ = (
        "start",
        "end",
        "path",
        "rel_id",
        "start_value_id",
        "end_value_id",
        "_context",
        "_space",
    )

    def __init__(
        self,
        start: Node,
        end: Node,
        path: AstPath,
        context: Optional[PathContext] = None,
        rel_id: int = -1,
        start_value_id: int = -1,
        end_value_id: int = -1,
        space: Optional[FeatureSpace] = None,
    ) -> None:
        self.start = start
        self.end = end
        self.path = path
        self.rel_id = rel_id
        self.start_value_id = start_value_id
        self.end_value_id = end_value_id
        self._context = context
        self._space = space

    @property
    def context(self) -> PathContext:
        """The ``<xs, alpha(p), xf>`` triple, decoded from the vocab."""
        if self._context is None:
            space = self._space
            if space is None:
                raise ValueError("ExtractedPath built without context or space")
            self._context = PathContext(
                space.values.value(self.start_value_id),
                space.paths.value(self.rel_id),
                space.values.value(self.end_value_id),
            )
        return self._context

    @property
    def is_semi(self) -> bool:
        """True when one endpoint is an ancestor of the other."""
        return not (self.start.is_terminal and self.end.is_terminal)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExtractedPath({self.context!s})"


@dataclass
class ExtractionConfig:
    """Hyper-parameters controlling extraction.

    ``max_length`` and ``max_width`` are the paper's path limits; tuned
    per language/task by grid search (Table 2 rightmost column).
    ``downsample_p`` is the keep probability of Sec. 5.5 (1.0 keeps all).
    ``abstraction`` is an abstraction name from Fig. 12 or a callable.
    """

    max_length: int = 7
    max_width: int = 3
    include_semi_paths: bool = True
    semi_path_min_length: int = 1
    downsample_p: float = 1.0
    seed: int = 17
    abstraction: Union[str, Abstraction] = "full"
    leaf_filter: Optional[Callable[[Node], bool]] = field(default=None)

    def resolve_abstraction(self) -> Abstraction:
        if callable(self.abstraction):
            return self.abstraction
        return get_abstraction(self.abstraction)

    def validate(self) -> None:
        if self.max_length < 1:
            raise ValueError("max_length must be >= 1")
        if self.max_width < 0:
            raise ValueError("max_width must be >= 0")
        if not (0.0 < self.downsample_p <= 1.0):
            raise ValueError("downsample_p must be in (0, 1]")


def ast_fingerprint(ast: Ast) -> int:
    """A stable 32-bit fingerprint of one tree's terminal sequence.

    Used to derive the per-AST downsampling seed: it depends only on the
    tree's own content (language, leaf kinds and values), never on object
    identity or processing order, so it is reproducible across processes.
    Collisions are harmless here (two colliding trees merely share a
    sample seed) -- anything that needs response *identity* must use
    :func:`ast_digest` instead.
    """
    hasher = zlib.crc32(ast.language.encode("utf-8"))
    for leaf in ast.leaves:
        hasher = zlib.crc32(leaf.kind.encode("utf-8"), hasher)
        if leaf.value is not None:
            hasher = zlib.crc32(leaf.value.encode("utf-8"), hasher)
    return hasher & 0xFFFFFFFF


def ast_digest(ast: Ast) -> str:
    """A structural content digest of one tree (the serving cache key).

    Unlike :func:`ast_fingerprint`, which hashes only the terminal
    sequence into 32 bits, this covers the *full* tree -- every node's
    kind, value and position in the structure -- with a 128-bit digest,
    so two programs share a digest only when their ASTs are identical
    (layout and formatting differences still collapse, because they
    never reach the tree).  ``var x = a + b * c;`` and
    ``var x = (a + b) * c;`` have equal terminal sequences but different
    digests.
    """
    import hashlib

    hasher = hashlib.blake2b(ast.language.encode("utf-8"), digest_size=16)
    # Iterative preorder with explicit close markers: the marker stream
    # reconstructs the tree shape unambiguously, and no recursion limit
    # applies however deep a parsed expression nests.
    stack: List[Tuple[Node, bool]] = [(ast.root, False)]
    while stack:
        node, closing = stack.pop()
        if closing:
            hasher.update(b")")
            continue
        hasher.update(b"(")
        hasher.update(node.kind.encode("utf-8"))
        if node.value is not None:
            hasher.update(b"\x00")
            hasher.update(node.value.encode("utf-8"))
        stack.append((node, True))
        for child in reversed(node.children):
            stack.append((child, False))
    return hasher.hexdigest()


class PathExtractor:
    """Extract path-contexts from ASTs under an :class:`ExtractionConfig`.

    ``space`` is the :class:`~repro.core.interning.FeatureSpace` the
    extractor interns into; it defaults to the process-wide
    :data:`~repro.core.interning.DEFAULT_SPACE` so independently built
    extractors agree on ids.
    """

    def __init__(
        self,
        config: Optional[ExtractionConfig] = None,
        space: Optional[FeatureSpace] = None,
        **overrides,
    ) -> None:
        if config is None:
            config = ExtractionConfig()
        if overrides:
            config = ExtractionConfig(
                **{**config.__dict__, **overrides}  # dataclass shallow merge
            )
        config.validate()
        self.config = config
        self._alpha = config.resolve_abstraction()
        self._rng = random.Random(config.seed)
        self._space = space if space is not None else DEFAULT_SPACE
        # The reversed-relation cache is only sound for the named built-in
        # abstractions, where alpha(reversed(p)) is a function of alpha(p);
        # an arbitrary callable gets no cache and is recomputed per path.
        self._can_cache_flips = (
            isinstance(config.abstraction, str) and config.abstraction in ABSTRACTIONS
        )
        # Each cache is split in two: a *base* half whose entries reference
        # only ids of a frozen base vocabulary (safe to keep across
        # overlay rebinds -- the serving read path), and a *local* half for
        # everything else, discarded whenever the space changes.
        self._flip_cache: Dict[int, int] = {}
        self._base_flip_cache: Dict[int, int] = {}
        # rel-id cache keyed by path *shape* (kind sequence + directions).
        # Sound for the named built-in abstractions, which are functions of
        # the shape alone; arbitrary callables are recomputed per path.
        self._shape_cache: Optional[Dict[tuple, int]] = (
            {} if self._can_cache_flips else None
        )
        self._base_shape_cache: Optional[Dict[tuple, int]] = (
            {} if self._can_cache_flips else None
        )
        self._cache_base_len = self._base_len_of(self._space)
        self._base_shape_hits = 0
        self._base_flip_hits = 0

    # ------------------------------------------------------------------
    # Feature space
    # ------------------------------------------------------------------
    @property
    def space(self) -> FeatureSpace:
        return self._space

    @staticmethod
    def _base_len_of(space: FeatureSpace) -> Optional[int]:
        """Ids below this are resident in a frozen base vocab (None: no base).

        An overlay space's base half is immutable by construction; a
        frozen non-overlay space is its own base.  A mutable space has no
        base -- every cache entry is then "local" and dies on rebind.
        """
        paths = space.paths
        if isinstance(paths, OverlayVocab):
            return len(paths.base)
        if paths.frozen:
            return len(paths)
        return None

    @staticmethod
    def _frozen_base_of(space: FeatureSpace) -> Optional[Vocab]:
        paths = space.paths
        base = paths.base if isinstance(paths, OverlayVocab) else paths
        return base if base.frozen else None

    def bind_space(self, space: FeatureSpace) -> None:
        """Re-target interning (e.g. onto a space restored from disk).

        Rebinding between spaces that share one *frozen* base path vocab
        -- the per-request overlay dance of the serving read path --
        keeps the base halves of the shape/flip caches warm: their
        entries reference only base ids, which mean the same strings
        under every overlay.  Local entries (and everything, on a rebind
        to an unrelated space) are discarded.
        """
        old_base = self._frozen_base_of(self._space)
        self._space = space
        new_base = self._frozen_base_of(space)
        self._cache_base_len = self._base_len_of(space)
        if new_base is not None and new_base is old_base:
            # Same frozen base: promote fully-base-resident local entries
            # (the warm-up path right after freeze()), drop overlay-local
            # ones -- their ids would mean different strings next request.
            base_len = len(new_base)
            for key, rel in self._flip_cache.items():
                if key < base_len and rel < base_len:
                    self._base_flip_cache[key] = rel
            self._flip_cache.clear()
            if self._shape_cache is not None:
                for key, rel in self._shape_cache.items():
                    if rel < base_len:
                        self._base_shape_cache[key] = rel
                self._shape_cache.clear()
        else:
            self._flip_cache.clear()
            self._base_flip_cache.clear()
            if self._shape_cache is not None:
                self._shape_cache.clear()
                self._base_shape_cache.clear()

    def cache_stats(self) -> dict:
        """Shape/flip cache occupancy and base-half hit counters.

        The ``base_*_hits`` counters are the observable behind the
        serving warm-cache guarantee: they keep growing across
        :class:`~repro.api.pipeline.ScoringHandle` requests, while under
        the pre-split behaviour every request started cold.
        """
        return {
            "shape_entries": len(self._shape_cache or ()),
            "base_shape_entries": len(self._base_shape_cache or ()),
            "flip_entries": len(self._flip_cache),
            "base_flip_entries": len(self._base_flip_cache),
            "base_shape_hits": self._base_shape_hits,
            "base_flip_hits": self._base_flip_hits,
        }

    def reversed_rel_id(self, extracted: ExtractedPath) -> int:
        """The interned relation of the same path read from the other end."""
        if self._can_cache_flips:
            cached = self._base_flip_cache.get(extracted.rel_id)
            if cached is not None:
                self._base_flip_hits += 1
                return cached
            cached = self._flip_cache.get(extracted.rel_id)
            if cached is not None:
                return cached
        rel = self._space.paths.intern(self._alpha(extracted.path.reversed()))
        if self._can_cache_flips:
            base_len = self._cache_base_len
            if base_len is not None and extracted.rel_id < base_len and rel < base_len:
                self._base_flip_cache[extracted.rel_id] = rel
            else:
                self._flip_cache[extracted.rel_id] = rel
        return rel

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def extract(self, ast: Ast) -> List[ExtractedPath]:
        """All leafwise (and optionally semi-) paths of one AST."""
        rng = self._rng_for(ast)
        out = list(self.iter_leafwise(ast, _rng=rng))
        if self.config.include_semi_paths:
            out.extend(self.iter_semi_paths(ast, _rng=rng))
        return out

    def iter_leafwise(
        self, ast: Ast, _rng: Optional[random.Random] = None
    ) -> Iterator[ExtractedPath]:
        """Pairwise paths between terminals, filtered by length and width.

        Single-pass bottom-up enumeration: every candidate pair is found
        at its LCA with both path length and width known *before* the
        path is materialised.  Pairs are emitted in the leaf order of the
        naive all-pairs loop (``(i, j)`` lexicographic), so downsampling
        draws the same RNG stream and keeps the same subset.
        """
        rng = _rng if _rng is not None else self._rng_for(ast)
        pairs = self._leafwise_pairs(ast)
        pairs.sort(key=lambda pair: (pair[0]._leaf_index, pair[1]._leaf_index))
        for a, b, up_steps, down_steps in pairs:
            if not self._keep(rng):
                continue
            path = _materialise(a, b, up_steps, down_steps)
            yield self._record(a, b, path)

    def iter_semi_paths(
        self, ast: Ast, _rng: Optional[random.Random] = None
    ) -> Iterator[ExtractedPath]:
        """Semi-paths from each terminal to its ancestors within max_length."""
        cfg = self.config
        rng = _rng if _rng is not None else self._rng_for(ast)
        leaves = ast.leaves
        if cfg.leaf_filter is not None:
            leaves = [l for l in leaves if cfg.leaf_filter(l)]
        for leaf in leaves:
            nodes: List[Node] = [leaf]
            node = leaf.parent
            while node is not None and len(nodes) - 1 < cfg.max_length:
                nodes.append(node)
                length = len(nodes) - 1
                if length >= cfg.semi_path_min_length:
                    if self._keep(rng):
                        path = semi_path(leaf, node)
                        yield self._record(leaf, node, path)
                node = node.parent

    def paths_from(
        self,
        sources: Sequence[Node],
        targets: Iterable[Node],
        enforce_limits: bool = True,
    ) -> List[ExtractedPath]:
        """Paths from each source node to each target node.

        Used by the tasks to connect the occurrences of a program element
        to its surrounding terminals (pairwise factors) and to each other
        (unary factors).  ``enforce_limits`` applies max_length/max_width.

        Unlike :meth:`extract`, this method has no AST-level identity to
        re-seed from, so downsampling (when enabled) draws from the
        extractor-lifetime RNG.
        """
        cfg = self.config
        out: List[ExtractedPath] = []
        target_list = list(targets)
        for src in sources:
            for dst in target_list:
                if src is dst:
                    continue
                path = path_between(src, dst)
                if enforce_limits:
                    if path.length > cfg.max_length or path.width > cfg.max_width:
                        continue
                if not self._keep(self._rng):
                    continue
                out.append(self._record(src, dst, path))
        return out

    def context_for(
        self,
        path: AstPath,
        start_value: Optional[str] = None,
        end_value: Optional[str] = None,
    ) -> PathContext:
        """Abstract a single concrete path into a context triple."""
        return make_path_context(path, self._alpha, start_value, end_value)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _record(self, start: Node, end: Node, path: AstPath) -> ExtractedPath:
        """Intern one path into an id-bearing record (context stays lazy)."""
        space = self._space
        shape_cache = self._shape_cache
        if shape_cache is not None:
            key = (tuple(n.kind for n in path.nodes), path.directions)
            rel_id = self._base_shape_cache.get(key)  # type: ignore[union-attr]
            if rel_id is not None:
                self._base_shape_hits += 1
            else:
                rel_id = shape_cache.get(key)
            if rel_id is None:
                rel_id = space.paths.intern(self._alpha(path))
                base_len = self._cache_base_len
                if base_len is not None and rel_id < base_len:
                    self._base_shape_cache[key] = rel_id  # type: ignore[index]
                else:
                    shape_cache[key] = rel_id
        else:
            rel_id = space.paths.intern(self._alpha(path))
        return ExtractedPath(
            start,
            end,
            path,
            rel_id=rel_id,
            start_value_id=space.values.intern(endpoint_value(start)),
            end_value_id=space.values.intern(endpoint_value(end)),
            space=space,
        )

    def _leafwise_pairs(self, ast: Ast) -> List[Tuple[Node, Node, int, int]]:
        """All (a, b, up_steps, down_steps) admissible leaf pairs.

        One post-order pass.  Each node receives, from each child, the
        list of that subtree's terminals bucketed by depth; a bucket
        deeper than ``max_length - 1`` can never satisfy the length limit
        through this node or any ancestor and is dropped before it is
        carried upward.  Pairs are formed only across children whose
        position distance respects ``max_width`` (the path's width *is*
        that distance) and only for depth combinations whose total
        respects ``max_length`` (the path's length *is* that total).
        """
        cfg = self.config
        max_length = cfg.max_length
        max_width = cfg.max_width
        keep_leaf = cfg.leaf_filter
        max_depth = max_length - 1  # deepest useful bucket below any node

        out: List[Tuple[Node, Node, int, int]] = []
        if max_width < 1:
            return out  # a leafwise path's width is >= 1 by construction

        # Children-before-parents order without recursion.
        order: List[Node] = []
        stack = [ast.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(node.children)
        order.reverse()

        # id(node) -> buckets; buckets[d] = subtree terminals at depth d.
        buckets_of: Dict[int, List[List[Node]]] = {}
        for node in order:
            children = node.children
            if not children:
                kept = keep_leaf is None or keep_leaf(node)
                buckets_of[id(node)] = [[node]] if kept else [[]]
                continue

            # Lift each child's buckets by one level, pruning at max_depth.
            lifted: List[List[List[Node]]] = []
            for child in children:
                child_buckets = buckets_of.pop(id(child))
                lifted.append([[]] + child_buckets[:max_depth])

            # Pair leaves across child subtrees; this node is the LCA.
            for i in range(len(lifted)):
                left = lifted[i]
                for j in range(i + 1, min(i + max_width, len(lifted) - 1) + 1):
                    right = lifted[j]
                    for depth_a in range(1, len(left)):
                        bucket_a = left[depth_a]
                        if not bucket_a:
                            continue
                        for depth_b in range(1, min(max_length - depth_a, len(right) - 1) + 1):
                            bucket_b = right[depth_b]
                            if not bucket_b:
                                continue
                            for a in bucket_a:
                                for b in bucket_b:
                                    out.append((a, b, depth_a, depth_b))

            # Merge the lifted buckets for this node's parent.
            depth_count = max(len(l) for l in lifted)
            merged: List[List[Node]] = [[] for _ in range(depth_count)]
            for lifted_child in lifted:
                for depth, bucket in enumerate(lifted_child):
                    if bucket:
                        merged[depth].extend(bucket)
            buckets_of[id(node)] = merged
        return out

    def _rng_for(self, ast: Ast) -> random.Random:
        """A fresh RNG for one AST, independent of processing order.

        When downsampling is off this returns the shared RNG (it is never
        consulted), skipping the fingerprint walk on the hot path.
        """
        if self.config.downsample_p >= 1.0:
            return self._rng
        return random.Random(self.config.seed ^ ast_fingerprint(ast))

    def _context(self, path: AstPath) -> PathContext:
        return make_path_context(path, self._alpha)

    def _keep(self, rng: random.Random) -> bool:
        p = self.config.downsample_p
        if p >= 1.0:
            return True
        return rng.random() < p


class ReferencePathExtractor(PathExtractor):
    """The naive all-pairs extractor, kept as the correctness oracle.

    This is the original quadratic algorithm: enumerate every terminal
    pair, climb to the LCA, filter by length and width afterwards, and
    materialise the full string context eagerly per path.  The
    single-pass engine must produce exactly this path set (same order,
    same interned ids); the property tests and
    ``benchmarks/bench_extraction.py`` hold it to that (and to being
    faster).
    """

    def _record(self, start: Node, end: Node, path: AstPath) -> ExtractedPath:
        context = make_path_context(path, self._alpha)
        space = self._space
        return ExtractedPath(
            start,
            end,
            path,
            context,
            rel_id=space.paths.intern(context.path),
            start_value_id=space.values.intern(context.start_value),
            end_value_id=space.values.intern(context.end_value),
            space=space,
        )

    def iter_leafwise(
        self, ast: Ast, _rng: Optional[random.Random] = None
    ) -> Iterator[ExtractedPath]:
        cfg = self.config
        rng = _rng if _rng is not None else self._rng_for(ast)
        leaves = ast.leaves
        if cfg.leaf_filter is not None:
            leaves = [l for l in leaves if cfg.leaf_filter(l)]
        depths = {id(n): n.depth() for n in ast.root.walk()}
        for i in range(len(leaves)):
            a = leaves[i]
            for j in range(i + 1, len(leaves)):
                b = leaves[j]
                # Cheap length pre-check via the LCA depth bound: the true
                # path length is depth(a)+depth(b)-2*depth(lca) and the lca
                # is no deeper than min(depth(a), depth(b)).
                min_possible = abs(depths[id(a)] - depths[id(b)])
                if min_possible > cfg.max_length:
                    continue
                path = path_between(a, b)
                if path.length > cfg.max_length:
                    continue
                if path.width > cfg.max_width:
                    continue
                if not self._keep(rng):
                    continue
                yield self._record(a, b, path)


def _materialise(a: Node, b: Node, up_steps: int, down_steps: int) -> AstPath:
    """Build the concrete up-then-down path from pre-computed step counts."""
    nodes: List[Node] = [a]
    node = a
    for _ in range(up_steps):
        node = node.parent  # type: ignore[assignment]
        nodes.append(node)
    tail: List[Node] = [b]
    node = b
    for _ in range(down_steps - 1):
        node = node.parent  # type: ignore[assignment]
        tail.append(node)
    nodes.extend(reversed(tail))
    return AstPath(nodes, [UP] * up_steps + [DOWN] * down_steps)


def extract_path_contexts(
    ast: Ast,
    max_length: int = 7,
    max_width: int = 3,
    abstraction: Union[str, Abstraction] = "full",
    include_semi_paths: bool = False,
) -> List[PathContext]:
    """Convenience one-shot extraction returning bare context triples.

    This is the function used by the quickstart example to reproduce the
    paths of the paper's Fig. 2.
    """
    extractor = PathExtractor(
        ExtractionConfig(
            max_length=max_length,
            max_width=max_width,
            abstraction=abstraction,
            include_semi_paths=include_semi_paths,
        )
    )
    return [e.context for e in extractor.extract(ast)]


def leaf_value_of(node: Node) -> str:
    """Endpoint value helper re-exported for tasks."""
    return endpoint_value(node)
