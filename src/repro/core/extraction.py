"""Path-context extraction with the paper's hyper-parameters (Sec. 4.2, 5.5).

:class:`PathExtractor` walks an :class:`repro.core.ast_model.Ast` and
produces :class:`ExtractedPath` records for

* every pair of terminals whose connecting path respects ``max_length``
  and ``max_width`` (leafwise paths), and
* optionally, every (terminal, ancestor) semi-path within ``max_length``.

It also implements the *downsampling* of Sec. 5.5 / Fig. 11: each
extracted path-context occurrence is kept with probability ``p`` using a
deterministic, seeded RNG so experiments are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Union

from .abstractions import Abstraction, alpha_id, get_abstraction
from .ast_model import Ast, Node
from .path_context import PathContext, endpoint_value, make_path_context
from .paths import AstPath, path_between, semi_path


@dataclass(frozen=True)
class ExtractedPath:
    """One extracted path occurrence: concrete endpoints + abstract context."""

    start: Node
    end: Node
    path: AstPath
    context: PathContext

    @property
    def is_semi(self) -> bool:
        """True when one endpoint is an ancestor of the other."""
        return not (self.start.is_terminal and self.end.is_terminal)


@dataclass
class ExtractionConfig:
    """Hyper-parameters controlling extraction.

    ``max_length`` and ``max_width`` are the paper's path limits; tuned
    per language/task by grid search (Table 2 rightmost column).
    ``downsample_p`` is the keep probability of Sec. 5.5 (1.0 keeps all).
    ``abstraction`` is an abstraction name from Fig. 12 or a callable.
    """

    max_length: int = 7
    max_width: int = 3
    include_semi_paths: bool = True
    semi_path_min_length: int = 1
    downsample_p: float = 1.0
    seed: int = 17
    abstraction: Union[str, Abstraction] = "full"
    leaf_filter: Optional[Callable[[Node], bool]] = field(default=None)

    def resolve_abstraction(self) -> Abstraction:
        if callable(self.abstraction):
            return self.abstraction
        return get_abstraction(self.abstraction)

    def validate(self) -> None:
        if self.max_length < 1:
            raise ValueError("max_length must be >= 1")
        if self.max_width < 0:
            raise ValueError("max_width must be >= 0")
        if not (0.0 < self.downsample_p <= 1.0):
            raise ValueError("downsample_p must be in (0, 1]")


class PathExtractor:
    """Extract path-contexts from ASTs under an :class:`ExtractionConfig`."""

    def __init__(self, config: Optional[ExtractionConfig] = None, **overrides) -> None:
        if config is None:
            config = ExtractionConfig()
        if overrides:
            config = ExtractionConfig(
                **{**config.__dict__, **overrides}  # dataclass shallow merge
            )
        config.validate()
        self.config = config
        self._alpha = config.resolve_abstraction()
        self._rng = random.Random(config.seed)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def extract(self, ast: Ast) -> List[ExtractedPath]:
        """All leafwise (and optionally semi-) paths of one AST."""
        out = list(self.iter_leafwise(ast))
        if self.config.include_semi_paths:
            out.extend(self.iter_semi_paths(ast))
        return out

    def iter_leafwise(self, ast: Ast) -> Iterator[ExtractedPath]:
        """Pairwise paths between terminals, filtered by length and width."""
        cfg = self.config
        leaves = ast.leaves
        if cfg.leaf_filter is not None:
            leaves = [l for l in leaves if cfg.leaf_filter(l)]
        depths = {id(n): n.depth() for n in ast.root.walk()}
        for i in range(len(leaves)):
            a = leaves[i]
            for j in range(i + 1, len(leaves)):
                b = leaves[j]
                # Cheap length pre-check via the LCA depth bound: the true
                # path length is depth(a)+depth(b)-2*depth(lca) and the lca
                # is no deeper than min(depth(a), depth(b)).
                min_possible = abs(depths[id(a)] - depths[id(b)])
                if min_possible > cfg.max_length:
                    continue
                path = path_between(a, b)
                if path.length > cfg.max_length:
                    continue
                if path.width > cfg.max_width:
                    continue
                if not self._keep():
                    continue
                yield ExtractedPath(a, b, path, self._context(path))

    def iter_semi_paths(self, ast: Ast) -> Iterator[ExtractedPath]:
        """Semi-paths from each terminal to its ancestors within max_length."""
        cfg = self.config
        leaves = ast.leaves
        if cfg.leaf_filter is not None:
            leaves = [l for l in leaves if cfg.leaf_filter(l)]
        for leaf in leaves:
            nodes: List[Node] = [leaf]
            node = leaf.parent
            while node is not None and len(nodes) - 1 < cfg.max_length:
                nodes.append(node)
                length = len(nodes) - 1
                if length >= cfg.semi_path_min_length:
                    if self._keep():
                        path = semi_path(leaf, node)
                        yield ExtractedPath(leaf, node, path, self._context(path))
                node = node.parent

    def paths_from(
        self,
        sources: Sequence[Node],
        targets: Iterable[Node],
        enforce_limits: bool = True,
    ) -> List[ExtractedPath]:
        """Paths from each source node to each target node.

        Used by the tasks to connect the occurrences of a program element
        to its surrounding terminals (pairwise factors) and to each other
        (unary factors).  ``enforce_limits`` applies max_length/max_width.
        """
        cfg = self.config
        out: List[ExtractedPath] = []
        target_list = list(targets)
        for src in sources:
            for dst in target_list:
                if src is dst:
                    continue
                path = path_between(src, dst)
                if enforce_limits:
                    if path.length > cfg.max_length or path.width > cfg.max_width:
                        continue
                if not self._keep():
                    continue
                out.append(ExtractedPath(src, dst, path, self._context(path)))
        return out

    def context_for(
        self,
        path: AstPath,
        start_value: Optional[str] = None,
        end_value: Optional[str] = None,
    ) -> PathContext:
        """Abstract a single concrete path into a context triple."""
        return make_path_context(path, self._alpha, start_value, end_value)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _context(self, path: AstPath) -> PathContext:
        return make_path_context(path, self._alpha)

    def _keep(self) -> bool:
        p = self.config.downsample_p
        if p >= 1.0:
            return True
        return self._rng.random() < p


def extract_path_contexts(
    ast: Ast,
    max_length: int = 7,
    max_width: int = 3,
    abstraction: Union[str, Abstraction] = "full",
    include_semi_paths: bool = False,
) -> List[PathContext]:
    """Convenience one-shot extraction returning bare context triples.

    This is the function used by the quickstart example to reproduce the
    paths of the paper's Fig. 2.
    """
    extractor = PathExtractor(
        ExtractionConfig(
            max_length=max_length,
            max_width=max_width,
            abstraction=abstraction,
            include_semi_paths=include_semi_paths,
        )
    )
    return [e.context for e in extractor.extract(ast)]


def leaf_value_of(node: Node) -> str:
    """Endpoint value helper re-exported for tasks."""
    return endpoint_value(node)
