"""Corpus-level extraction: memoization, a shared vocab, optional fan-out.

:class:`ExtractionService` wraps a :class:`~repro.core.extraction.PathExtractor`
with the three things every corpus-scale caller needs:

* **per-AST memoization** -- a program whose graph view and contexts view
  are both built (or that appears in several sweeps) is extracted once;
* **a shared feature space** -- every AST that flows through one service
  interns into the same vocabularies, so ids are corpus-consistent;
* **batched / parallel source extraction** -- :meth:`index_sources`
  parses and extracts many source texts, optionally fanning out over a
  ``multiprocessing`` pool.  Workers return plain string triples (node
  objects never cross process boundaries); the parent interns them into
  the shared space, so the resulting ids are identical to a sequential
  run.

The service duck-types as an extractor (``extract`` / ``paths_from`` /
``context_for`` / ``reversed_rel_id`` / ``config`` / ``space``), so task
graph builders accept either.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .ast_model import Ast
from .extraction import ExtractedPath, ExtractionConfig, PathExtractor
from .interning import FeatureSpace


@dataclass
class ExtractionStats:
    """Aggregate counters for one service (monotonic over its lifetime)."""

    asts: int = 0
    cache_hits: int = 0
    paths: int = 0
    nodes: int = 0
    seconds: float = 0.0

    @property
    def nodes_per_second(self) -> float:
        return self.nodes / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-ready counters (what the serving ``/stats`` route reports)."""
        return {
            "asts": self.asts,
            "cache_hits": self.cache_hits,
            "paths": self.paths,
            "nodes": self.nodes,
            "seconds": round(self.seconds, 4),
            "nodes_per_second": round(self.nodes_per_second, 1),
        }


@dataclass
class CorpusExtraction:
    """Result of :meth:`ExtractionService.index_sources` over one corpus."""

    files: int = 0
    paths: int = 0
    nodes: int = 0
    seconds: float = 0.0
    workers: int = 1
    #: interned (start_value_id, rel_id, end_value_id) triples per file.
    contexts: List[List[Tuple[int, int, int]]] = field(default_factory=list)
    space: Optional[FeatureSpace] = None

    @property
    def nodes_per_second(self) -> float:
        return self.nodes / self.seconds if self.seconds > 0 else 0.0

    def summary(self) -> dict:
        """JSON-ready stats (what ``pigeon extract`` prints)."""
        return {
            "files": self.files,
            "paths": self.paths,
            "nodes": self.nodes,
            "seconds": round(self.seconds, 4),
            "nodes_per_second": round(self.nodes_per_second, 1),
            "workers": self.workers,
            "unique_paths": len(self.space.paths) if self.space else 0,
            "unique_values": len(self.space.values) if self.space else 0,
        }


class ExtractionService:
    """Batched, memoized extraction over many ASTs with one shared vocab."""

    def __init__(
        self,
        extractor: Optional[PathExtractor] = None,
        config: Optional[ExtractionConfig] = None,
        space: Optional[FeatureSpace] = None,
        workers: int = 1,
    ) -> None:
        if extractor is None:
            # One *private* vocab per service by default: corpus stats
            # (unique paths/values) describe this corpus alone instead of
            # accumulating into the process-wide space.
            extractor = PathExtractor(
                config or ExtractionConfig(),
                space=space if space is not None else FeatureSpace(),
            )
        elif config is not None:
            raise ValueError("pass either an extractor or a config, not both")
        elif space is not None:
            extractor.bind_space(space)
        self.extractor = extractor
        self.workers = max(1, int(workers))
        self.stats = ExtractionStats()
        self._memo: "weakref.WeakKeyDictionary[Ast, List[ExtractedPath]]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    # Extractor facade
    # ------------------------------------------------------------------
    @property
    def config(self) -> ExtractionConfig:
        return self.extractor.config

    @property
    def space(self) -> FeatureSpace:
        return self.extractor.space

    def bind_space(self, space: FeatureSpace) -> None:
        """Re-target the shared vocab (drops memoized id-bearing records)."""
        self.extractor.bind_space(space)
        self._memo.clear()

    def memo_stats(self) -> dict:
        """Lifetime counters plus the live memo size.

        The serving layer shares this snapshot through ``/stats``: a
        response-cache hit never reaches the service, so ``asts`` staying
        flat across duplicate requests is the observable proof that
        cached responses skip extraction entirely.
        """
        return dict(self.stats.to_dict(), memoized_asts=len(self._memo))

    def context_for(self, path, start_value=None, end_value=None):
        return self.extractor.context_for(path, start_value, end_value)

    def paths_from(self, sources, targets, enforce_limits: bool = True):
        return self.extractor.paths_from(sources, targets, enforce_limits)

    def reversed_rel_id(self, extracted: ExtractedPath) -> int:
        return self.extractor.reversed_rel_id(extracted)

    def iter_leafwise(self, ast: Ast):
        return self.extractor.iter_leafwise(ast)

    def iter_semi_paths(self, ast: Ast):
        return self.extractor.iter_semi_paths(ast)

    # ------------------------------------------------------------------
    # Memoized extraction
    # ------------------------------------------------------------------
    def extract(self, ast: Ast) -> List[ExtractedPath]:
        """One AST's full path set, cached for the AST's lifetime."""
        cached = self._memo.get(ast)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        started = time.perf_counter()
        extracted = self.extractor.extract(ast)
        self.stats.seconds += time.perf_counter() - started
        self.stats.asts += 1
        self.stats.paths += len(extracted)
        self.stats.nodes += ast.size()
        self._memo[ast] = extracted
        return extracted

    def extract_many(self, asts: Iterable[Ast]) -> List[List[ExtractedPath]]:
        """Extraction for a batch of ASTs (memoized, shared vocab)."""
        return [self.extract(ast) for ast in asts]

    # ------------------------------------------------------------------
    # Corpus-level source extraction (optionally parallel)
    # ------------------------------------------------------------------
    def index_sources(
        self,
        sources: Sequence[str],
        language: str,
        workers: Optional[int] = None,
    ) -> CorpusExtraction:
        """Parse + extract many source texts into interned context triples.

        With ``workers > 1`` (and a picklable configuration) the parse and
        extraction fan out over a process pool; interning always happens
        in the parent, so ids are identical to a sequential run.  Any
        failure to set up the pool falls back to sequential extraction.
        """
        n_workers = self.workers if workers is None else max(1, int(workers))
        started = time.perf_counter()
        per_file = None
        if n_workers > 1 and _config_is_picklable(self.extractor.config):
            per_file = self._map_parallel(sources, language, n_workers)

        result = CorpusExtraction(workers=n_workers, space=self.space)
        if per_file is not None:
            # Parallel: workers shipped string triples; intern them here
            # so ids are assigned in the same first-seen order as a
            # sequential run.
            values = self.space.values
            paths = self.space.paths
            for triples, node_count in per_file:
                interned = [
                    (values.intern(start), paths.intern(rel), values.intern(end))
                    for start, rel, end in triples
                ]
                result.contexts.append(interned)
                result.files += 1
                result.paths += len(interned)
                result.nodes += node_count
            # Lifetime counters stay mode-independent.
            self.stats.asts += result.files
            self.stats.paths += result.paths
            self.stats.nodes += result.nodes
            self.stats.seconds += time.perf_counter() - started
        else:
            # Sequential: go through our own extractor -- ids come out
            # already interned (shared shape/flip caches, stats updated),
            # with no string materialisation at all.
            from ..lang.base import parse_source  # local import: avoid a cycle

            result.workers = 1
            for source in sources:
                ast = parse_source(language, source)
                extracted = self.extract(ast)
                result.contexts.append(
                    [(e.start_value_id, e.rel_id, e.end_value_id) for e in extracted]
                )
                result.files += 1
                result.paths += len(extracted)
                result.nodes += ast.size()
        result.seconds = time.perf_counter() - started
        return result

    def index_to_shards(
        self,
        sources: Sequence[str],
        language: str,
        out_dir: str,
        shard_size: int = 32,
        workers: Optional[int] = None,
        partition: Optional[Tuple[int, int]] = None,
        resume: bool = False,
    ):
        """Persist a corpus's extraction output as on-disk shards.

        The multi-machine sibling of :meth:`index_sources`: instead of
        interning everything into this service's space, the corpus is
        cut into ``shard_size``-file slices and each slice is extracted
        against its own shard-local vocab and written as one shard file
        (``workers > 1`` builds shards on a process pool; nothing
        corpus-sized crosses a process boundary).  Merge the shards back
        into one global space with
        :func:`repro.shards.merge_shards` -- the result is id-identical
        to what :meth:`index_sources` would have built in this process.

        Returns a :class:`repro.shards.ShardBuildResult`.
        """
        from ..shards.build import build_triples_shards  # local: avoid a cycle

        n_workers = self.workers if workers is None else max(1, int(workers))
        if not _config_is_picklable(self.extractor.config):
            n_workers = 1  # callables cannot ship to a pool; build inline
        return build_triples_shards(
            sources,
            language,
            self.extractor.config,
            out_dir,
            shard_size=shard_size,
            workers=n_workers,
            partition=partition,
            resume=resume,
        )

    def _map_parallel(
        self, sources: Sequence[str], language: str, n_workers: int
    ) -> Optional[List[Tuple[List[Tuple[str, str, str]], int]]]:
        try:
            import multiprocessing

            context = multiprocessing.get_context()
            with context.Pool(
                processes=n_workers,
                initializer=_init_worker,
                initargs=(language, self.extractor.config),
            ) as pool:
                return pool.map(_extract_in_worker, sources)
        except Exception:
            return None  # pool unavailable (sandbox, pickling, ...) -> sequential


def _config_is_picklable(config: ExtractionConfig) -> bool:
    """Workers rebuild the extractor from its config; callables may not ship."""
    return isinstance(config.abstraction, str) and config.leaf_filter is None


#: Per-worker state: (language, extractor), built once per process.
_WORKER: Dict[str, object] = {}


def _init_worker(language: str, config: ExtractionConfig) -> None:
    _WORKER["language"] = language
    _WORKER["extractor"] = PathExtractor(config, space=FeatureSpace())


def _extract_in_worker(source: str) -> Tuple[List[Tuple[str, str, str]], int]:
    """Parse one source text and return its context triples as strings."""
    from ..lang.base import parse_source  # local import: avoid a cycle

    extractor: PathExtractor = _WORKER["extractor"]  # type: ignore[assignment]
    ast = parse_source(_WORKER["language"], source)  # type: ignore[arg-type]
    triples = [
        (e.context.start_value, e.context.path, e.context.end_value)
        for e in extractor.extract(ast)
    ]
    return triples, ast.size()
