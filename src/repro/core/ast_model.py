"""Generic abstract syntax tree model.

This module implements Definition 4.1 of the paper: an AST is a tuple
``<N, T, X, s, delta, val>`` where ``N`` is a set of nonterminal nodes,
``T`` a set of terminal nodes, ``X`` a set of terminal values, ``s`` the
root, ``delta`` maps a nonterminal to the ordered list of its children and
``val`` maps a terminal to its value.

Every language frontend in :mod:`repro.lang` produces trees made of
:class:`Node`.  The representation machinery in :mod:`repro.core.paths`
consumes them.  Nodes carry:

* ``kind`` -- the grammar symbol name (``While``, ``SymbolRef``, ...).  For
  operator-bearing nodes the frontends append the operator so that, e.g.,
  an assignment shows as ``Assign=`` and a logical negation as
  ``UnaryPrefix!`` exactly like the paper's UglifyJS examples.
* ``value`` -- the terminal value (identifier text, literal text) or
  ``None`` for nonterminals.
* ``children`` -- ordered child list (``delta``).
* ``parent`` -- the inverse map ``pi`` (``None`` for the root).
* ``meta`` -- a free-form dict frontends use to attach task information
  (e.g. ``{"id_kind": "local"}`` for identifiers that are renameable, or
  ``{"type": "java.lang.String"}`` for typed expressions).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence


class Node:
    """A single AST node (terminal or nonterminal)."""

    __slots__ = ("kind", "value", "children", "parent", "meta", "_leaf_index")

    def __init__(
        self,
        kind: str,
        value: Optional[str] = None,
        children: Optional[Sequence["Node"]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.kind = kind
        self.value = value
        self.children: List[Node] = []
        self.parent: Optional[Node] = None
        self.meta: Dict[str, Any] = meta if meta is not None else {}
        self._leaf_index: Optional[int] = None
        for child in children or ():
            self.add_child(child)

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def add_child(self, child: "Node") -> "Node":
        """Append ``child`` to this node's ordered child list."""
        if child.parent is not None:
            raise ValueError(
                f"node {child!r} already has a parent; every node appears "
                f"exactly once in all children lists (Def. 4.1)"
            )
        child.parent = self
        self.children.append(child)
        return child

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def is_terminal(self) -> bool:
        """Terminals are the nodes with no children (the set ``T``)."""
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def child_index(self) -> int:
        """Position of this node in its parent's child list.

        Used by the width computation of Sec. 4.2.  Raises ``ValueError``
        for the root, whose parent is undefined.
        """
        if self.parent is None:
            raise ValueError("the root node has no parent (Def. 4.1)")
        for i, sibling in enumerate(self.parent.children):
            if sibling is self:
                return i
        raise AssertionError("node missing from its parent's child list")

    def ancestors(self, include_self: bool = False) -> Iterator["Node"]:
        """Yield ancestors from the parent (or self) up to the root."""
        node = self if include_self else self.parent
        while node is not None:
            yield node
            node = node.parent

    def depth(self) -> int:
        """Number of edges from this node to the root."""
        return sum(1 for _ in self.ancestors())

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of the subtree rooted at this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def leaves(self) -> Iterator["Node"]:
        """Terminals of this subtree in left-to-right source order."""
        for node in self.walk():
            if node.is_terminal:
                yield node

    def nonterminals(self) -> Iterator["Node"]:
        for node in self.walk():
            if not node.is_terminal:
                yield node

    def find(self, kind: str) -> Iterator["Node"]:
        """All nodes of the given kind in pre-order."""
        for node in self.walk():
            if node.kind == kind:
                yield node

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def label(self) -> str:
        """Human-readable node label: kind, plus value for terminals."""
        if self.value is not None:
            return f"{self.kind}({self.value})"
        return self.kind

    def pretty(self, indent: str = "  ") -> str:
        """Render the subtree as an indented outline (for docs/debugging)."""
        lines: List[str] = []

        def rec(node: Node, depth: int) -> None:
            lines.append(f"{indent * depth}{node.label()}")
            for child in node.children:
                rec(child, depth + 1)

        rec(self, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.label()!r}, {len(self.children)} children)"


class Ast:
    """A complete AST: the tuple of Def. 4.1 plus cached leaf ordering.

    The class wraps a root :class:`Node` and precomputes the left-to-right
    index of every terminal, which the extractor uses to enumerate leaf
    pairs and to compute path *width* cheaply.
    """

    def __init__(self, root: Node, language: str = "generic") -> None:
        self.root = root
        self.language = language
        self._leaves: List[Node] = []
        self._index_leaves()

    def _index_leaves(self) -> None:
        self._leaves = list(self.root.leaves())
        for i, leaf in enumerate(self._leaves):
            leaf._leaf_index = i

    # -- Def. 4.1 accessors -------------------------------------------
    @property
    def start(self) -> Node:
        """The root node ``s``."""
        return self.root

    def delta(self, node: Node) -> List[Node]:
        """Children function ``delta``; defined for nonterminals."""
        return list(node.children)

    def pi(self, node: Node) -> Optional[Node]:
        """Parent function ``pi`` (inverse of ``delta``)."""
        return node.parent

    def val(self, node: Node) -> str:
        """Terminal value function ``val``."""
        if not node.is_terminal or node.value is None:
            raise ValueError(f"val is defined only for terminals, got {node!r}")
        return node.value

    # -- Derived data --------------------------------------------------
    @property
    def leaves(self) -> List[Node]:
        return self._leaves

    def leaf_index(self, leaf: Node) -> int:
        if leaf._leaf_index is None:
            raise ValueError("node is not a leaf of this AST")
        return leaf._leaf_index

    def size(self) -> int:
        """Total number of nodes."""
        return sum(1 for _ in self.root.walk())

    def terminals(self) -> List[Node]:
        return list(self._leaves)

    def refresh(self) -> None:
        """Re-index leaves after an in-place tree mutation."""
        self._index_leaves()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ast(language={self.language!r}, nodes={self.size()})"


def lowest_common_ancestor(a: Node, b: Node) -> Node:
    """Lowest common ancestor of two nodes of the same tree."""
    seen = set()
    node: Optional[Node] = a
    while node is not None:
        seen.add(id(node))
        node = node.parent
    node = b
    while node is not None:
        if id(node) in seen:
            return node
        node = node.parent
    raise ValueError("nodes do not belong to the same tree")
