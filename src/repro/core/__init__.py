"""The paper's primary contribution: AST paths and their machinery."""

from .abstractions import ABSTRACTIONS, ABSTRACTION_LADDER, get_abstraction
from .ast_model import Ast, Node, lowest_common_ancestor
from .extraction import (
    ExtractedPath,
    ExtractionConfig,
    PathExtractor,
    ReferencePathExtractor,
    ast_digest,
    ast_fingerprint,
    extract_path_contexts,
)
from .interning import (
    DEFAULT_SPACE,
    ContextVocab,
    FeatureSpace,
    FrozenVocabError,
    OverlayVocab,
    PathVocab,
    Vocab,
)
from .path_context import PathContext, make_path_context
from .paths import DOWN, UP, AstPath, NWisePath, path_between, semi_path
from .pigeon import Pigeon
from .service import CorpusExtraction, ExtractionService, ExtractionStats

__all__ = [
    "ABSTRACTIONS",
    "ABSTRACTION_LADDER",
    "Ast",
    "AstPath",
    "ContextVocab",
    "CorpusExtraction",
    "DEFAULT_SPACE",
    "DOWN",
    "ExtractedPath",
    "ExtractionConfig",
    "ExtractionService",
    "ExtractionStats",
    "FeatureSpace",
    "FrozenVocabError",
    "NWisePath",
    "OverlayVocab",
    "Node",
    "PathContext",
    "PathExtractor",
    "PathVocab",
    "Pigeon",
    "ReferencePathExtractor",
    "UP",
    "Vocab",
    "ast_digest",
    "ast_fingerprint",
    "extract_path_contexts",
    "get_abstraction",
    "lowest_common_ancestor",
    "make_path_context",
    "path_between",
    "semi_path",
]
