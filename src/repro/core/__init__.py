"""The paper's primary contribution: AST paths and their machinery."""

from .abstractions import ABSTRACTIONS, ABSTRACTION_LADDER, get_abstraction
from .ast_model import Ast, Node, lowest_common_ancestor
from .extraction import ExtractedPath, ExtractionConfig, PathExtractor, extract_path_contexts
from .path_context import PathContext, make_path_context
from .paths import DOWN, UP, AstPath, NWisePath, path_between, semi_path
from .pigeon import Pigeon

__all__ = [
    "ABSTRACTIONS",
    "ABSTRACTION_LADDER",
    "Ast",
    "AstPath",
    "DOWN",
    "ExtractedPath",
    "ExtractionConfig",
    "NWisePath",
    "Node",
    "PathContext",
    "PathExtractor",
    "Pigeon",
    "UP",
    "extract_path_contexts",
    "get_abstraction",
    "lowest_common_ancestor",
    "make_path_context",
    "path_between",
    "semi_path",
]
