"""Interned feature vocabularies: strings become dense integer ids.

Every downstream consumer of a path-context -- CRF factor keys, the
candidate index, word2vec context tokens, corpus statistics -- used to
re-materialise the same encoded path strings over and over.  This module
introduces the interning layer: encoded paths and endpoint values are
mapped to small integers *once, at extraction time*, and those ids flow
end-to-end through graphs, models and serialized state.

Three pieces:

:class:`Vocab`
    an append-only bidirectional ``str <-> int`` map.  Ids are assigned
    densely in first-seen order, so a vocabulary built from the same
    corpus in the same order is always identical.
:class:`PathVocab` / :class:`ContextVocab`
    the two vocabularies of the feature space: one for abstract path
    encodings (CRF relations), one for endpoint values and labels.
:class:`FeatureSpace`
    a (paths, values) pair shared by an extractor, the graphs it builds
    and the model trained on them.  It serializes to plain lists, so a
    saved model carries its own id assignment and reloads bit-identically
    in any process.

A process-wide :data:`DEFAULT_SPACE` backs extractors and graphs created
without an explicit space, so independently constructed components agree
on ids by default (e.g. the train and test builders of a sweep).
Pipelines create their own private space so saved models stay compact
and deterministic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class FrozenVocabError(RuntimeError):
    """A new string reached a vocabulary after :meth:`Vocab.freeze`.

    Raised instead of silently growing, because frozen vocabularies back
    the serving read path: their ids are shared by concurrent readers and
    must never shift.  Intern through an :class:`OverlayVocab` (see
    :meth:`FeatureSpace.overlay`) to handle unseen strings.
    """


class Vocab:
    """Append-only bidirectional string <-> dense-int map."""

    __slots__ = ("_ids", "_values", "_frozen")

    def __init__(self, values: Sequence[str] = ()) -> None:
        self._values: List[str] = []
        self._ids: Dict[str, int] = {}
        self._frozen = False
        for value in values:
            self.intern(value)

    def intern(self, value: str) -> int:
        """The id of ``value``, assigning the next dense id if unseen."""
        existing = self._ids.get(value)
        if existing is not None:
            return existing
        if self._frozen:
            raise FrozenVocabError(
                f"vocabulary is frozen; cannot intern new value {value!r} "
                f"(use an overlay for read-path interning)"
            )
        new_id = len(self._values)
        self._ids[value] = new_id
        self._values.append(value)
        return new_id

    def freeze(self) -> "Vocab":
        """Make the vocabulary immutable (interning unseen strings raises)."""
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def id_of(self, value: str) -> Optional[int]:
        """The id of ``value`` if already interned, else ``None``."""
        return self._ids.get(value)

    def value(self, value_id: int) -> str:
        """The string behind an id (raises ``IndexError`` for unknown ids)."""
        return self._values[value_id]

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: str) -> bool:
        return value in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def to_list(self) -> List[str]:
        """JSON-ready snapshot; inverse of :meth:`from_list`."""
        return list(self._values)

    @classmethod
    def from_list(cls, values: Sequence[str]) -> "Vocab":
        return cls(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({len(self)} entries)"


class OverlayVocab(Vocab):
    """A copy-on-write view over a frozen base vocabulary.

    Reads resolve through the base first, so every string the base knows
    keeps its base id.  Unseen strings intern *locally*, with ids starting
    at ``len(base)``; the base is never touched.  This is the serving read
    path: one frozen base shared by every request, one throwaway overlay
    per request, zero contention and zero unbounded growth.

    Local ids of two different overlays over the same base may collide
    with each other -- that is fine, because local ids never appear in
    model weights (the model only knows base ids) and overlays are never
    shared across requests.
    """

    __slots__ = ("_base", "_base_len")

    def __init__(self, base: Vocab) -> None:
        super().__init__()
        self._base = base
        self._base_len = len(base)

    @property
    def base(self) -> Vocab:
        return self._base

    def intern(self, value: str) -> int:
        base_id = self._base.id_of(value)
        if base_id is not None:
            return base_id
        local = self._ids.get(value)
        if local is not None:
            return self._base_len + local
        if self._frozen:
            raise FrozenVocabError(
                f"overlay vocabulary is frozen; cannot intern {value!r}"
            )
        new_id = len(self._values)
        self._ids[value] = new_id
        self._values.append(value)
        return self._base_len + new_id

    def id_of(self, value: str) -> Optional[int]:
        base_id = self._base.id_of(value)
        if base_id is not None:
            return base_id
        local = self._ids.get(value)
        return None if local is None else self._base_len + local

    def value(self, value_id: int) -> str:
        if value_id < self._base_len:
            return self._base.value(value_id)
        return self._values[value_id - self._base_len]

    def __len__(self) -> int:
        return self._base_len + len(self._values)

    def __contains__(self, value: str) -> bool:
        return value in self._base or value in self._ids

    def __iter__(self) -> Iterator[str]:
        yield from self._base
        yield from self._values

    def to_list(self) -> List[str]:
        return list(self)


class PackedVocab(Vocab):
    """A :class:`Vocab` whose initial entries live in a packed string table.

    The table is ``blob`` (any bytes-like object -- typically a mmapped
    section of a ``pigeon-model/1`` artifact) plus ``offsets``, an int
    sequence of length ``n + 1`` where entry ``i`` occupies
    ``blob[offsets[i]:offsets[i + 1]]`` as UTF-8.  Nothing is decoded at
    construction: :meth:`value` decodes single entries on demand, and the
    first operation that needs the full ``str -> id`` dict (``intern`` /
    ``id_of`` / ``in``) decodes the table once.  Until then the strings
    stay in the OS page cache, shared by every process mapping the same
    artifact.

    After the packed prefix, the vocabulary behaves exactly like a plain
    :class:`Vocab`: new strings intern append-only at ``len(packed)`` and
    beyond, ``freeze`` / :class:`OverlayVocab` work unchanged, and
    ``to_list`` round-trips through :meth:`Vocab.from_list`.
    """

    __slots__ = ("_blob", "_offsets", "_packed", "_indexed")

    def __init__(self, blob, offsets) -> None:
        super().__init__()
        self._blob = blob
        self._offsets = offsets
        self._packed = max(0, len(offsets) - 1)
        self._values = [None] * self._packed
        self._indexed = self._packed == 0

    @property
    def packed_count(self) -> int:
        """How many entries live in the packed (mmapped) table."""
        return self._packed

    def _decode(self, index: int) -> str:
        value = self._values[index]
        if value is None:
            start = int(self._offsets[index])
            end = int(self._offsets[index + 1])
            value = bytes(self._blob[start:end]).decode("utf-8")
            self._values[index] = value
        return value

    def _fill(self) -> None:
        """Decode every packed entry (bulk: one blob copy, then slices)."""
        offsets = self._offsets
        end = int(offsets[self._packed]) if self._packed else 0
        data = bytes(self._blob[:end])
        values = self._values
        for i in range(self._packed):
            if values[i] is None:
                values[i] = data[int(offsets[i]) : int(offsets[i + 1])].decode("utf-8")

    def _index(self) -> None:
        """Build the ``str -> id`` dict over the packed prefix, once."""
        if not self._indexed:
            self._fill()
            ids = self._ids
            for i in range(self._packed):
                ids[self._values[i]] = i
            self._indexed = True

    def intern(self, value: str) -> int:
        self._index()
        return super().intern(value)

    def id_of(self, value: str) -> Optional[int]:
        self._index()
        return self._ids.get(value)

    def value(self, value_id: int) -> str:
        if 0 <= value_id < self._packed:
            return self._decode(value_id)
        return self._values[value_id]

    def __contains__(self, value: str) -> bool:
        self._index()
        return value in self._ids

    def __iter__(self) -> Iterator[str]:
        self._fill()
        return iter(self._values)

    def to_list(self) -> List[str]:
        self._fill()
        return list(self._values)


class PathVocab(Vocab):
    """Vocabulary of abstract path encodings (the CRF relations)."""

    __slots__ = ()


class ContextVocab(Vocab):
    """Vocabulary of path-context endpoint values and predicted labels.

    Neighbour values and gold labels share one id space on purpose: the
    candidate index pairs "the label seen at the other end" with "the
    label to predict", and those are drawn from the same population of
    program names.
    """

    __slots__ = ()


class FeatureSpace:
    """The shared (paths, values) vocabulary pair of one model family.

    An extractor interns into a feature space; the graphs it builds, the
    model trained on those graphs and the word2vec pairs derived from the
    same extraction all reference ids of the *same* space.  Serializing a
    model therefore means serializing its space alongside the int-keyed
    weights.
    """

    __slots__ = ("paths", "values")

    def __init__(
        self,
        paths: Optional[PathVocab] = None,
        values: Optional[ContextVocab] = None,
    ) -> None:
        self.paths = paths if paths is not None else PathVocab()
        self.values = values if values is not None else ContextVocab()

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------
    def encode_context(self, start_value: str, path: str, end_value: str) -> Tuple[int, int, int]:
        """Intern one ``<xs, alpha(p), xf>`` triple to ``(id, id, id)``."""
        return (
            self.values.intern(start_value),
            self.paths.intern(path),
            self.values.intern(end_value),
        )

    def decode_context(self, triple: Tuple[int, int, int]) -> Tuple[str, str, str]:
        start_id, rel_id, end_id = triple
        return (
            self.values.value(start_id),
            self.paths.value(rel_id),
            self.values.value(end_id),
        )

    # ------------------------------------------------------------------
    # Freezing and overlays (the serving read path)
    # ------------------------------------------------------------------
    def freeze(self) -> "FeatureSpace":
        """Freeze both vocabularies; unseen strings now raise
        :class:`FrozenVocabError` unless interned through an overlay."""
        self.paths.freeze()
        self.values.freeze()
        return self

    @property
    def frozen(self) -> bool:
        return self.paths.frozen and self.values.frozen

    def overlay(self) -> "FeatureSpace":
        """A throwaway space layered over this one.

        Base ids are preserved; unseen strings get overlay-local ids at
        ``len(base)`` and beyond, without mutating this space.  One
        overlay per request keeps concurrent readers contention-free and
        the base space bounded.
        """
        return FeatureSpace(OverlayVocab(self.paths), OverlayVocab(self.values))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready snapshot; inverse of :meth:`from_dict`."""
        return {"paths": self.paths.to_list(), "values": self.values.to_list()}

    @classmethod
    def from_dict(cls, data: dict) -> "FeatureSpace":
        return cls(
            PathVocab(data.get("paths", ())),
            ContextVocab(data.get("values", ())),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FeatureSpace(paths={len(self.paths)}, values={len(self.values)})"


#: Process-wide default space: components constructed without an explicit
#: space (ad-hoc extractors, hand-built graphs, the sweep builders) all
#: intern here and therefore agree on ids.
DEFAULT_SPACE = FeatureSpace()
