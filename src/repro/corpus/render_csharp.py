"""Lower the corpus IR to C# source text (typed)."""

from __future__ import annotations

from typing import List

from .ir import (
    BOOL,
    CUSTOM_PREFIX,
    DOUBLE,
    INT,
    LIST_INT,
    LIST_STRING,
    MAP_STR_INT,
    OBJECT,
    STRING,
    VOID,
    Append,
    Assign,
    Aug,
    Bin,
    Break,
    CallFree,
    CallLocal,
    Decl,
    Expr,
    ExprStmt,
    FileSpec,
    ForEach,
    ForRange,
    Function,
    If,
    Incr,
    Index,
    Len,
    Lit,
    MapGet,
    MapHas,
    MapPut,
    NewCollection,
    Not,
    Return,
    Stmt,
    StrCat,
    Throw,
    Var,
    While,
    expr_type,
)

_INDENT = "    "

_TYPE_NAMES = {
    INT: "int",
    DOUBLE: "double",
    BOOL: "bool",
    STRING: "string",
    LIST_INT: "List<int>",
    LIST_STRING: "List<string>",
    MAP_STR_INT: "Dictionary<string, int>",
    VOID: "void",
    OBJECT: "object",
}


def cs_type(type_tag: str) -> str:
    if type_tag.startswith(CUSTOM_PREFIX):
        return type_tag[len(CUSTOM_PREFIX):]
    return _TYPE_NAMES[type_tag]


def render_expr(expr: Expr) -> str:
    if isinstance(expr, Var):
        return expr.slot.name
    if isinstance(expr, Lit):
        return _literal(expr)
    if isinstance(expr, Bin):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, Not):
        return f"!{render_expr(expr.operand)}"
    if isinstance(expr, CallFree):
        args = ", ".join(render_expr(a) for a in expr.args)
        # Free functions become static calls on a Helpers class so the
        # source is structurally idiomatic C#.
        name = expr.name[0].upper() + expr.name[1:]
        return f"Helpers.{name}({args})"
    if isinstance(expr, CallLocal):
        args = ", ".join(render_expr(a) for a in expr.args)
        name = "".join(part.capitalize() for part in expr.name_subtokens)
        return f"{name}({args})"
    if isinstance(expr, Len):
        operand = render_expr(expr.operand)
        if expr_type(expr.operand) == STRING:
            return f"{operand}.Length"
        return f"{operand}.Count"
    if isinstance(expr, Index):
        return f"{render_expr(expr.collection)}[{render_expr(expr.index)}]"
    if isinstance(expr, MapGet):
        return f"{render_expr(expr.map)}[{render_expr(expr.key)}]"
    if isinstance(expr, MapHas):
        return f"{render_expr(expr.map)}.ContainsKey({render_expr(expr.key)})"
    if isinstance(expr, StrCat):
        return f"({render_expr(expr.left)} + {render_expr(expr.right)})"
    if isinstance(expr, NewCollection):
        if expr.type == MAP_STR_INT:
            return "new Dictionary<string, int>()"
        if expr.type == LIST_STRING:
            return "new List<string>()"
        return "new List<int>()"
    raise TypeError(f"unknown expression {expr!r}")


def _literal(lit: Lit) -> str:
    if lit.value is None:
        return "null"
    if lit.type == BOOL:
        return "true" if lit.value else "false"
    if lit.type == STRING:
        return '"' + str(lit.value) + '"'
    if lit.type == DOUBLE:
        text = repr(float(lit.value))
        return text if "." in text else text + ".0"
    return repr(lit.value)


def render_stmt(stmt: Stmt, depth: int) -> List[str]:
    pad = _INDENT * depth
    if isinstance(stmt, Decl):
        type_name = cs_type(stmt.slot.type)
        if stmt.init is None:
            return [f"{pad}{type_name} {stmt.slot.name};"]
        return [f"{pad}{type_name} {stmt.slot.name} = {render_expr(stmt.init)};"]
    if isinstance(stmt, Assign):
        return [f"{pad}{render_expr(stmt.target)} = {render_expr(stmt.value)};"]
    if isinstance(stmt, Aug):
        return [f"{pad}{render_expr(stmt.target)} {stmt.op}= {render_expr(stmt.value)};"]
    if isinstance(stmt, Incr):
        return [f"{pad}{render_expr(stmt.target)}++;"]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({render_expr(stmt.cond)}) {{"]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.orelse:
                lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while ({render_expr(stmt.cond)}) {{"]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ForRange):
        name = stmt.slot.name
        lines = [
            f"{pad}for (int {name} = 0; {name} < {render_expr(stmt.stop)}; {name}++) {{"
        ]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ForEach):
        elem_type = cs_type(stmt.slot.type)
        lines = [
            f"{pad}foreach ({elem_type} {stmt.slot.name} in {render_expr(stmt.iterable)}) {{"
        ]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, Return):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {render_expr(stmt.value)};"]
    if isinstance(stmt, ExprStmt):
        return [f"{pad}{render_expr(stmt.expr)};"]
    if isinstance(stmt, Break):
        return [f"{pad}break;"]
    if isinstance(stmt, Append):
        return [f"{pad}{render_expr(stmt.collection)}.Add({render_expr(stmt.value)});"]
    if isinstance(stmt, MapPut):
        return [
            f"{pad}{render_expr(stmt.map)}[{render_expr(stmt.key)}] = "
            f"{render_expr(stmt.value)};"
        ]
    if isinstance(stmt, Throw):
        return [f'{pad}throw new ArgumentException("{stmt.message}");']
    raise TypeError(f"unknown statement {stmt!r}")


def render_function(fn: Function) -> str:
    params = ", ".join(f"{cs_type(p.type)} {p.name}" for p in fn.params)
    header = (
        f"{_INDENT}{_INDENT}public {cs_type(fn.return_type)} "
        f"{fn.pascal_name()}({params}) {{"
    )
    lines = [header]
    for stmt in fn.body:
        lines.extend(render_stmt(stmt, 3))
    lines.append(f"{_INDENT}{_INDENT}}}")
    return "\n".join(lines)


def render_file(spec: FileSpec) -> str:
    """Render a file spec to a C# compilation unit."""
    class_name = spec.class_name or "".join(
        part.capitalize() for part in spec.module.split("_")
    )
    project = spec.project.capitalize()
    lines = [
        "using System;",
        "using System.Collections.Generic;",
        "",
        f"namespace {project}.App {{",
        f"{_INDENT}public class {class_name} {{",
        "",
    ]
    for fn in spec.functions:
        lines.append(render_function(fn))
        lines.append("")
    lines.append(f"{_INDENT}}}")
    lines.append("}")
    return "\n".join(lines) + "\n"
