"""Duplicate filtering (Sec. 5.2).

The paper devoted "much effort" to filtering GitHub duplicates using file
names, directory names (such as ``node_modules``) and file md5 digests.
We implement the same three filters over generated corpora.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Set, Tuple

from .generator import CorpusFile

#: Directory names whose contents are vendored copies, not project code.
VENDORED_DIRS = ("node_modules", "vendor", "third_party", "bower_components")


def content_digest(source: str) -> str:
    """md5 digest of file content (the paper's third filter)."""
    return hashlib.md5(source.encode("utf-8")).hexdigest()


def is_vendored(path: str) -> bool:
    parts = path.split("/")
    return any(part in VENDORED_DIRS for part in parts)


def deduplicate(files: Iterable[CorpusFile]) -> Tuple[List[CorpusFile], int]:
    """Filter duplicates; returns (kept files, number removed).

    Three filters, in the paper's order: vendored directory names, exact
    file-name collisions within a project, and content md5.
    """
    kept: List[CorpusFile] = []
    removed = 0
    seen_digests: Set[str] = set()
    seen_names: Set[Tuple[str, str]] = set()
    for file in files:
        if is_vendored(file.path):
            removed += 1
            continue
        name_key = (file.project, file.path.rsplit("/", 1)[-1])
        if name_key in seen_names:
            removed += 1
            continue
        digest = content_digest(file.source)
        if digest in seen_digests:
            removed += 1
            continue
        seen_names.add(name_key)
        seen_digests.add(digest)
        kept.append(file)
    return kept, removed
