"""Train / validation / test splitting (Sec. 5.2).

The paper splits each corpus randomly; we do the same, deterministically
under a seed, and split *by project* by default so that near-identical
in-project code does not leak from train to test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .generator import CorpusFile


@dataclass
class CorpusSplit:
    train: List[CorpusFile]
    validation: List[CorpusFile]
    test: List[CorpusFile]

    def sizes(self) -> Tuple[int, int, int]:
        return (len(self.train), len(self.validation), len(self.test))


def split_corpus(
    files: Sequence[CorpusFile],
    train_fraction: float = 0.7,
    validation_fraction: float = 0.15,
    seed: int = 23,
    by_project: bool = False,
) -> CorpusSplit:
    """Randomly split a corpus into train/validation/test.

    ``by_project=True`` assigns whole projects to one side (stricter, no
    in-project leakage); the default splits by file like the paper.
    """
    if not (0 < train_fraction < 1) or not (0 <= validation_fraction < 1):
        raise ValueError("fractions must be in (0, 1)")
    if train_fraction + validation_fraction >= 1:
        raise ValueError("train + validation fractions must leave room for test")
    rng = random.Random(seed)

    if by_project:
        projects = sorted({f.project for f in files})
        rng.shuffle(projects)
        n_train = max(1, int(len(projects) * train_fraction))
        n_val = max(1, int(len(projects) * validation_fraction))
        train_projects = set(projects[:n_train])
        val_projects = set(projects[n_train : n_train + n_val])
        split = CorpusSplit([], [], [])
        for file in files:
            if file.project in train_projects:
                split.train.append(file)
            elif file.project in val_projects:
                split.validation.append(file)
            else:
                split.test.append(file)
        return split

    shuffled = list(files)
    rng.shuffle(shuffled)
    n_train = int(len(shuffled) * train_fraction)
    n_val = int(len(shuffled) * validation_fraction)
    return CorpusSplit(
        train=shuffled[:n_train],
        validation=shuffled[n_train : n_train + n_val],
        test=shuffled[n_train + n_val :],
    )
