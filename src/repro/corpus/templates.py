"""Semantic program templates with structurally-keyed naming.

Every template builds a small function in the IR of :mod:`repro.corpus.ir`
and chooses gold variable names *as a function of the structural variant*
it sampled (loop kind, guard shape, operator, branch order), with a small
uniform noise floor.  This reproduces the property of real code the paper
exploits: the role of an element -- visible only through its syntactic
context -- predicts its name.  Representations that see structure (AST
paths) can recover the variant and hence the name; representations that
only see a bag of nearby identifiers cannot, because the identifier bag
is deliberately near-identical across variants (cf. the paper's Fig. 3).

Templates also correlate names *across* slots (``items`` ↔ ``item``),
which pairwise CRF factors exploit but context-independent predictors
cannot -- mirroring the CRF > word2vec gap of Sec. 5.3.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

from .ir import (
    BOOL,
    DOUBLE,
    INT,
    LIST_INT,
    LIST_STRING,
    MAP_STR_INT,
    STRING,
    VOID,
    Append,
    Assign,
    Aug,
    Bin,
    Break,
    CallFree,
    Decl,
    ExprStmt,
    ForEach,
    ForRange,
    Function,
    If,
    Incr,
    Index,
    Len,
    Lit,
    MapGet,
    MapHas,
    MapPut,
    NewCollection,
    Not,
    OBJECT,
    Return,
    StrCat,
    Throw,
    Var,
    VarSlot,
    While,
)

#: Opaque object parameters (rendered per language).
OBJECT_PARAM_TYPE = OBJECT

#: Fraction of slots whose name ignores the structural key (noise floor).
NAME_NOISE = 0.15

#: Rare long-tail names, a source of out-of-vocabulary labels (Sec. 5.3).
RARE_NAMES = (
    "quux", "fribble", "zorp", "blatherskite", "snark", "wombat", "frobnitz",
    "gizmo", "widgetron", "thingamajig", "doohickey", "whatsit", "gadget",
    "contraption", "gubbins", "oojamaflip", "doodad", "knickknack",
)
RARE_NAME_PROB = 0.02

#: Condition / work functions (shared across variants on purpose: they
#: must NOT leak the structural variant to bag-of-identifier models).
COND_FUNCTIONS = ("someCondition", "checkState", "isReady", "shouldStop")
WORK_FUNCTIONS = ("doSomething", "process", "update", "refresh")

#: Plural/singular pairs for collection/element slots.
COLLECTION_PAIRS = (
    ("values", "value"),
    ("items", "item"),
    ("elements", "element"),
    ("numbers", "number"),
    ("list", "item"),  # the type-derived convention rule-based predicts
)

#: Per-project domains flavouring distractor calls.
DOMAINS = {
    "web": ("log", "fetch", "render", "notify"),
    "math": ("normalize", "clamp", "round2", "scale"),
    "io": ("open", "flush", "close", "sync"),
    "data": ("load", "store", "index2", "emit"),
}


def keyed_name(
    rng: random.Random, pool: Sequence[str], key: int, salt: int = 0
) -> str:
    """Pick a name from ``pool`` keyed by a structural variant.

    With probability :data:`NAME_NOISE` the key is ignored (uniform
    choice); with probability :data:`RARE_NAME_PROB` a rare long-tail
    name is used instead (the OoV source).
    """
    roll = rng.random()
    if roll < RARE_NAME_PROB:
        return rng.choice(RARE_NAMES)
    if roll < RARE_NAME_PROB + NAME_NOISE:
        return rng.choice(list(pool))
    return pool[(key + salt) % len(pool)]


def _cond(rng: random.Random) -> CallFree:
    return CallFree(rng.choice(COND_FUNCTIONS), [], BOOL)


def _work(rng: random.Random) -> ExprStmt:
    return ExprStmt(CallFree(rng.choice(WORK_FUNCTIONS), [], VOID))


# ----------------------------------------------------------------------
# Templates.  Each builder: (rng) -> Function
# ----------------------------------------------------------------------


def t_flag_loop(rng: random.Random) -> Function:
    """The paper's Fig. 1a pattern: a boolean loop-stopping flag."""
    variant = rng.randrange(4)
    flag = VarSlot(keyed_name(rng, ("done", "finished", "stop", "running"), variant), BOOL)
    cond = _cond(rng)
    set_true = Assign(Var(flag), Lit(True, BOOL))
    set_false = Assign(Var(flag), Lit(False, BOOL))
    if variant == 0:
        body = [Decl(flag, Lit(False, BOOL)), While(Not(Var(flag)), [If(cond, [set_true])])]
    elif variant == 1:
        body = [
            Decl(flag, Lit(False, BOOL)),
            While(Not(Var(flag)), [_work(rng), If(cond, [set_true])]),
        ]
    elif variant == 2:
        body = [
            Decl(flag, Lit(False, BOOL)),
            While(Not(Var(flag)), [If(cond, [set_true], [_work(rng)])]),
        ]
    else:
        body = [Decl(flag, Lit(True, BOOL)), While(Var(flag), [If(cond, [set_false])])]
    name = (("wait",), ("run", "loop"), ("poll",), ("spin",))[variant]
    return Function(name, [], body, VOID, template="flag_loop")


def t_straightline_flag(rng: random.Random) -> Function:
    """Fig. 3b: same identifier bag as ``flag_loop`` but no loop role."""
    variant = rng.randrange(4)
    flag = VarSlot(
        keyed_name(rng, ("enabled", "active", "visible", "valid"), variant), BOOL
    )
    cond_stmt = ExprStmt(_cond(rng))
    work = _work(rng)
    decl = Decl(flag, Lit(False, BOOL))
    set_true = Assign(Var(flag), Lit(True, BOOL))
    if variant == 0:
        body = [cond_stmt, work, decl, set_true]
    elif variant == 1:
        body = [decl, cond_stmt, set_true, work]
    elif variant == 2:
        body = [work, decl, cond_stmt, set_true]
    else:
        body = [decl, work, set_true, cond_stmt]
    name = (("init",), ("setup",), ("prepare",), ("configure",))[variant]
    return Function(name, [], body, VOID, template="straightline_flag")


def t_counter(rng: random.Random) -> Function:
    """The paper's Fig. 9 pattern: count matching elements."""
    loop_kind = rng.randrange(2)  # 0: foreach, 1: indexed for
    cmp_op = rng.randrange(2)  # 0: ==, 1: >
    variant = loop_kind * 2 + cmp_op
    counter = VarSlot(keyed_name(rng, ("count", "counter", "total", "matches"), variant), INT)
    values = VarSlot(keyed_name(rng, [p for p, _ in COLLECTION_PAIRS], variant), LIST_INT, "param")
    # Element/target names follow the collection's singular.
    singular_pool = [s for _, s in COLLECTION_PAIRS]
    plural_pool = [p for p, _ in COLLECTION_PAIRS]
    target_idx = plural_pool.index(values.name) if values.name in plural_pool else variant
    target = VarSlot(keyed_name(rng, singular_pool, target_idx), INT, "param")
    op = "==" if cmp_op == 0 else ">"
    if loop_kind == 0:
        element = VarSlot(keyed_name(rng, ("v", "x", "entry", "current"), variant), INT)
        loop: List = [
            ForEach(
                element,
                Var(values),
                [If(Bin(op, Var(element), Var(target)), [Incr(Var(counter))])],
            )
        ]
    else:
        index = VarSlot(keyed_name(rng, ("i", "i", "i", "index"), variant), INT)
        loop = [
            ForRange(
                index,
                Len(Var(values)),
                [
                    If(
                        Bin(op, Index(Var(values), Var(index)), Var(target)),
                        [Incr(Var(counter))],
                    )
                ],
            )
        ]
    body = [Decl(counter, Lit(0, INT))] + loop + [Return(Var(counter))]
    name = (("count",), ("count", "matches"), ("tally",), ("num", "greater"))[variant]
    return Function(name, [values, target], body, INT, template="counter")


def t_accumulator(rng: random.Random) -> Function:
    """Sum the elements of a collection."""
    loop_kind = rng.randrange(2)
    seeded = rng.randrange(2)  # start from 0 or from first element count
    variant = loop_kind * 2 + seeded
    acc = VarSlot(keyed_name(rng, ("sum", "total", "acc", "result"), variant), INT)
    values = VarSlot(keyed_name(rng, [p for p, _ in COLLECTION_PAIRS], variant, 1), LIST_INT, "param")
    if loop_kind == 0:
        element = VarSlot(keyed_name(rng, ("v", "x", "entry", "current"), variant, 1), INT)
        loop: List = [ForEach(element, Var(values), [Aug(Var(acc), "+", Var(element))])]
    else:
        index = VarSlot(keyed_name(rng, ("i", "i", "index", "idx"), variant, 1), INT)
        loop = [
            ForRange(index, Len(Var(values)), [Aug(Var(acc), "+", Index(Var(values), Var(index)))])
        ]
    init = Lit(0, INT) if seeded == 0 else Lit(1, INT)
    body = [Decl(acc, init)] + loop + [Return(Var(acc))]
    name = (("sum",), ("sum", "values"), ("add", "all"), ("accumulate",))[variant]
    return Function(name, [values], body, INT, template="accumulator")


def t_index_search(rng: random.Random) -> Function:
    """Linear search returning an index."""
    early_return = rng.randrange(2)
    cmp_op = rng.randrange(2)
    variant = early_return * 2 + cmp_op
    index = VarSlot(keyed_name(rng, ("i", "i", "index", "pos"), variant), INT)
    values = VarSlot(keyed_name(rng, [p for p, _ in COLLECTION_PAIRS], variant, 2), LIST_INT, "param")
    target = VarSlot(keyed_name(rng, ("target", "key", "needle", "wanted"), variant), INT, "param")
    op = "==" if cmp_op == 0 else ">="
    if early_return == 0:
        body: List = [
            ForRange(
                index,
                Len(Var(values)),
                [If(Bin(op, Index(Var(values), Var(index)), Var(target)), [Return(Var(index))])],
            ),
            Return(Lit(-1, INT)),
        ]
    else:
        found = VarSlot(keyed_name(rng, ("found", "result", "match", "hit"), variant), INT)
        body = [
            Decl(found, Lit(-1, INT)),
            ForRange(
                index,
                Len(Var(values)),
                [
                    If(
                        Bin(op, Index(Var(values), Var(index)), Var(target)),
                        [Assign(Var(found), Var(index)), Break()],
                    )
                ],
            ),
            Return(Var(found)),
        ]
    name = (("find", "index"), ("index", "of"), ("locate",), ("search",))[variant]
    return Function(name, [values, target], body, INT, template="index_search")


def t_max_finder(rng: random.Random) -> Function:
    """Find the maximum (or minimum) element."""
    minimum = rng.randrange(2)
    guarded = rng.randrange(2)
    variant = minimum * 2 + guarded
    pool = ("max", "best", "largest", "highest") if not minimum else ("min", "lowest", "smallest", "least")
    best = VarSlot(keyed_name(rng, pool, variant), INT)
    values = VarSlot(keyed_name(rng, [p for p, _ in COLLECTION_PAIRS], variant, 3), LIST_INT, "param")
    element = VarSlot(keyed_name(rng, ("v", "x", "entry", "current"), variant, 2), INT)
    op = ">" if not minimum else "<"
    update = Assign(Var(best), Var(element))
    inner = If(Bin(op, Var(element), Var(best)), [update])
    body: List = [Decl(best, Lit(0, INT)), ForEach(element, Var(values), [inner])]
    if guarded:
        body.append(If(Bin("==", Len(Var(values)), Lit(0, INT)), [Return(Lit(0, INT))]))
    body.append(Return(Var(best)))
    verb = "find" if not guarded else "get"
    noun = "max" if not minimum else "min"
    name = (verb, noun)
    return Function(name, [values], body, INT, template="max_finder")


def t_string_builder(rng: random.Random) -> Function:
    """Build a message by concatenation."""
    looped = rng.randrange(2)
    prefixed = rng.randrange(2)
    variant = looped * 2 + prefixed
    msg = VarSlot(keyed_name(rng, ("message", "msg", "text", "output"), variant), STRING)
    name_param = VarSlot(keyed_name(rng, ("name", "title", "label", "subject"), variant), STRING, "param")
    init = Lit("", STRING) if not prefixed else Lit("[", STRING)
    body: List = [Decl(msg, init)]
    if looped:
        parts = VarSlot(keyed_name(rng, ("parts", "words", "lines", "chunks"), variant), LIST_STRING, "param")
        piece = VarSlot(keyed_name(rng, ("part", "word", "line", "chunk"), variant), STRING)
        body.append(ForEach(piece, Var(parts), [Assign(Var(msg), StrCat(Var(msg), Var(piece)))]))
        params = [name_param, parts]
    else:
        body.append(Assign(Var(msg), StrCat(Var(msg), Var(name_param))))
        body.append(Assign(Var(msg), StrCat(Var(msg), Lit(":", STRING))))
        params = [name_param]
    body.append(Return(Var(msg)))
    name = (("build", "message"), ("format",), ("join", "parts"), ("render", "text"))[variant]
    return Function(name, params, body, STRING, template="string_builder")


def t_web_handler(rng: random.Random) -> Function:
    """The Fig. 8 pattern: url/request/callback handler."""
    method_get = rng.randrange(2)
    with_send = rng.randrange(2)
    variant = method_get * 2 + with_send
    from .ir import custom_type

    url = VarSlot(keyed_name(rng, ("url", "uri", "source", "endpoint"), variant), STRING, "param")
    request = VarSlot(
        keyed_name(rng, ("request", "req", "xhr", "client"), variant),
        custom_type("Request"),
        "param",
    )
    callback = VarSlot(
        keyed_name(rng, ("callback", "handler", "cb", "listener"), variant),
        custom_type("Handler"),
        "param",
    )
    verb = Lit("GET" if method_get else "POST", STRING)
    body: List = [
        ExprStmt(CallFree("open2", [Var(request), verb, Var(url)], VOID)),
    ]
    if with_send:
        body.append(ExprStmt(CallFree("send2", [Var(request), Var(callback)], VOID)))
    else:
        body.append(ExprStmt(CallFree("dispatch", [Var(request), Var(callback)], VOID)))
    name = (("send", "request"), ("post", "data"), ("load",), ("get", "resource"))[variant]
    return Function(name, [url, request, callback], body, VOID, template="web_handler")


def t_guard_validate(rng: random.Random) -> Function:
    """Null/empty guard then use."""
    check_empty = rng.randrange(2)
    throws = rng.randrange(2)
    variant = check_empty * 2 + throws
    value = VarSlot(keyed_name(rng, ("input", "value", "arg", "data"), variant), STRING, "param")
    if check_empty:
        cond = Bin("==", Len(Var(value)), Lit(0, INT))
    else:
        cond = Bin("==", Var(value), Lit(None, STRING))
    if throws:
        guard = If(cond, [Throw("invalid argument")])
    else:
        guard = If(cond, [Return(Lit(False, BOOL))])
    body = [guard, ExprStmt(CallFree(rng.choice(WORK_FUNCTIONS), [Var(value)], VOID)), Return(Lit(True, BOOL))]
    name = (("validate",), ("check", "input"), ("require",), ("ensure", "valid"))[variant]
    return Function(name, [value], body, BOOL, template="guard_validate")


def t_average(rng: random.Random) -> Function:
    """Mean of a collection: accumulate then divide."""
    loop_kind = rng.randrange(2)
    variant = loop_kind * 2 + rng.randrange(2)
    avg = VarSlot(keyed_name(rng, ("average", "avg", "mean", "ratio"), variant), DOUBLE)
    total = VarSlot(keyed_name(rng, ("sum", "total", "acc", "result"), variant, 1), INT)
    values = VarSlot(keyed_name(rng, [p for p, _ in COLLECTION_PAIRS], variant, 1), LIST_INT, "param")
    element = VarSlot(keyed_name(rng, ("v", "x", "entry", "current"), variant, 3), INT)
    body: List = [
        Decl(total, Lit(0, INT)),
        ForEach(element, Var(values), [Aug(Var(total), "+", Var(element))]),
        Decl(avg, Bin("/", Var(total), Len(Var(values)))),
        Return(Var(avg)),
    ]
    name = (("compute", "average"), ("mean",), ("avg", "of"), ("average",))[variant]
    return Function(name, [values], body, DOUBLE, template="average")


def t_filter_copy(rng: random.Random) -> Function:
    """Copy matching elements into a fresh list."""
    cmp_op = rng.randrange(2)
    negated = rng.randrange(2)
    variant = cmp_op * 2 + negated
    result = VarSlot(keyed_name(rng, ("result", "filtered", "chosen", "selected"), variant), LIST_INT)
    values = VarSlot(keyed_name(rng, [p for p, _ in COLLECTION_PAIRS], variant, 2), LIST_INT, "param")
    limit = VarSlot(keyed_name(rng, ("limit", "threshold", "cutoff", "bound"), variant), INT, "param")
    element = VarSlot(keyed_name(rng, ("v", "x", "entry", "current"), variant, 1), INT)
    op = ">" if cmp_op == 0 else "<"
    cond = Bin(op, Var(element), Var(limit))
    if negated:
        cond = Not(cond)
    body = [
        Decl(result, NewCollection(LIST_INT)),
        ForEach(element, Var(values), [If(cond, [Append(Var(result), Var(element))])]),
        Return(Var(result)),
    ]
    name = (("filter",), ("filter", "items"), ("select",), ("keep", "small"))[variant]
    return Function(name, [values, limit], body, LIST_INT, template="filter_copy")


def t_map_cache(rng: random.Random) -> Function:
    """Memoising lookup into a map."""
    put_on_miss = rng.randrange(2)
    variant = put_on_miss * 2 + rng.randrange(2)
    cache = VarSlot(keyed_name(rng, ("cache", "map", "lookup", "store"), variant), MAP_STR_INT, "param")
    key = VarSlot(keyed_name(rng, ("key", "name", "id", "token"), variant), STRING, "param")
    if put_on_miss:
        body: List = [
            If(
                Not(MapHas(Var(cache), Var(key))),
                [MapPut(Var(cache), Var(key), CallFree("compute", [Var(key)], INT))],
            ),
            Return(MapGet(Var(cache), Var(key))),
        ]
    else:
        body = [
            If(MapHas(Var(cache), Var(key)), [Return(MapGet(Var(cache), Var(key)))]),
            Return(Lit(0, INT)),
        ]
    name = (("lookup",), ("get", "cached"), ("memoize",), ("fetch", "value"))[variant]
    return Function(name, [cache, key], body, INT, template="map_cache")


#: Simple names of custom resource classes.  Every project qualifies them
#: with its own package, so the full types collide on the simple name.
RESOURCE_CLASSES = ("Connection", "Client", "Logger", "Session")


def t_resource_usage(rng: random.Random) -> Function:
    """Open/use/close a custom-typed resource (full-type ambiguity)."""
    from .ir import custom_type

    class_idx = rng.randrange(len(RESOURCE_CLASSES))
    simple = RESOURCE_CLASSES[class_idx]
    guarded = rng.randrange(2)
    variant = class_idx  # names follow the resource class
    pools = {
        "Connection": ("conn", "connection", "link", "channel"),
        "Client": ("client", "api", "service", "remote"),
        "Logger": ("logger", "log2", "journal", "sink"),
        "Session": ("session", "ctx", "handle", "state"),
    }
    resource = VarSlot(
        keyed_name(rng, pools[simple], guarded), custom_type(simple)
    )
    open_call = CallFree(f"open{simple}", [], custom_type(simple))
    body: List = [Decl(resource, open_call)]
    if guarded:
        body.append(
            If(Bin("==", Var(resource), Lit(None, OBJECT)), [Return()])
        )
    body.append(ExprStmt(CallFree("useResource", [Var(resource)], VOID)))
    body.append(ExprStmt(CallFree("closeResource", [Var(resource)], VOID)))
    name = (("open", simple.lower()), ("acquire",), ("connect",), ("start", "session"))[
        variant % 4
    ]
    return Function(name, [], body, VOID, template="resource_usage")


def t_getter_setter(rng: random.Random) -> Function:
    """Getter or setter over a field-like parameter pair."""
    is_setter = rng.randrange(2)
    field_idx = rng.randrange(4)
    from .ir import custom_type

    field = ("name", "size", "owner", "status")[field_idx]
    field_type = (STRING, INT, STRING, STRING)[field_idx]
    holder_class = ("Entity", "Model", "Record", "Bean")[field_idx]
    holder = VarSlot(
        keyed_name(rng, ("entity", "model", "record", "bean"), field_idx),
        custom_type(holder_class),
        "param",
    )
    if is_setter:
        value = VarSlot(keyed_name(rng, (field, field, "value", "val"), field_idx), field_type, "param")
        body: List = [ExprStmt(CallFree("setField", [Var(holder), Lit(field, STRING), Var(value)], VOID))]
        name: Tuple[str, ...] = ("set", field)
        params = [holder, value]
        ret = VOID
    else:
        body = [Return(CallFree("getField", [Var(holder), Lit(field, STRING)], field_type))]
        name = ("get", field)
        params = [holder]
        ret = field_type
    return Function(name, params, body, ret, template="getter_setter")


#: (name, builder, sampling weight)
TEMPLATES: Tuple[Tuple[str, Callable[[random.Random], Function], float], ...] = (
    ("flag_loop", t_flag_loop, 1.2),
    ("straightline_flag", t_straightline_flag, 0.8),
    ("counter", t_counter, 1.2),
    ("accumulator", t_accumulator, 1.0),
    ("index_search", t_index_search, 1.0),
    ("max_finder", t_max_finder, 1.0),
    ("string_builder", t_string_builder, 1.0),
    ("web_handler", t_web_handler, 1.6),
    ("guard_validate", t_guard_validate, 0.8),
    ("average", t_average, 0.8),
    ("filter_copy", t_filter_copy, 1.0),
    ("map_cache", t_map_cache, 0.8),
    ("getter_setter", t_getter_setter, 1.0),
    ("resource_usage", t_resource_usage, 2.2),
)


def sample_function(rng: random.Random) -> Function:
    """Sample one function from the weighted template registry."""
    names = [name for name, _, _ in TEMPLATES]
    weights = [weight for _, _, weight in TEMPLATES]
    choice = rng.choices(range(len(TEMPLATES)), weights=weights, k=1)[0]
    return TEMPLATES[choice][1](rng)


def add_distractors(fn: Function, rng: random.Random, domain: str) -> None:
    """Insert domain-flavoured no-op calls (noise, not signal)."""
    calls = DOMAINS.get(domain, DOMAINS["web"])
    n = rng.randrange(0, 3)
    for _ in range(n):
        stmt = ExprStmt(CallFree(rng.choice(calls), [], VOID))
        pos = rng.randrange(0, len(fn.body) + 1)
        fn.body.insert(pos, stmt)
