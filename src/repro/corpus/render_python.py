"""Lower the corpus IR to Python source text."""

from __future__ import annotations

from typing import List

from .ir import (
    BOOL,
    DOUBLE,
    MAP_STR_INT,
    STRING,
    Append,
    Assign,
    Aug,
    Bin,
    Break,
    CallFree,
    CallLocal,
    Decl,
    Expr,
    ExprStmt,
    FileSpec,
    ForEach,
    ForRange,
    Function,
    If,
    Incr,
    Index,
    Len,
    Lit,
    MapGet,
    MapHas,
    MapPut,
    NewCollection,
    Not,
    Return,
    Stmt,
    StrCat,
    Throw,
    Var,
    While,
)

_INDENT = "    "

_OP_MAP = {"&&": "and", "||": "or"}


def render_expr(expr: Expr) -> str:
    if isinstance(expr, Var):
        return expr.slot.name
    if isinstance(expr, Lit):
        return _literal(expr)
    if isinstance(expr, Bin):
        op = _OP_MAP.get(expr.op, expr.op)
        return f"({render_expr(expr.left)} {op} {render_expr(expr.right)})"
    if isinstance(expr, Not):
        return f"not {render_expr(expr.operand)}"
    if isinstance(expr, CallFree):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, CallLocal):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{'_'.join(expr.name_subtokens)}({args})"
    if isinstance(expr, Len):
        return f"len({render_expr(expr.operand)})"
    if isinstance(expr, Index):
        return f"{render_expr(expr.collection)}[{render_expr(expr.index)}]"
    if isinstance(expr, MapGet):
        return f"{render_expr(expr.map)}[{render_expr(expr.key)}]"
    if isinstance(expr, MapHas):
        return f"({render_expr(expr.key)} in {render_expr(expr.map)})"
    if isinstance(expr, StrCat):
        return f"({render_expr(expr.left)} + {render_expr(expr.right)})"
    if isinstance(expr, NewCollection):
        return "{}" if expr.type == MAP_STR_INT else "[]"
    raise TypeError(f"unknown expression {expr!r}")


def _literal(lit: Lit) -> str:
    if lit.value is None:
        return "None"
    if lit.type == BOOL:
        return "True" if lit.value else "False"
    if lit.type == STRING:
        return '"' + str(lit.value) + '"'
    return repr(lit.value)


def render_stmt(stmt: Stmt, depth: int) -> List[str]:
    pad = _INDENT * depth
    if isinstance(stmt, Decl):
        init = "None" if stmt.init is None else render_expr(stmt.init)
        return [f"{pad}{stmt.slot.name} = {init}"]
    if isinstance(stmt, Assign):
        return [f"{pad}{render_expr(stmt.target)} = {render_expr(stmt.value)}"]
    if isinstance(stmt, Aug):
        return [f"{pad}{render_expr(stmt.target)} {stmt.op}= {render_expr(stmt.value)}"]
    if isinstance(stmt, Incr):
        return [f"{pad}{render_expr(stmt.target)} += 1"]
    if isinstance(stmt, If):
        lines = [f"{pad}if {render_expr(stmt.cond)}:"]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        if not stmt.body:
            lines.append(f"{pad}{_INDENT}pass")
        if stmt.orelse:
            lines.append(f"{pad}else:")
            for inner in stmt.orelse:
                lines.extend(render_stmt(inner, depth + 1))
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while {render_expr(stmt.cond)}:"]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        if not stmt.body:
            lines.append(f"{pad}{_INDENT}pass")
        return lines
    if isinstance(stmt, ForRange):
        lines = [f"{pad}for {stmt.slot.name} in range({render_expr(stmt.stop)}):"]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        if not stmt.body:
            lines.append(f"{pad}{_INDENT}pass")
        return lines
    if isinstance(stmt, ForEach):
        lines = [f"{pad}for {stmt.slot.name} in {render_expr(stmt.iterable)}:"]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        if not stmt.body:
            lines.append(f"{pad}{_INDENT}pass")
        return lines
    if isinstance(stmt, Return):
        if stmt.value is None:
            return [f"{pad}return"]
        return [f"{pad}return {render_expr(stmt.value)}"]
    if isinstance(stmt, ExprStmt):
        return [f"{pad}{render_expr(stmt.expr)}"]
    if isinstance(stmt, Break):
        return [f"{pad}break"]
    if isinstance(stmt, Append):
        return [f"{pad}{render_expr(stmt.collection)}.append({render_expr(stmt.value)})"]
    if isinstance(stmt, MapPut):
        return [
            f"{pad}{render_expr(stmt.map)}[{render_expr(stmt.key)}] = "
            f"{render_expr(stmt.value)}"
        ]
    if isinstance(stmt, Throw):
        return [f'{pad}raise ValueError("{stmt.message}")']
    raise TypeError(f"unknown statement {stmt!r}")


def render_function(fn: Function) -> str:
    params = ", ".join(p.name for p in fn.params)
    lines = [f"def {fn.snake_name()}({params}):"]
    body_lines: List[str] = []
    for stmt in fn.body:
        body_lines.extend(render_stmt(stmt, 1))
    if not body_lines:
        body_lines = [f"{_INDENT}pass"]
    return "\n".join(lines + body_lines)


def render_file(spec: FileSpec) -> str:
    """Render a file spec to a Python module."""
    chunks = [render_function(fn) for fn in spec.functions]
    return "\n\n\n".join(chunks) + "\n"
