"""Corpus generation: projects, files, duplication (Sec. 5.2 / Table 1).

The generator is deterministic under a seed.  It emits a list of
:class:`CorpusFile` records, each holding rendered source text that the
language's frontend parses back.  A configurable fraction of files are
byte-for-byte duplicates (GitHub-style), which the dedup pass of
:mod:`repro.corpus.dedup` must filter out before training, mirroring the
paper's duplicate-filtering effort.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .ir import CallLocal, ExprStmt, FileSpec, Function, VOID, default_value
from .templates import DOMAINS, add_distractors, sample_function
from . import render_csharp, render_java, render_js, render_python

_RENDERERS: Dict[str, Callable[[FileSpec], str]] = {
    "javascript": render_js.render_file,
    "java": render_java.render_file,
    "python": render_python.render_file,
    "csharp": render_csharp.render_file,
}

_EXTENSIONS = {"javascript": "js", "java": "java", "python": "py", "csharp": "cs"}

_PROJECT_NAMES = (
    "acme", "nimbus", "quartz", "falcon", "harbor", "lumen", "ember", "cobalt",
    "violet", "mesa", "atlas", "comet", "drift", "pulse", "orbit", "prism",
    "raven", "sonar", "tundra", "vertex",
)

_MODULE_NOUNS = (
    "utils", "core", "helpers", "service", "handler", "manager", "worker",
    "engine", "parser", "loader", "tracker", "builder", "router", "store",
)


@dataclass
class CorpusConfig:
    """Knobs of corpus generation."""

    language: str = "javascript"
    n_projects: int = 12
    files_per_project: Tuple[int, int] = (4, 10)
    functions_per_file: Tuple[int, int] = (2, 5)
    #: Probability that a generated file is an exact duplicate of an
    #: earlier file in the same project (GitHub-style duplication).
    duplicate_prob: float = 0.06
    #: Probability of adding a same-file caller for a generated method
    #: (the external-path source for method naming, Sec. 5.3.2).
    caller_prob: float = 0.5
    seed: int = 7


@dataclass
class CorpusFile:
    """One rendered source file."""

    project: str
    path: str
    source: str
    language: str
    #: The generating spec (None for injected duplicates).
    spec: Optional[FileSpec] = None
    is_duplicate: bool = False


def _make_caller(fn: Function, index: int, rng: random.Random) -> Function:
    """A tiny function invoking ``fn`` -- the source of external paths."""
    args = [default_value(param.type) for param in fn.params]
    body = [ExprStmt(CallLocal(fn.name_subtokens, args, fn.return_type))]
    verb = rng.choice(("run", "invoke", "apply", "use"))
    return Function((verb, *fn.name_subtokens[:1], str(index)), [], body, VOID, template="caller")


def generate_file_spec(
    rng: random.Random, project: str, module: str, config: CorpusConfig, domain: str
) -> FileSpec:
    n_functions = rng.randint(*config.functions_per_file)
    functions: List[Function] = []
    for i in range(n_functions):
        fn = sample_function(rng)
        add_distractors(fn, rng, domain)
        functions.append(fn)
        if rng.random() < config.caller_prob:
            functions.append(_make_caller(fn, i, rng))
    class_name = "".join(part.capitalize() for part in module.split("_"))
    return FileSpec(project=project, module=module, functions=functions, class_name=class_name)


def generate_corpus(config: Optional[CorpusConfig] = None, **overrides) -> List[CorpusFile]:
    """Generate a full multi-project corpus for one language."""
    if config is None:
        config = CorpusConfig()
    if overrides:
        config = CorpusConfig(**{**config.__dict__, **overrides})
    if config.language not in _RENDERERS:
        known = ", ".join(sorted(_RENDERERS))
        raise ValueError(f"unknown language {config.language!r}; known: {known}")

    rng = random.Random(config.seed)
    render = _RENDERERS[config.language]
    ext = _EXTENSIONS[config.language]
    domains = list(DOMAINS)
    files: List[CorpusFile] = []

    for p in range(config.n_projects):
        project = _PROJECT_NAMES[p % len(_PROJECT_NAMES)]
        domain = domains[p % len(domains)]
        n_files = rng.randint(*config.files_per_project)
        project_files: List[CorpusFile] = []
        for f in range(n_files):
            if project_files and rng.random() < config.duplicate_prob:
                # Vendored/committed duplicate, for the dedup pass to find.
                original = rng.choice(project_files)
                dup = CorpusFile(
                    project=project,
                    path=f"{project}/node_modules/{original.path.rsplit('/', 1)[-1]}",
                    source=original.source,
                    language=config.language,
                    spec=None,
                    is_duplicate=True,
                )
                project_files.append(dup)
                continue
            module = f"{rng.choice(_MODULE_NOUNS)}_{p}_{f}"
            spec = generate_file_spec(rng, project, module, config, domain)
            source = render(spec)
            project_files.append(
                CorpusFile(
                    project=project,
                    path=f"{project}/src/{module}.{ext}",
                    source=source,
                    language=config.language,
                    spec=spec,
                )
            )
        files.extend(project_files)
    return files


def corpus_stats(files: List[CorpusFile]) -> Dict[str, float]:
    """Counts reported by the Table 1 benchmark."""
    total_bytes = sum(len(f.source) for f in files)
    return {
        "files": len(files),
        "projects": len({f.project for f in files}),
        "bytes": total_bytes,
        "kib": total_bytes / 1024.0,
        "duplicates": sum(1 for f in files if f.is_duplicate),
    }
