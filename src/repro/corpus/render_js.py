"""Lower the corpus IR to JavaScript source text."""

from __future__ import annotations

from typing import List

from .ir import (
    BOOL,
    DOUBLE,
    INT,
    LIST_INT,
    LIST_STRING,
    MAP_STR_INT,
    STRING,
    Append,
    Assign,
    Aug,
    Bin,
    Break,
    CallFree,
    CallLocal,
    Decl,
    Expr,
    ExprStmt,
    FileSpec,
    ForEach,
    ForRange,
    Function,
    If,
    Incr,
    Index,
    Len,
    Lit,
    MapGet,
    MapHas,
    MapPut,
    NewCollection,
    Not,
    Return,
    Stmt,
    StrCat,
    Throw,
    Var,
    While,
    expr_type,
)

_INDENT = "  "


def render_expr(expr: Expr) -> str:
    if isinstance(expr, Var):
        return expr.slot.name
    if isinstance(expr, Lit):
        return _literal(expr)
    if isinstance(expr, Bin):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, Not):
        return f"!{render_expr(expr.operand)}"
    if isinstance(expr, CallFree):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, CallLocal):
        args = ", ".join(render_expr(a) for a in expr.args)
        first, *rest = expr.name_subtokens
        name = first + "".join(part.capitalize() for part in rest)
        return f"{name}({args})"
    if isinstance(expr, Len):
        return f"{render_expr(expr.operand)}.length"
    if isinstance(expr, Index):
        return f"{render_expr(expr.collection)}[{render_expr(expr.index)}]"
    if isinstance(expr, MapGet):
        return f"{render_expr(expr.map)}[{render_expr(expr.key)}]"
    if isinstance(expr, MapHas):
        return f"{render_expr(expr.map)}.hasOwnProperty({render_expr(expr.key)})"
    if isinstance(expr, StrCat):
        return f"({render_expr(expr.left)} + {render_expr(expr.right)})"
    if isinstance(expr, NewCollection):
        return "{}" if expr.type == MAP_STR_INT else "[]"
    raise TypeError(f"unknown expression {expr!r}")


def _literal(lit: Lit) -> str:
    if lit.value is None:
        return "null"
    if lit.type == BOOL:
        return "true" if lit.value else "false"
    if lit.type == STRING:
        return '"' + str(lit.value) + '"'
    return repr(lit.value)


def render_stmt(stmt: Stmt, depth: int) -> List[str]:
    pad = _INDENT * depth
    if isinstance(stmt, Decl):
        if stmt.init is None:
            return [f"{pad}var {stmt.slot.name};"]
        return [f"{pad}var {stmt.slot.name} = {render_expr(stmt.init)};"]
    if isinstance(stmt, Assign):
        return [f"{pad}{render_expr(stmt.target)} = {render_expr(stmt.value)};"]
    if isinstance(stmt, Aug):
        return [f"{pad}{render_expr(stmt.target)} {stmt.op}= {render_expr(stmt.value)};"]
    if isinstance(stmt, Incr):
        return [f"{pad}{render_expr(stmt.target)}++;"]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({render_expr(stmt.cond)}) {{"]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.orelse:
                lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while ({render_expr(stmt.cond)}) {{"]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ForRange):
        name = stmt.slot.name
        header = (
            f"{pad}for (var {name} = 0; {name} < {render_expr(stmt.stop)}; {name}++) {{"
        )
        lines = [header]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ForEach):
        lines = [f"{pad}for (var {stmt.slot.name} of {render_expr(stmt.iterable)}) {{"]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, Return):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {render_expr(stmt.value)};"]
    if isinstance(stmt, ExprStmt):
        return [f"{pad}{render_expr(stmt.expr)};"]
    if isinstance(stmt, Break):
        return [f"{pad}break;"]
    if isinstance(stmt, Append):
        return [f"{pad}{render_expr(stmt.collection)}.push({render_expr(stmt.value)});"]
    if isinstance(stmt, MapPut):
        return [
            f"{pad}{render_expr(stmt.map)}[{render_expr(stmt.key)}] = "
            f"{render_expr(stmt.value)};"
        ]
    if isinstance(stmt, Throw):
        return [f'{pad}throw new Error("{stmt.message}");']
    raise TypeError(f"unknown statement {stmt!r}")


def render_function(fn: Function) -> str:
    params = ", ".join(p.name for p in fn.params)
    lines = [f"function {fn.camel_name()}({params}) {{"]
    for stmt in fn.body:
        lines.extend(render_stmt(stmt, 1))
    lines.append("}")
    return "\n".join(lines)


def render_file(spec: FileSpec) -> str:
    """Render a file spec to a JavaScript module."""
    chunks = [render_function(fn) for fn in spec.functions]
    return "\n\n".join(chunks) + "\n"
