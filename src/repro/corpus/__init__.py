"""Synthetic code-corpus substrate.

The paper trains on multi-gigabyte GitHub corpora (Table 1); offline, we
substitute a deterministic generator that emits semantically-coherent
programs in all four languages from shared semantic templates.  See
DESIGN.md for why the substitution preserves the evaluation's shape.
"""

from .generator import CorpusConfig, CorpusFile, generate_corpus
from .dedup import deduplicate
from .splits import split_corpus

__all__ = [
    "CorpusConfig",
    "CorpusFile",
    "generate_corpus",
    "deduplicate",
    "split_corpus",
]
