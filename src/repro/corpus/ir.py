"""Language-independent program IR used by the corpus generator.

Semantic templates (``templates.py``) build functions in this IR; the
per-language renderers (``render_*.py``) lower it to concrete source
text, which the corresponding frontend then parses back.  The IR is
deliberately tiny: just enough structure to express the naming patterns
the paper's tasks learn (flags, counters, accumulators, searches,
builders, handlers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

# ----------------------------------------------------------------------
# Types
# ----------------------------------------------------------------------

#: Abstract type tags, lowered per language by the renderers.
INT = "int"
DOUBLE = "double"
BOOL = "bool"
STRING = "string"
LIST_INT = "list<int>"
LIST_STRING = "list<string>"
MAP_STR_INT = "map<string,int>"
VOID = "void"
OBJECT = "object"

#: Custom project types: ``custom:<SimpleName>``.  The Java/C# renderers
#: qualify the simple name with a *project-dependent* package, so the
#: same simple name maps to different full types across projects -- the
#: ambiguity that makes the paper's full-type task nontrivial
#: (``com.mysql.jdbc.Connection`` vs ``org.apache.http.Connection``).
CUSTOM_PREFIX = "custom:"


def custom_type(simple_name: str) -> str:
    return CUSTOM_PREFIX + simple_name


def is_custom(type_tag: str) -> bool:
    return type_tag.startswith(CUSTOM_PREFIX)


def custom_simple_name(type_tag: str) -> str:
    if not is_custom(type_tag):
        raise ValueError(f"not a custom type tag: {type_tag}")
    return type_tag[len(CUSTOM_PREFIX):]


ALL_TYPES = (INT, DOUBLE, BOOL, STRING, LIST_INT, LIST_STRING, MAP_STR_INT, VOID, OBJECT)


def element_type(collection_type: str) -> str:
    """Element type of a collection tag."""
    if collection_type == LIST_INT:
        return INT
    if collection_type == LIST_STRING:
        return STRING
    if collection_type == MAP_STR_INT:
        return INT
    raise ValueError(f"not a collection type: {collection_type}")


# ----------------------------------------------------------------------
# Variables
# ----------------------------------------------------------------------


@dataclass
class VarSlot:
    """A named variable (local or parameter) in a generated function."""

    name: str
    type: str
    kind: str = "local"  # "local" | "param"


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class Var:
    slot: VarSlot


@dataclass
class Lit:
    value: Union[int, float, bool, str, None]
    type: str


@dataclass
class Bin:
    op: str  # + - * / % == != < > <= >= && ||
    left: "Expr"
    right: "Expr"


@dataclass
class Not:
    operand: "Expr"


@dataclass
class CallFree:
    """Call to a free/domain function, e.g. ``someCondition()``."""

    name: str
    args: List["Expr"] = field(default_factory=list)
    return_type: str = OBJECT


@dataclass
class CallLocal:
    """Call to a method defined in the same file.

    Renderers style the name per language (camelCase for JS/Java,
    snake_case for Python, PascalCase for C#); these are the invocation
    sites the method-naming task's *external paths* come from.
    """

    name_subtokens: Tuple[str, ...]
    args: List["Expr"] = field(default_factory=list)
    return_type: str = VOID


@dataclass
class Len:
    """Collection/string length; lowered per language."""

    operand: "Expr"


@dataclass
class Index:
    collection: "Expr"
    index: "Expr"


@dataclass
class MapGet:
    map: "Expr"
    key: "Expr"


@dataclass
class MapHas:
    map: "Expr"
    key: "Expr"


@dataclass
class StrCat:
    left: "Expr"
    right: "Expr"


@dataclass
class NewCollection:
    type: str  # LIST_INT / LIST_STRING / MAP_STR_INT


Expr = Union[
    Var, Lit, Bin, Not, CallFree, CallLocal, Len, Index, MapGet, MapHas, StrCat,
    NewCollection,
]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Decl:
    slot: VarSlot
    init: Optional[Expr] = None


@dataclass
class Assign:
    target: Expr  # Var or Index
    value: Expr


@dataclass
class Aug:
    target: Var
    op: str  # + - *
    value: Expr


@dataclass
class Incr:
    target: Var


@dataclass
class If:
    cond: Expr
    body: List["Stmt"]
    orelse: List["Stmt"] = field(default_factory=list)


@dataclass
class While:
    cond: Expr
    body: List["Stmt"]


@dataclass
class ForRange:
    """``for (int i = 0; i < stop; i++)`` and per-language equivalents."""

    slot: VarSlot
    stop: Expr
    body: List["Stmt"]


@dataclass
class ForEach:
    slot: VarSlot
    iterable: Expr
    body: List["Stmt"]


@dataclass
class Return:
    value: Optional[Expr] = None


@dataclass
class ExprStmt:
    expr: Expr


@dataclass
class Break:
    pass


@dataclass
class Append:
    """Append to a list; lowered to push/add/append/Add."""

    collection: Expr
    value: Expr


@dataclass
class MapPut:
    map: Expr
    key: Expr
    value: Expr


@dataclass
class Throw:
    message: str


Stmt = Union[
    Decl, Assign, Aug, Incr, If, While, ForRange, ForEach, Return, ExprStmt, Break,
    Append, MapPut, Throw,
]


# ----------------------------------------------------------------------
# Functions / files
# ----------------------------------------------------------------------


@dataclass
class Function:
    """One generated function/method."""

    #: Method name as subtokens, e.g. ("count", "items") -> countItems.
    name_subtokens: Tuple[str, ...]
    params: List[VarSlot]
    body: List[Stmt]
    return_type: str = VOID
    #: Template that produced this function (for analysis/ablation).
    template: str = ""

    def camel_name(self) -> str:
        first, *rest = self.name_subtokens
        return first + "".join(part.capitalize() for part in rest)

    def pascal_name(self) -> str:
        return "".join(part.capitalize() for part in self.name_subtokens)

    def snake_name(self) -> str:
        return "_".join(self.name_subtokens)


@dataclass
class FileSpec:
    """One generated source file (a class with methods, or a script)."""

    project: str
    module: str
    functions: List[Function]
    class_name: str = ""


def expr_type(expr: Expr) -> str:
    """Static type of an IR expression (used by the renderers)."""
    if isinstance(expr, Var):
        return expr.slot.type
    if isinstance(expr, Lit):
        return expr.type
    if isinstance(expr, Bin):
        if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return BOOL
        left = expr_type(expr.left)
        right = expr_type(expr.right)
        if STRING in (left, right):
            return STRING
        if DOUBLE in (left, right):
            return DOUBLE
        return INT
    if isinstance(expr, Not):
        return BOOL
    if isinstance(expr, (CallFree, CallLocal)):
        return expr.return_type
    if isinstance(expr, Len):
        return INT
    if isinstance(expr, Index):
        return element_type(expr_type(expr.collection))
    if isinstance(expr, MapGet):
        return element_type(expr_type(expr.map))
    if isinstance(expr, MapHas):
        return BOOL
    if isinstance(expr, StrCat):
        return STRING
    if isinstance(expr, NewCollection):
        return expr.type
    raise TypeError(f"unknown expression {expr!r}")


def default_value(type_tag: str) -> Expr:
    """A literal/constructor of the given type (used for caller stubs)."""
    if type_tag == INT:
        return Lit(0, INT)
    if type_tag == DOUBLE:
        return Lit(0.0, DOUBLE)
    if type_tag == BOOL:
        return Lit(True, BOOL)
    if type_tag == STRING:
        return Lit("x", STRING)
    if type_tag in (LIST_INT, LIST_STRING, MAP_STR_INT):
        return NewCollection(type_tag)
    return Lit(None, OBJECT)


def all_slots(fn: Function) -> List[VarSlot]:
    """Every distinct variable slot of a function (params + locals)."""
    seen: List[VarSlot] = []

    def expr_slots(expr: Expr) -> None:
        if isinstance(expr, Var):
            if expr.slot not in seen:
                seen.append(expr.slot)
        elif isinstance(expr, (Bin, StrCat)):
            expr_slots(expr.left)
            expr_slots(expr.right)
        elif isinstance(expr, Not):
            expr_slots(expr.operand)
        elif isinstance(expr, Len):
            expr_slots(expr.operand)
        elif isinstance(expr, Index):
            expr_slots(expr.collection)
            expr_slots(expr.index)
        elif isinstance(expr, (MapGet, MapHas)):
            expr_slots(expr.map)
            expr_slots(expr.key)
        elif isinstance(expr, (CallFree, CallLocal)):
            for arg in expr.args:
                expr_slots(arg)

    def stmt_slots(stmt: Stmt) -> None:
        if isinstance(stmt, Decl):
            if stmt.slot not in seen:
                seen.append(stmt.slot)
            if stmt.init is not None:
                expr_slots(stmt.init)
        elif isinstance(stmt, Assign):
            expr_slots(stmt.target)
            expr_slots(stmt.value)
        elif isinstance(stmt, Aug):
            expr_slots(stmt.target)
            expr_slots(stmt.value)
        elif isinstance(stmt, Incr):
            expr_slots(stmt.target)
        elif isinstance(stmt, If):
            expr_slots(stmt.cond)
            for s in stmt.body:
                stmt_slots(s)
            for s in stmt.orelse:
                stmt_slots(s)
        elif isinstance(stmt, While):
            expr_slots(stmt.cond)
            for s in stmt.body:
                stmt_slots(s)
        elif isinstance(stmt, ForRange):
            if stmt.slot not in seen:
                seen.append(stmt.slot)
            expr_slots(stmt.stop)
            for s in stmt.body:
                stmt_slots(s)
        elif isinstance(stmt, ForEach):
            if stmt.slot not in seen:
                seen.append(stmt.slot)
            expr_slots(stmt.iterable)
            for s in stmt.body:
                stmt_slots(s)
        elif isinstance(stmt, Return) and stmt.value is not None:
            expr_slots(stmt.value)
        elif isinstance(stmt, ExprStmt):
            expr_slots(stmt.expr)
        elif isinstance(stmt, Append):
            expr_slots(stmt.collection)
            expr_slots(stmt.value)
        elif isinstance(stmt, MapPut):
            expr_slots(stmt.map)
            expr_slots(stmt.key)
            expr_slots(stmt.value)

    for param in fn.params:
        if param not in seen:
            seen.append(param)
    for stmt in fn.body:
        stmt_slots(stmt)
    return seen
