"""Lower the corpus IR to Java source text (typed)."""

from __future__ import annotations

from typing import List, Set

from .ir import (
    BOOL,
    CUSTOM_PREFIX,
    DOUBLE,
    INT,
    LIST_INT,
    LIST_STRING,
    MAP_STR_INT,
    OBJECT,
    STRING,
    VOID,
    Append,
    Assign,
    Aug,
    Bin,
    Break,
    CallFree,
    CallLocal,
    Decl,
    Expr,
    ExprStmt,
    FileSpec,
    ForEach,
    ForRange,
    Function,
    If,
    Incr,
    Index,
    Len,
    Lit,
    MapGet,
    MapHas,
    MapPut,
    NewCollection,
    Not,
    Return,
    Stmt,
    StrCat,
    Throw,
    Var,
    While,
    expr_type,
)

_INDENT = "    "

_TYPE_NAMES = {
    INT: "int",
    DOUBLE: "double",
    BOOL: "boolean",
    STRING: "String",
    LIST_INT: "List<Integer>",
    LIST_STRING: "List<String>",
    MAP_STR_INT: "Map<String, Integer>",
    VOID: "void",
    OBJECT: "Object",
}

_IMPORTS = {
    LIST_INT: ("java.util.List", "java.util.ArrayList"),
    LIST_STRING: ("java.util.List", "java.util.ArrayList"),
    MAP_STR_INT: ("java.util.Map", "java.util.HashMap"),
}

_OP_MAP = {"&&": "&&", "||": "||"}


def java_type(type_tag: str) -> str:
    if type_tag.startswith(CUSTOM_PREFIX):
        return type_tag[len(CUSTOM_PREFIX):]
    return _TYPE_NAMES[type_tag]


def render_expr(expr: Expr) -> str:
    if isinstance(expr, Var):
        return expr.slot.name
    if isinstance(expr, Lit):
        return _literal(expr)
    if isinstance(expr, Bin):
        op = _OP_MAP.get(expr.op, expr.op)
        return f"({render_expr(expr.left)} {op} {render_expr(expr.right)})"
    if isinstance(expr, Not):
        return f"!{render_expr(expr.operand)}"
    if isinstance(expr, CallFree):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, CallLocal):
        args = ", ".join(render_expr(a) for a in expr.args)
        first, *rest = expr.name_subtokens
        name = first + "".join(part.capitalize() for part in rest)
        return f"{name}({args})"
    if isinstance(expr, Len):
        operand = render_expr(expr.operand)
        if expr_type(expr.operand) == STRING:
            return f"{operand}.length()"
        return f"{operand}.size()"
    if isinstance(expr, Index):
        return f"{render_expr(expr.collection)}.get({render_expr(expr.index)})"
    if isinstance(expr, MapGet):
        return f"{render_expr(expr.map)}.get({render_expr(expr.key)})"
    if isinstance(expr, MapHas):
        return f"{render_expr(expr.map)}.containsKey({render_expr(expr.key)})"
    if isinstance(expr, StrCat):
        return f"({render_expr(expr.left)} + {render_expr(expr.right)})"
    if isinstance(expr, NewCollection):
        if expr.type == MAP_STR_INT:
            return "new HashMap<String, Integer>()"
        if expr.type == LIST_STRING:
            return "new ArrayList<String>()"
        return "new ArrayList<Integer>()"
    raise TypeError(f"unknown expression {expr!r}")


def _literal(lit: Lit) -> str:
    if lit.value is None:
        return "null"
    if lit.type == BOOL:
        return "true" if lit.value else "false"
    if lit.type == STRING:
        return '"' + str(lit.value) + '"'
    if lit.type == DOUBLE:
        text = repr(float(lit.value))
        return text if "." in text or "e" in text else text + ".0"
    return repr(lit.value)


def render_stmt(stmt: Stmt, depth: int) -> List[str]:
    pad = _INDENT * depth
    if isinstance(stmt, Decl):
        type_name = java_type(stmt.slot.type)
        if stmt.init is None:
            return [f"{pad}{type_name} {stmt.slot.name};"]
        return [f"{pad}{type_name} {stmt.slot.name} = {render_expr(stmt.init)};"]
    if isinstance(stmt, Assign):
        return [f"{pad}{render_expr(stmt.target)} = {render_expr(stmt.value)};"]
    if isinstance(stmt, Aug):
        return [f"{pad}{render_expr(stmt.target)} {stmt.op}= {render_expr(stmt.value)};"]
    if isinstance(stmt, Incr):
        return [f"{pad}{render_expr(stmt.target)}++;"]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({render_expr(stmt.cond)}) {{"]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.orelse:
                lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while ({render_expr(stmt.cond)}) {{"]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ForRange):
        name = stmt.slot.name
        lines = [
            f"{pad}for (int {name} = 0; {name} < {render_expr(stmt.stop)}; {name}++) {{"
        ]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ForEach):
        elem_type = java_type(stmt.slot.type)
        lines = [
            f"{pad}for ({elem_type} {stmt.slot.name} : {render_expr(stmt.iterable)}) {{"
        ]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, Return):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {render_expr(stmt.value)};"]
    if isinstance(stmt, ExprStmt):
        return [f"{pad}{render_expr(stmt.expr)};"]
    if isinstance(stmt, Break):
        return [f"{pad}break;"]
    if isinstance(stmt, Append):
        return [f"{pad}{render_expr(stmt.collection)}.add({render_expr(stmt.value)});"]
    if isinstance(stmt, MapPut):
        return [
            f"{pad}{render_expr(stmt.map)}.put({render_expr(stmt.key)}, "
            f"{render_expr(stmt.value)});"
        ]
    if isinstance(stmt, Throw):
        return [f'{pad}throw new IllegalArgumentException("{stmt.message}");']
    raise TypeError(f"unknown statement {stmt!r}")


def _collect_imports(spec: FileSpec) -> List[str]:
    needed: Set[str] = set()

    def scan_type(tag: str) -> None:
        if tag.startswith(CUSTOM_PREFIX):
            # Custom classes qualify with a project-dependent package, so
            # the same simple name denotes different full types across
            # projects (the full-type task's ambiguity source).
            simple = tag[len(CUSTOM_PREFIX):]
            needed.add(f"com.{spec.project}.net.{simple}")
            return
        for imp in _IMPORTS.get(tag, ()):
            needed.add(imp)

    def scan_expr(expr: Expr) -> None:
        if isinstance(expr, NewCollection):
            scan_type(expr.type)
        for attr in ("left", "right", "operand", "collection", "index", "map", "key"):
            child = getattr(expr, attr, None)
            if child is not None and not isinstance(child, str):
                scan_expr(child)
        if isinstance(expr, CallFree):
            scan_type(expr.return_type)
            for arg in expr.args:
                scan_expr(arg)

    def scan_stmt(stmt: Stmt) -> None:
        for attr in ("init", "target", "value", "cond", "stop", "iterable", "expr", "key", "map", "collection"):
            child = getattr(stmt, attr, None)
            if child is not None and not isinstance(child, (str, list)):
                scan_expr(child)
        if isinstance(stmt, (Decl,)):
            scan_type(stmt.slot.type)
        if isinstance(stmt, (ForRange, ForEach)):
            scan_type(stmt.slot.type)
        for attr in ("body", "orelse"):
            for inner in getattr(stmt, attr, ()) or ():
                scan_stmt(inner)

    for fn in spec.functions:
        scan_type(fn.return_type)
        for param in fn.params:
            scan_type(param.type)
        for stmt in fn.body:
            scan_stmt(stmt)
    return sorted(needed)


def render_function(fn: Function) -> str:
    params = ", ".join(f"{java_type(p.type)} {p.name}" for p in fn.params)
    header = f"{_INDENT}public {java_type(fn.return_type)} {fn.camel_name()}({params}) {{"
    lines = [header]
    for stmt in fn.body:
        lines.extend(render_stmt(stmt, 2))
    lines.append(f"{_INDENT}}}")
    return "\n".join(lines)


def render_file(spec: FileSpec) -> str:
    """Render a file spec to a Java compilation unit."""
    class_name = spec.class_name or "".join(
        part.capitalize() for part in spec.module.split("_")
    )
    lines = [f"package com.{spec.project}.app;", ""]
    imports = _collect_imports(spec)
    for imp in imports:
        lines.append(f"import {imp};")
    if imports:
        lines.append("")
    lines.append(f"public class {class_name} {{")
    lines.append("")
    for fn in spec.functions:
        lines.append(render_function(fn))
        lines.append("")
    lines.append("}")
    return "\n".join(lines) + "\n"
