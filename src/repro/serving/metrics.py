"""Request-level serving metrics.

:class:`FixedHistogram` is the small latency histogram the server keeps
per endpoint and the fleet's capacity model consumes through ``/stats``:
fixed millisecond buckets (so histograms from different replicas line up
and can be merged by simple addition), plus count/sum/max so a mean
service time falls out without storing samples.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Upper bucket bounds in milliseconds; the final bucket is unbounded.
#: Fixed across every server so per-replica histograms are mergeable.
LATENCY_BUCKETS_MS: Sequence[float] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class FixedHistogram:
    """A fixed-bucket latency histogram with count/sum/max counters.

    Single-writer (the server's event loop records into it); readers see
    a consistent-enough snapshot because every field is a scalar or an
    append-free list under the GIL.
    """

    __slots__ = ("bounds_ms", "counts", "count", "sum_ms", "max_ms")

    def __init__(self, bounds_ms: Sequence[float] = LATENCY_BUCKETS_MS) -> None:
        self.bounds_ms: List[float] = list(bounds_ms)
        self.counts: List[int] = [0] * (len(self.bounds_ms) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1000.0
        slot = len(self.bounds_ms)  # overflow bucket by default
        for index, bound in enumerate(self.bounds_ms):
            if ms <= bound:
                slot = index
                break
        self.counts[slot] += 1
        self.count += 1
        self.sum_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms

    @property
    def mean_ms(self) -> float:
        return self.sum_ms / self.count if self.count else 0.0

    def quantile_ms(self, fraction: float) -> float:
        """A bucket-resolution quantile estimate (upper bound of the bucket).

        Good enough for capacity planning; the overflow bucket reports
        the observed maximum since no upper bound exists there.
        """
        if not self.count:
            return 0.0
        target = max(1, int(round(fraction * self.count)))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target:
                if index < len(self.bounds_ms):
                    return self.bounds_ms[index]
                return self.max_ms
        return self.max_ms  # pragma: no cover - loop always reaches target

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds_ms": list(self.bounds_ms),
            "counts": list(self.counts),
            "count": self.count,
            "sum_ms": round(self.sum_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "p95_ms": round(self.quantile_ms(0.95), 3),
        }

    @classmethod
    def merge(cls, histograms: Sequence[Dict[str, object]]) -> Dict[str, object]:
        """Merge ``to_dict()`` snapshots from replicas (same fixed buckets)."""
        merged = cls()
        for snapshot in histograms:
            if not snapshot or snapshot.get("bounds_ms") != merged.bounds_ms:
                continue
            counts = snapshot.get("counts", [])
            for index, value in enumerate(counts[: len(merged.counts)]):
                merged.counts[index] += int(value)
            merged.count += int(snapshot.get("count", 0))
            merged.sum_ms += float(snapshot.get("sum_ms", 0.0))
            merged.max_ms = max(merged.max_ms, float(snapshot.get("max_ms", 0.0)))
        return merged.to_dict()
