"""The asyncio HTTP prediction server (stdlib only).

``PredictionServer`` wires the serving pieces together around one event
loop:

* connections are accepted and parsed as HTTP/1.1 with keep-alive;
* ``POST /predict`` requests are routed to a model, fingerprinted
  (:func:`~repro.core.extraction.ast_digest` of the parsed source,
  computed off-loop), and answered from the LRU response cache when the
  same program x task was already scored;
* cache misses join the :class:`~repro.serving.batching.MicroBatcher`
  queue and fan out to the :class:`~repro.serving.host.ModelHost`;
  concurrent duplicates of an in-flight request coalesce onto the same
  scoring future instead of being scored twice;
* ``GET /healthz`` and ``GET /stats`` report liveness and counters;
* shutdown is graceful: the listener closes first, queued work drains
  through the batcher, then open connections finish.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict, Optional, Tuple

from ..resilience import faults
from ..resilience.faults import FaultInjected
from .batching import BatcherClosed, MicroBatcher
from .cache import LruCache
from .host import ModelHost, PredictRequest
from .http import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    BadRequest as _BadRequest,
    HttpRequest as _HttpRequest,
    read_request,
    respond,
)
from .metrics import FixedHistogram

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "PredictionServer",
    "ServerThread",
]


class PredictionServer:
    """One model host behind a micro-batched, cached asyncio HTTP server."""

    def __init__(
        self,
        host: ModelHost,
        address: str = "127.0.0.1",
        port: int = 8017,
        batch_size: int = 8,
        batch_wait_ms: float = 2.0,
        cache_size: int = 1024,
    ) -> None:
        self.host = host
        self.address = address
        self.port = port
        self.cache = LruCache(cache_size)
        self.batcher = MicroBatcher(
            self.host.score_batch, batch_size=batch_size, batch_wait_ms=batch_wait_ms
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight: Dict[Tuple, "asyncio.Future"] = {}
        self._connection_tasks: set = set()
        self._connections = 0
        self._active_requests = 0
        self._requests = 0
        self._predictions = 0
        self._coalesced = 0
        self._errors = 0
        self._draining = False
        self._started_monotonic = 0.0
        #: Per-endpoint request-latency histograms (fixed buckets, so a
        #: fleet can merge replicas' histograms by addition).
        self._latency: Dict[str, FixedHistogram] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Warm the workers, start batching, bind the listener."""
        self.host.start()
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.address, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish everything in flight."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Everything already queued scores before the batcher stops.
        await self.batcher.close()
        # ... and every response for an accepted request is written out
        # before the loop may be torn down (idle keep-alive connections
        # are not waited for -- the drain covers requests, not sockets).
        deadline = time.monotonic() + 30.0
        while self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        # Idle keep-alive connections are parked in _read_request; cancel
        # them now so no handler coroutine outlives the event loop (a
        # GC'd pending handler would try to close its transport on a
        # dead loop).
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        self.host.close()

    async def abort(self) -> None:
        """Die *now*: close the listener and every connection, no drain.

        The deliberately rude counterpart of :meth:`shutdown`, used by
        fleet tests (and :meth:`ReplicaThread.kill`) to simulate a
        crashed replica: in-flight requests see a connection reset, which
        is exactly what the front tier's retry-on-successor must absorb.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            self._server = None
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        try:
            await self.batcher.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        self.host.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    @property
    def url(self) -> str:
        return f"http://{self.address}:{self.port}"

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except _BadRequest as error:
                    await respond(
                        writer, error.status, {"error": str(error)}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                # Fault site "replica.accept": an injected fault drops the
                # connection cold after the request was read -- the client
                # sees a reset with no response, exactly the signature a
                # replica dying mid-accept produces, which is what the
                # router's failover path must absorb.
                try:
                    action = faults.fire("replica.accept")
                except FaultInjected:
                    action = "drop"
                if action is not None:
                    if action == "timeout":
                        await asyncio.sleep(faults.TIMEOUT_SLEEP_S)
                    break
                self._requests += 1
                self._active_requests += 1
                started = time.perf_counter()
                try:
                    routed = await self._route(request)
                    status, payload = routed[0], routed[1]
                    headers = routed[2] if len(routed) > 2 else None
                    if status >= 400:
                        self._errors += 1
                    self._observe_latency(
                        request.path, time.perf_counter() - started
                    )
                    await respond(
                        writer,
                        status,
                        payload,
                        keep_alive=request.keep_alive,
                        extra_headers=headers,
                    )
                finally:
                    self._active_requests -= 1
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Connection tasks are only cancelled by shutdown()/abort(),
            # which await them right after; completing normally here (a
            # deliberate swallow) keeps asyncio's stream machinery from
            # logging every teardown as an unhandled cancellation.
            pass
        finally:
            if task is not None:
                self._connection_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass

    def _observe_latency(self, path: str, seconds: float) -> None:
        histogram = self._latency.get(path)
        if histogram is None:
            if len(self._latency) >= 16:  # unknown-path flood guard
                return
            histogram = self._latency[path] = FixedHistogram()
        histogram.observe(seconds)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, request: _HttpRequest) -> tuple:
        # Routes return (status, payload) or (status, payload, headers);
        # _handle_connection normalises, so only responses that carry
        # extra headers (the Retry-After 503s) pay the third element.
        if request.path == "/predict":
            if request.method != "POST":
                return 405, {"error": "use POST /predict"}
            return await self._predict(request)
        if request.path == "/healthz":
            if request.method != "GET":
                return 405, {"error": "use GET /healthz"}
            return self._healthz()
        if request.path == "/stats":
            if request.method != "GET":
                return 405, {"error": "use GET /stats"}
            return 200, self.stats()
        return 404, {
            "error": f"unknown path {request.path!r}; "
            f"routes: POST /predict, GET /healthz, GET /stats"
        }

    def _healthz(self) -> Tuple[int, dict]:
        status = "draining" if self._draining else "ok"
        return (503 if self._draining else 200), {
            "status": status,
            "state": status,
            "models": self.host.cells(),
            "workers": self.host.workers,
            "inflight": self._active_requests,
            "queued": self.batcher.depth,
            "uptime_seconds": round(self._uptime(), 3),
        }

    def stats(self) -> dict:
        extraction = {
            handle.cell: handle.extraction_stats()
            for handle in self.host.handles.values()
        }
        engines = {
            handle.cell: handle.engine
            for handle in self.host.handles.values()
            if handle.engine is not None
        }
        return {
            "uptime_seconds": round(self._uptime(), 3),
            "connections": self._connections,
            "requests": self._requests,
            "predictions": self._predictions,
            "coalesced": self._coalesced,
            "errors": self._errors,
            "draining": self._draining,
            # What the fleet's grey-box capacity model consumes: current
            # congestion (queue depth + in-flight) and per-endpoint
            # latency histograms to fit a service rate from.
            "inflight": self._active_requests,
            "queue_depth": self.batcher.depth,
            "latency": {
                path: histogram.to_dict()
                for path, histogram in self._latency.items()
            },
            "cache": self.cache.stats(),
            "batcher": self.batcher.stats(),
            "extraction": extraction,
            # Which inference engine each served cell scores with
            # (cells whose learner has no engine knob are omitted).
            "engines": engines,
            # Per-model artifact format and cold-start load latency.
            "models": self.host.model_stats(),
        }

    def _uptime(self) -> float:
        if not self._started_monotonic:
            return 0.0
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------
    # The /predict pipeline
    # ------------------------------------------------------------------
    #: Retry-After hint on replica-side 503s: a draining replica is
    #: restarting (or its successor is taking over) within tens of
    #: milliseconds, so clients should re-knock quickly, not back off
    #: for seconds.
    RETRY_AFTER_S = "0.05"

    def _unavailable(self, reason: str) -> tuple:
        return 503, {"error": reason}, {"Retry-After": self.RETRY_AFTER_S}

    async def _predict(self, request: _HttpRequest) -> tuple:
        if self._draining:
            return self._unavailable("server is draining; retry elsewhere")
        # Fault site "replica.respond": "unavail" answers 503 as if the
        # replica were overloaded; "timeout" stalls the response past a
        # caller's patience; "error" surfaces as a clean 500.
        try:
            action = faults.fire("replica.respond")
        except FaultInjected as error:
            return 500, {"error": f"injected fault: {error}"}
        if action == "unavail":
            return self._unavailable("injected unavailability; retry elsewhere")
        if action == "timeout":
            await asyncio.sleep(faults.TIMEOUT_SLEEP_S)
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"body is not valid JSON: {error}"}
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            return 400, {"error": "field 'source' (non-empty string) is required"}
        language = payload.get("language")
        task = payload.get("task")
        for field_name, value in (("language", language), ("task", task)):
            if value is not None and not isinstance(value, str):
                return 400, {"error": f"field {field_name!r} must be a string"}
        top = payload.get("top", 0)
        if not isinstance(top, int) or isinstance(top, bool) or top < 0:
            return 400, {"error": "field 'top' must be a non-negative integer"}
        target_language = payload.get("target_language")
        if target_language is not None and not isinstance(target_language, str):
            return 400, {"error": "field 'target_language' must be a string"}
        unknown = sorted(
            set(payload) - {"source", "language", "task", "top", "target_language"}
        )
        if unknown:
            return 400, {"error": f"unknown fields: {', '.join(unknown)}"}

        try:
            handle = self.host.resolve(language, task)
        except LookupError as error:
            return 404, {"error": str(error)}

        if handle.spec.task == "translate":
            from ..translate import RENDERERS

            if target_language is None:
                return 400, {
                    "error": "task 'translate' requires field 'target_language'"
                }
            if target_language not in RENDERERS:
                known = ", ".join(sorted(RENDERERS))
                return 400, {
                    "error": f"unknown target_language {target_language!r}; "
                    f"known: {known}"
                }
            if top > 0:
                return 400, {
                    "error": "task 'translate' returns translated source, "
                    "not top-k suggestions; drop 'top'"
                }
        elif target_language is not None:
            return 400, {
                "error": "field 'target_language' only applies to task 'translate'"
            }

        loop = asyncio.get_running_loop()
        try:
            program, fingerprint = await loop.run_in_executor(
                None, handle.fingerprinted, source
            )
        except Exception as error:  # noqa: BLE001 - parser errors are user input
            return 400, {"error": f"cannot parse source: {error}"}

        # The response key must carry everything that changes the answer:
        # the digest only covers program *structure*, so two sources that
        # differ in source language (served by different cells) or in
        # requested target language must not share an entry or coalesce
        # onto each other's in-flight future.
        spec = handle.spec
        key = (handle.cell, spec.language, target_language, top, fingerprint)
        cached = self.cache.get(key)
        if cached is not None:
            return 200, dict(cached, cached=True)

        scoring = PredictRequest(
            source=source,
            language=spec.language,
            task=spec.task,
            top=top,
            target_language=target_language,
            # In-process scoring reuses the parse that produced the
            # fingerprint; worker-pool requests re-parse in the worker
            # rather than pickling an AST across the process boundary.
            program=program if self.host.workers == 0 else None,
        )
        inflight = self._inflight.get(key)
        if inflight is not None:
            # A bit-identical request is already being scored: share its
            # result instead of paying for a second extraction.
            self._coalesced += 1
            try:
                result = await asyncio.shield(inflight)
            except asyncio.CancelledError:
                return self._unavailable("server is draining; retry elsewhere")
            except Exception as error:  # noqa: BLE001 - surfaced as HTTP 500
                return 500, {"error": f"scoring failed: {error}"}
            if "error" in result:
                return self._scoring_failure(result)
            return 200, dict(result, cached=True)
        future: "asyncio.Future" = loop.create_future()
        self._inflight[key] = future
        try:
            result = await self.batcher.submit(scoring)
            if "error" not in result:
                result = dict(result, fingerprint=fingerprint)
            future.set_result(result)  # coalescers see failures too
        except BatcherClosed:
            future.cancel()
            return self._unavailable("server is draining; retry elsewhere")
        except Exception as error:  # noqa: BLE001 - surfaced as HTTP 500
            future.set_exception(error)
            future.exception()  # consumed: the HTTP response carries it
            return 500, {"error": f"scoring failed: {error}"}
        finally:
            self._inflight.pop(key, None)
        if "error" in result:
            # This item failed in isolation (its batchmates are fine);
            # nothing is cached for it so a retry scores fresh.
            return self._scoring_failure(result)
        self.cache.put(key, result)
        self._predictions += 1
        return 200, dict(result, cached=False)

    @staticmethod
    def _scoring_failure(result: dict) -> tuple:
        """Map a failed scoring result to its HTTP response.

        Scoring marks *user-input* failures (a translate request using a
        construct the lifters reject) with an explicit 4xx ``status`` and
        structured detail; those pass through so clients see what to fix.
        Everything else is a server-side 500.  Neither is ever cached.
        """
        status = result.get("status", 500)
        if isinstance(status, int) and 400 <= status < 500:
            return status, {k: v for k, v in result.items() if k != "status"}
        return 500, {"error": f"scoring failed: {result['error']}"}


class ServerThread:
    """Run a :class:`PredictionServer` on a background event loop.

    The context manager used by tests, the benchmark and anything else
    that wants a live server inside a synchronous program::

        with ServerThread(server) as url:
            ServingClient(url).predict(source)

    Exit performs the same graceful drain as the CLI's signal handler.
    """

    def __init__(self, server: PredictionServer) -> None:
        self.server = server
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stopped = False

    def __enter__(self) -> str:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 60s")
        return self.server.url

    def __exit__(self, *_exc_info) -> None:
        if self.loop is None or self._stopped:
            return
        self._stopped = True
        asyncio.run_coroutine_threadsafe(self.server.shutdown(), self.loop).result(
            timeout=60
        )
        self.loop.call_soon_threadsafe(self.loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=60)

    def kill(self) -> None:
        """Stop abruptly, no drain: the crash-a-replica lever fleet tests use."""
        if self.loop is None or self._stopped:
            return
        self._stopped = True
        try:
            asyncio.run_coroutine_threadsafe(self.server.abort(), self.loop).result(
                timeout=30
            )
        except Exception:  # pragma: no cover - a crash is allowed to be messy
            pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self.loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as error:  # noqa: BLE001 - reported to __enter__
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()
