"""The serving response cache.

Responses are cached under ``(cell, language, target_language, top,
ast_digest)``: the digest (:func:`repro.core.extraction.ast_digest`)
covers the full tree structure, so two submissions share an entry
exactly when their parsed ASTs are identical -- byte-identical sources
and layout-only variants hit, structurally different programs never do
-- and a hit costs one parse instead of extraction plus CRF inference.
The source language and (for ``translate`` requests) the target language
are part of the key because the digest alone does not carry them: the
same structure parsed from two languages, or one source translated into
two targets, must neither share a cache entry nor coalesce onto the same
in-flight scoring future.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional


class LruCache:
    """A small thread-safe LRU map with hit/miss counters.

    ``capacity <= 0`` disables caching (every ``get`` misses, ``put`` is
    a no-op) while keeping the call sites unconditional.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }
