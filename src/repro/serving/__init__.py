"""Async batched prediction serving (the ROADMAP's "heavy traffic" path).

The subsystem turns a saved :class:`~repro.api.Pipeline` into an HTTP
service with the read-path properties PR 3 made possible:

:mod:`repro.serving.host`
    :class:`ModelHost` loads each model once, freezes its feature space
    through :meth:`Pipeline.scoring_handle`, and scores either in-process
    or on a pre-warmed ``ProcessPoolExecutor``.
:mod:`repro.serving.batching`
    :class:`MicroBatcher` collects requests for up to ``batch_size`` /
    ``batch_wait_ms`` and hands them to the host as one batch, keeping
    the event loop free to accept connections.
:mod:`repro.serving.cache`
    :class:`LruCache` keyed on ``ast_digest(source) x task``, so a
    duplicated submission never reaches extraction or inference.
:mod:`repro.serving.server`
    :class:`PredictionServer`, a stdlib-only asyncio HTTP server with
    ``POST /predict``, ``GET /healthz`` and ``GET /stats`` and a graceful
    drain on shutdown.
:mod:`repro.serving.client`
    :class:`ServingClient`, the blocking helper behind tests, the
    benchmark and ``pigeon predict --server``.
"""

from .batching import BatcherClosed, MicroBatcher
from .cache import LruCache
from .client import ServingClient, ServingError
from .host import ModelHost, PredictRequest
from .server import PredictionServer, ServerThread

__all__ = [
    "BatcherClosed",
    "LruCache",
    "MicroBatcher",
    "ModelHost",
    "PredictRequest",
    "PredictionServer",
    "ServerThread",
    "ServingClient",
    "ServingError",
]
