"""Shared HTTP/1.1 plumbing for the serving and fleet tiers.

Both :class:`~repro.serving.server.PredictionServer` (the single-replica
server) and :class:`~repro.fleet.router.FleetRouter` (the consistent-hash
front tier) speak the same small JSON-over-HTTP dialect; this module owns
the wire-level pieces they share:

* :func:`read_request` / :func:`respond` -- the server side: parse one
  keep-alive request off a stream, write one JSON response;
* :func:`http_call` -- the client side the router forwards with: one
  asyncio round-trip against a replica, optionally reusing a pooled
  connection;
* the size bounds and reason phrases both tiers agree on.

Everything is stdlib-only, like the rest of the serving stack.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

#: Request body / header-block size bounds (a serving DoS guard, not a
#: feature limit: a 1 MiB source file is far beyond corpus file sizes).
MAX_BODY_BYTES = 1 << 20
MAX_HEADER_BYTES = 16 << 10

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpRequest:
    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: Dict[str, str], body: bytes):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


class BadRequest(Exception):
    """Unparseable HTTP; answered with the status and the connection closed."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one HTTP/1.1 request; ``None`` on clean keep-alive EOF."""
    try:
        request_line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError) as error:
        raise BadRequest(400, f"oversized request line: {error}") from error
    if not request_line:
        return None  # clean EOF between keep-alive requests
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise BadRequest(400, "malformed HTTP request line")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError) as error:
            raise BadRequest(413, f"oversized header line: {error}") from error
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise BadRequest(413, "header block too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_header = headers.get("content-length", "0")
    try:
        content_length = int(length_header)
    except ValueError:
        raise BadRequest(400, f"bad Content-Length {length_header!r}")
    if content_length > MAX_BODY_BYTES:
        # Drain (a bounded amount of) the declared body first, so the
        # client finishes sending and receives the 413 instead of a
        # connection reset mid-upload.
        try:
            await reader.readexactly(min(content_length, 8 * MAX_BODY_BYTES))
        except asyncio.IncompleteReadError:
            pass
        raise BadRequest(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    if content_length > 0:
        body = await reader.readexactly(content_length)
    return HttpRequest(method, path.split("?", 1)[0], headers, body)


async def respond(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    keep_alive: bool,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Write one JSON response (with optional extra headers, e.g. Retry-After)."""
    body = json.dumps(payload).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()


# ----------------------------------------------------------------------
# The async client side (what the fleet router forwards with)
# ----------------------------------------------------------------------


class Connection:
    """One keep-alive client connection to a serving replica."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.closed = False

    @classmethod
    async def open(cls, host: str, port: int, timeout: float) -> "Connection":
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
        return cls(reader, writer)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self.writer.close()
            except RuntimeError:  # pragma: no cover - loop already gone
                pass

    async def call(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        timeout: float = 30.0,
        host_header: str = "fleet",
    ) -> Tuple[int, Dict[str, str], dict]:
        """One round-trip: returns (status, headers, decoded JSON payload).

        Any protocol or timeout failure closes the connection and
        re-raises; the caller decides whether to retry elsewhere.
        """
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host_header}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        ).encode("latin-1")
        try:
            self.writer.write(head + payload)
            await asyncio.wait_for(self.writer.drain(), timeout=timeout)
            status, headers, raw = await asyncio.wait_for(
                self._read_response(), timeout=timeout
            )
        except BaseException:
            self.close()
            raise
        if headers.get("connection", "keep-alive").lower() == "close":
            self.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        return status, headers, decoded

    async def _read_response(self) -> Tuple[int, Dict[str, str], bytes]:
        status_line = await self.reader.readline()
        if not status_line:
            raise ConnectionResetError("replica closed the connection")
        parts = status_line.decode("latin-1").strip().split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self.reader.readexactly(length) if length else b""
        return status, headers, raw


class ConnectionPool:
    """A small per-replica pool of keep-alive :class:`Connection` objects.

    The router holds one pool per replica; concurrent forwards each
    acquire their own connection (creating one when the pool is dry) and
    return it on success.  Failed connections are closed, never pooled.
    """

    def __init__(self, host: str, port: int, max_idle: int = 8) -> None:
        self.host = host
        self.port = port
        self.max_idle = max_idle
        self._idle: list = []

    async def acquire(self, timeout: float) -> Connection:
        while self._idle:
            connection = self._idle.pop()
            if not connection.closed:
                return connection
        return await Connection.open(self.host, self.port, timeout)

    def release(self, connection: Connection) -> None:
        if connection.closed or len(self._idle) >= self.max_idle:
            connection.close()
        else:
            self._idle.append(connection)

    def close(self) -> None:
        while self._idle:
            self._idle.pop().close()

    async def call(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        timeout: float = 30.0,
    ) -> Tuple[int, Dict[str, str], dict]:
        """Acquire -> round-trip -> release (close on failure)."""
        connection = await self.acquire(timeout)
        try:
            result = await connection.call(method, path, body=body, timeout=timeout)
        except BaseException:
            connection.close()
            raise
        self.release(connection)
        return result
