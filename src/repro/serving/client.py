"""A small blocking client for the prediction server.

Used three ways: by the serving test-suite, by ``pigeon predict
--server URL`` (the thin-client mode of the CLI), and by the serving
benchmark's load generator.  One :class:`ServingClient` holds one
keep-alive connection; create one per thread when generating load.
"""

from __future__ import annotations

import json
import random
import time
from http.client import HTTPConnection, HTTPException
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse


class ServingError(RuntimeError):
    """A non-2xx response; carries the HTTP status and decoded payload."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServingClient:
    """Blocking JSON-over-HTTP access to a :class:`PredictionServer`.

    ``timeout_s`` bounds every socket operation.  A connection-refused
    failure (the window where a fleet replica is between drain and
    restart, or a router has not yet bound) is retried ``retries`` times
    with exponential backoff plus jitter before surfacing -- so rolling
    restarts behind a fleet never appear to callers as crashes.

    With ``retry_503=True`` a 503 response is also retried, sleeping the
    server's ``Retry-After`` hint (capped at :data:`RETRY_AFTER_CAP_S`)
    instead of the generic backoff -- the server knows when it expects
    to have capacity again; guessing with exponential backoff either
    hammers it early or idles long past recovery.  It is opt-in because
    a 503 is a *correct answer* from a saturated server: load generators
    and shedding tests need to observe it, not paper over it.

    Every request carries an ``X-Request-Timeout-S`` header announcing
    ``timeout_s``, so a fleet router can bound its retries-on-successor
    to the budget this client is actually willing to wait.
    """

    #: Upper bound on honoring a server's Retry-After hint -- a
    #: misbehaving (or byte-flipped) header must not park a client.
    RETRY_AFTER_CAP_S = 5.0

    def __init__(
        self,
        url: str,
        timeout_s: float = 60.0,
        retries: int = 1,
        retry_backoff_s: float = 0.1,
        retry_503: bool = False,
    ) -> None:
        parsed = urlparse(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"only http:// served; got {url!r}")
        if not parsed.hostname:
            raise ValueError(f"no host in server URL {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 8017
        self.timeout_s = float(timeout_s)
        self.retries = max(0, int(retries))
        self.retry_backoff_s = max(0.0, float(retry_backoff_s))
        self.retry_503 = bool(retry_503)
        self._connection = HTTPConnection(self.host, self.port, timeout=self.timeout_s)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One raw round-trip (the escape hatch malformed-request tests use).

        Connection-refused is retried with backoff (see the class doc);
        every other transport failure propagates immediately -- the
        request may have partially executed, and only the caller knows
        whether re-sending is safe.
        """
        send_headers = {
            "Content-Type": "application/json",
            "X-Request-Timeout-S": f"{self.timeout_s:g}",
        }
        if headers:
            send_headers.update(headers)
        for attempt in range(self.retries + 1):
            try:
                self._connection.request(method, path, body=body, headers=send_headers)
                response = self._connection.getresponse()
                raw = response.read()
            except ConnectionRefusedError:
                self._connection.close()
                if attempt >= self.retries:
                    raise
                # Exponential backoff with jitter: restarting replicas
                # come back within tens of milliseconds, and the jitter
                # keeps a thundering herd of clients from re-knocking in
                # lockstep.
                delay = self.retry_backoff_s * (2**attempt)
                time.sleep(delay + random.uniform(0, delay))
                continue
            except (HTTPException, ConnectionError, OSError):
                # The server closes the socket after protocol-level 4xx; a
                # fresh connection keeps the client usable.
                self._connection.close()
                raise
            if response.status == 503 and self.retry_503 and attempt < self.retries:
                if response.will_close:
                    self._connection.close()
                time.sleep(self._retry_delay(response.getheader("Retry-After"), attempt))
                continue
            break
        if response.will_close:
            self._connection.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError:
            payload = {"error": raw.decode("utf-8", "replace")}
        return response.status, payload

    def _retry_delay(self, retry_after: Optional[str], attempt: int) -> float:
        """How long to sleep before re-knocking after a 503.

        The server's Retry-After hint wins (capped); absent or garbled
        hints fall back to the same jittered exponential backoff the
        connection-refused path uses.
        """
        if retry_after is not None:
            try:
                hint = float(retry_after)
            except ValueError:
                hint = -1.0
            if hint >= 0:
                return min(hint, self.RETRY_AFTER_CAP_S)
        delay = self.retry_backoff_s * (2**attempt)
        return delay + random.uniform(0, delay)

    def _json(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        status, decoded = self.request(method, path, body=body)
        if status != 200:
            raise ServingError(status, decoded)
        return decoded

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def predict(
        self,
        source: str,
        language: Optional[str] = None,
        task: Optional[str] = None,
        top: int = 0,
        target_language: Optional[str] = None,
    ) -> dict:
        """POST /predict; returns the server's JSON response.

        ``target_language`` is the ``translate``-task knob: the response
        then carries ``translated_source`` and the applied name
        predictions instead of bare predictions.
        """
        payload: Dict[str, Any] = {"source": source}
        if language is not None:
            payload["language"] = language
        if task is not None:
            payload["task"] = task
        if top:
            payload["top"] = top
        if target_language is not None:
            payload["target_language"] = target_language
        return self._json("POST", "/predict", payload)

    def translate(
        self,
        source: str,
        target_language: str,
        language: Optional[str] = None,
    ) -> dict:
        """POST /predict against the ``translate`` task."""
        return self.predict(
            source, language=language, task="translate", target_language=target_language
        )

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    # The fleet router speaks the same /predict dialect, plus two
    # fleet-level routes; pointing a ServingClient at a router URL makes
    # these available (a plain PredictionServer answers them with 404).
    def fleet_stats(self) -> dict:
        return self._json("GET", "/fleet/stats")

    def fleet_reload(self, models: Optional[list] = None) -> dict:
        payload: Dict[str, Any] = {}
        if models is not None:
            payload["models"] = list(models)
        return self._json("POST", "/fleet/reload", payload)

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
