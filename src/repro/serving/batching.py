"""Micro-batching between the event loop and the scoring backend.

The server's connection handlers are I/O-bound coroutines; scoring is
CPU-bound and happens off the loop.  :class:`MicroBatcher` sits between
them: requests queue up while a batch is in flight, and the consumer
dispatches up to ``batch_size`` of them (or whatever arrived within
``batch_wait_ms`` of the first -- whichever fills first) as one call.
Under load this amortises executor round-trips and keeps the accept loop
responsive; at low traffic the wait bound keeps added latency to a few
milliseconds.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, List, Optional, Tuple

#: Queue sentinel: everything before it drains, then the consumer exits.
_STOP = object()

#: Return marker of :meth:`MicroBatcher._next` when the wait timed out.
_TIMEOUT = object()


class BatcherClosed(RuntimeError):
    """A request arrived after :meth:`MicroBatcher.close` began draining."""


class MicroBatcher:
    """Collect items into batches and hand each batch to one handler call.

    ``handler`` is an async callable ``List[item] -> List[result]``
    returning one result per item, in order.  Results (or the batch's
    exception) resolve each submitter's future individually.
    """

    def __init__(
        self,
        handler: Callable[[List[Any]], Awaitable[List[Any]]],
        batch_size: int = 8,
        batch_wait_ms: float = 2.0,
        max_queue: int = 1024,
    ) -> None:
        self.handler = handler
        self.batch_size = max(1, int(batch_size))
        self.batch_wait = max(0.0, float(batch_wait_ms)) / 1000.0
        self._queue: "asyncio.Queue" = asyncio.Queue(maxsize=max(1, int(max_queue)))
        self._consumer: Optional[asyncio.Task] = None
        self._getter: Optional["asyncio.Future"] = None
        self._closing = False
        self.batches = 0
        self.items = 0
        self.largest_batch = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._consumer is None:
            self._consumer = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        """Drain: refuse new work, score everything queued, then stop."""
        if self._closing:
            return
        self._closing = True
        if self._consumer is not None:
            await self._queue.put(_STOP)
            await self._consumer
            self._consumer = None
        # A submit() that raced the sentinel may have parked an entry
        # behind it; fail those out instead of stranding their futures.
        while not self._queue.empty():
            entry = self._queue.get_nowait()
            if entry is _STOP:
                continue
            _item, future = entry
            if not future.done():
                future.set_exception(
                    BatcherClosed("batcher drained while the item was queued")
                )

    @property
    def closing(self) -> bool:
        return self._closing

    @property
    def depth(self) -> int:
        """Requests currently queued (excluding the in-flight batch)."""
        return self._queue.qsize()

    def stats(self) -> dict:
        return {
            "batch_size": self.batch_size,
            "batch_wait_ms": round(self.batch_wait * 1000, 3),
            "batches": self.batches,
            "items": self.items,
            "largest_batch": self.largest_batch,
            "mean_batch": round(self.items / self.batches, 2) if self.batches else 0.0,
            "queued": self.depth,
        }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, item: Any) -> Any:
        """Queue one item and wait for its result."""
        if self._closing:
            raise BatcherClosed("batcher is draining; not accepting new work")
        if self._consumer is None:
            self.start()
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        await self._queue.put((item, future))
        return await future

    # ------------------------------------------------------------------
    # Consumer
    # ------------------------------------------------------------------
    async def _next(self, timeout: Optional[float]) -> Any:
        """The next queue entry, or :data:`_TIMEOUT` when none arrives.

        A single getter task persists across timeouts (``asyncio.wait``
        never cancels it), so an item can never be lost to the
        cancel-versus-delivery race that ``wait_for(queue.get())`` has on
        Python < 3.12.
        """
        if self._getter is None:
            self._getter = asyncio.ensure_future(self._queue.get())
        if timeout is None:
            entry = await self._getter
        else:
            done, _pending = await asyncio.wait({self._getter}, timeout=timeout)
            if not done:
                return _TIMEOUT
            entry = self._getter.result()
        self._getter = None
        return entry

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._next(None)
            if first is _STOP:
                return
            batch: List[Tuple[Any, "asyncio.Future"]] = [first]
            stop_after = False
            deadline = loop.time() + self.batch_wait
            while len(batch) < self.batch_size:
                remaining = deadline - loop.time()
                # timeout=0 after the window closes: items already queued
                # still ride this batch (they are free), later ones wait.
                entry = await self._next(max(0.0, remaining))
                if entry is _TIMEOUT:
                    if remaining <= 0:
                        break
                    continue
                if entry is _STOP:
                    stop_after = True
                    break
                batch.append(entry)
            await self._dispatch(batch)
            if stop_after:
                return

    async def _dispatch(self, batch: List[Tuple[Any, "asyncio.Future"]]) -> None:
        items = [item for item, _future in batch]
        self.batches += 1
        self.items += len(items)
        self.largest_batch = max(self.largest_batch, len(items))
        try:
            results = await self.handler(items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"batch handler returned {len(results)} results "
                    f"for {len(items)} items"
                )
        except Exception as error:  # noqa: BLE001 - forwarded to callers
            for _item, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        for (_item, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)
