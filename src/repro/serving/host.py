"""Model loading and CPU-bound scoring for the prediction server.

:class:`ModelHost` owns every saved :class:`~repro.api.Pipeline` the
server exposes.  Each model is loaded once at startup and immediately
converted to a read-only :class:`~repro.api.pipeline.ScoringHandle`
(frozen feature space, per-request overlay interning), then requests are
routed by their ``(language, task)`` pair.

Scoring is CPU-bound (parse, extract, CRF inference), so it never runs
on the event loop:

* ``workers == 0`` -- in-process mode: each batch scores sequentially on
  the default thread executor.  Zero setup cost, observable extraction
  stats; what tests and the in-process benchmark use.
* ``workers > 0`` -- a ``ProcessPoolExecutor`` whose workers pre-load the
  same model files in their initializer (pre-warmed: the pool is spun up
  and exercised before the server accepts traffic), and batch items fan
  out across the pool.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..api.pipeline import Pipeline, ScoringHandle
from ..api.protocols import ParsedProgram
from ..artifacts.format import sniff_format


@dataclass(frozen=True)
class PredictRequest:
    """One routed prediction request (already validated by the server)."""

    source: str
    language: str
    task: str
    #: 0 -> MAP predictions; k > 0 -> top-k suggestions.
    top: int = 0
    #: Set (only) on ``translate``-task requests: the language the
    #: response's ``translated_source`` is rendered in.
    target_language: Optional[str] = None
    #: The already-parsed source, when the caller fingerprinted it in
    #: this process (in-process scoring reuses it; worker-pool requests
    #: ship only the source text and re-parse on the other side).
    program: Optional[ParsedProgram] = field(default=None, compare=False, repr=False)

    @property
    def route(self) -> Tuple[str, str]:
        return (self.language, self.task)


class ModelHost:
    """Load saved pipelines once; route and score prediction requests."""

    def __init__(
        self,
        model_paths: Sequence[str],
        workers: int = 0,
        engine: Optional[str] = None,
    ) -> None:
        if not model_paths:
            raise ValueError("ModelHost needs at least one saved model file")
        self.model_paths: List[str] = list(model_paths)
        self.engine = engine
        self.handles: Dict[Tuple[str, str], ScoringHandle] = {}
        #: cell -> {path, format, load_ms}: cold-start cost per model,
        #: exposed under ``/stats`` so the JSON-vs-binary artifact choice
        #: is visible in production instead of being invisible startup tax.
        self.load_info: Dict[str, Dict[str, object]] = {}
        for path in self.model_paths:
            started = time.perf_counter()
            handle = _load_handle(path, engine)
            load_ms = (time.perf_counter() - started) * 1000.0
            key = (handle.spec.language, handle.spec.task)
            if key in self.handles:
                raise ValueError(
                    f"two models serve ({key[0]}, {key[1]}); each "
                    f"(language, task) pair may be loaded once"
                )
            self.handles[key] = handle
            self.load_info[handle.cell] = {
                "path": path,
                "format": sniff_format(path),
                "load_ms": round(load_ms, 3),
            }
        self.workers = max(0, int(workers))
        self._executor: Optional[ProcessPoolExecutor] = None

    def model_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-model artifact format and load latency (for ``/stats``)."""
        return {cell: dict(info) for cell, info in self.load_info.items()}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def cells(self) -> List[str]:
        """The served cells, e.g. ``javascript/variable_naming/ast-paths/crf``."""
        return sorted(handle.cell for handle in self.handles.values())

    def resolve(
        self, language: Optional[str], task: Optional[str]
    ) -> ScoringHandle:
        """The handle serving ``(language, task)``.

        Either field may be omitted when it is unambiguous across the
        loaded models; raises ``LookupError`` (-> HTTP 404) otherwise.
        """
        matches = [
            handle
            for (lang, tsk), handle in self.handles.items()
            if (language is None or lang == language)
            and (task is None or tsk == task)
        ]
        if len(matches) == 1:
            return matches[0]
        served = ", ".join(
            f"({lang}, {tsk})" for lang, tsk in sorted(self.handles)
        )
        wanted = f"(language={language or '*'}, task={task or '*'})"
        if not matches:
            raise LookupError(f"no model serves {wanted}; serving: {served}")
        raise LookupError(f"{wanted} is ambiguous; serving: {served}")

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin up and pre-warm the process pool (no-op in-process)."""
        if self.workers > 0 and self._executor is None:
            executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(tuple(self.model_paths), self.engine),
            )
            # Pre-warm: force every worker to fork/spawn and finish
            # loading its models *now*, so the first real request never
            # pays a cold start.  One barrier call per worker; the small
            # sleep spreads the calls across distinct processes.
            warmups = [
                executor.submit(_warm_worker, 0.05) for _ in range(self.workers)
            ]
            for warmup in warmups:
                warmup.result()
            self._executor = executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    async def score_batch(self, requests: List[PredictRequest]) -> List[dict]:
        """Score one micro-batch off the event loop; results in order.

        One item failing must not poison its batchmates: a failed item
        resolves to ``{"error": ...}`` (the server answers it with a 500)
        while every other item's result comes back intact.
        """
        loop = asyncio.get_running_loop()
        if self._executor is not None:
            # Fan the batch out across the pool; each worker holds its
            # own pre-loaded handles, so items score in parallel.
            outcomes = await asyncio.gather(
                *(
                    loop.run_in_executor(self._executor, _score_in_worker, request)
                    for request in requests
                ),
                return_exceptions=True,
            )
            results: List[dict] = []
            for outcome in outcomes:
                if isinstance(outcome, asyncio.CancelledError):
                    raise outcome
                if isinstance(outcome, BaseException):
                    results.append({"error": str(outcome)})
                else:
                    results.append(outcome)
            return results
        return await loop.run_in_executor(None, self.score_batch_sync, requests)

    def score_batch_sync(self, requests: List[PredictRequest]) -> List[dict]:
        results: List[dict] = []
        for request in requests:
            try:
                handle = self.resolve(request.language, request.task)
                results.append(score_one(handle, request))
            except Exception as error:  # noqa: BLE001 - isolated per item
                results.append({"error": str(error)})
        return results


def score_one(handle: ScoringHandle, request: PredictRequest) -> dict:
    """Score one request against one handle (shared by both modes)."""
    if request.target_language is not None:
        return _translate_one(handle, request)
    if request.top > 0:
        suggestions = handle.suggest(
            request.source, k=request.top, program=request.program
        )
        return {
            "cell": handle.cell,
            "suggestions": {
                key: [[label, score] for label, score in ranked]
                for key, ranked in suggestions.items()
            },
        }
    return {
        "cell": handle.cell,
        "predictions": handle.predict(request.source, program=request.program),
    }


def _translate_one(handle: ScoringHandle, request: PredictRequest) -> dict:
    """Run the translation pipeline for one ``translate``-task request.

    A lifter rejection is the *user's* input being out of vocabulary, not
    a server failure: it comes back as a structured result with
    ``status: 400`` and the offending node's kind and position, which the
    server forwards verbatim instead of a 500.  Injected faults and real
    bugs still raise and surface as 500s.
    """
    from ..translate import Translator, UnsupportedConstructError

    translator = Translator(handle)
    try:
        payload = translator.translate(
            request.source,
            request.target_language,
            language=handle.spec.language,
            program=request.program,
        )
    except UnsupportedConstructError as error:
        return {
            "error": str(error),
            "status": 400,
            "unsupported": {
                "language": error.language,
                "node": error.node_kind,
                "position": error.position,
            },
        }
    return dict(payload, cell=handle.cell)


def _load_handle(path: str, engine: Optional[str]) -> ScoringHandle:
    """Load one model, pin its inference engine, freeze into a handle."""
    if engine is not None and engine not in ("compiled", "scalar"):
        raise ValueError(
            f"unknown inference engine {engine!r}; expected 'compiled' or 'scalar'"
        )
    pipeline = Pipeline.load(path)
    if engine is not None:
        if not hasattr(pipeline.learner, "engine"):
            raise ValueError(
                f"engine={engine!r} applies to CRF models, but {path!r} "
                f"holds a {pipeline.spec.learner!r} learner"
            )
        pipeline.learner.engine = engine
    return pipeline.scoring_handle()


#: Per-worker-process state: (language, task) -> ScoringHandle.
_WORKER_HANDLES: Dict[Tuple[str, str], ScoringHandle] = {}


def _init_worker(model_paths: Tuple[str, ...], engine: Optional[str] = None) -> None:
    for path in model_paths:
        handle = _load_handle(path, engine)
        _WORKER_HANDLES[(handle.spec.language, handle.spec.task)] = handle


def _warm_worker(hold_seconds: float) -> int:
    import os
    import time

    time.sleep(hold_seconds)
    return os.getpid()


def _score_in_worker(request: PredictRequest) -> dict:
    return score_one(_WORKER_HANDLES[request.route], request)
