"""Learning engines driven by the path-based representation."""
