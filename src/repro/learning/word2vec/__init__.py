"""Skip-gram with negative sampling over arbitrary contexts (Sec. 3.2).

A from-scratch numpy implementation of Levy & Goldberg's generalised
word2vec, plus the paper's Eq. (4) predictor.
"""

from .vocab import Vocabulary, build_vocabularies
from .sgns import SgnsConfig, SgnsModel, train_sgns
from .predictor import ContextPredictor

__all__ = [
    "Vocabulary",
    "build_vocabularies",
    "SgnsConfig",
    "SgnsModel",
    "train_sgns",
    "ContextPredictor",
]
