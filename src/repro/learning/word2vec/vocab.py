"""Word and context vocabularies for SGNS.

Words are the labels to predict (variable names); contexts are arbitrary
tokens -- for AST paths, a context is the pair (abstract path, value at
the other end), serialised to a single string.  Infrequent words/contexts
are dropped by ``min_count``, and a unigram^0.75 table drives negative
sampling exactly as in Mikolov et al.'s implementation.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class Vocabulary:
    """Bidirectional token <-> id map with frequency information."""

    def __init__(self, min_count: int = 1) -> None:
        self.min_count = min_count
        self.token_to_id: Dict[str, int] = {}
        self.id_to_token: List[str] = []
        self.counts: List[int] = []

    @classmethod
    def from_counter(cls, counter: Counter, min_count: int = 1) -> "Vocabulary":
        vocab = cls(min_count=min_count)
        for token, count in sorted(counter.items(), key=lambda kv: (-kv[1], kv[0])):
            if count >= min_count:
                vocab._add(token, count)
        return vocab

    def _add(self, token: str, count: int) -> int:
        token_id = len(self.id_to_token)
        self.token_to_id[token] = token_id
        self.id_to_token.append(token)
        self.counts.append(count)
        return token_id

    def __len__(self) -> int:
        return len(self.id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self.token_to_id

    def get(self, token: str) -> Optional[int]:
        return self.token_to_id.get(token)

    def token(self, token_id: int) -> str:
        return self.id_to_token[token_id]

    def negative_sampling_table(self, power: float = 0.75) -> np.ndarray:
        """Unigram^power distribution over ids, as a probability vector."""
        counts = np.asarray(self.counts, dtype=np.float64)
        probs = counts**power
        probs /= probs.sum()
        return probs


def build_vocabularies(
    pairs: Iterable[Tuple[str, str]],
    min_word_count: int = 1,
    min_context_count: int = 1,
) -> Tuple[Vocabulary, Vocabulary, List[Tuple[int, int]]]:
    """Build (word vocab, context vocab, encoded pair list) from raw pairs."""
    pair_list = list(pairs)
    word_counts = Counter(word for word, _ in pair_list)
    context_counts = Counter(context for _, context in pair_list)
    words = Vocabulary.from_counter(word_counts, min_word_count)
    contexts = Vocabulary.from_counter(context_counts, min_context_count)
    encoded: List[Tuple[int, int]] = []
    for word, context in pair_list:
        wid = words.get(word)
        cid = contexts.get(context)
        if wid is not None and cid is not None:
            encoded.append((wid, cid))
    return words, contexts, encoded
