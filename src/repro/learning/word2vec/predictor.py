"""The paper's Eq. (4) predictor.

Unlike the lexical-substitution model of Melamud et al. [31], which also
uses the original word, the paper predicts an unknown name purely from
its contexts:

``prediction = argmax_w  sum_{c in contexts} (w . c)``

Since the sum distributes, we compute ``s = sum_c vec(c)`` once and rank
all words by ``W @ s`` -- a single matrix-vector product.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .sgns import SgnsModel


class ContextPredictor:
    """Predict a word from a bag of context tokens via Eq. (4)."""

    def __init__(self, model: SgnsModel) -> None:
        self.model = model

    def context_sum(self, contexts: Iterable[str]) -> Tuple[np.ndarray, int]:
        """Sum of known context vectors and how many were known."""
        total = np.zeros(self.model.dim)
        known = 0
        for context in contexts:
            vec = self.model.context_vector(context)
            if vec is not None:
                total += vec
                known += 1
        return total, known

    def predict(self, contexts: Iterable[str]) -> Optional[str]:
        """The single best word, or None when every context is OOV."""
        top = self.predict_topk(contexts, k=1)
        return top[0][0] if top else None

    def predict_topk(self, contexts: Iterable[str], k: int = 10) -> List[Tuple[str, float]]:
        """Top-k words by summed inner product with the context vectors."""
        total, known = self.context_sum(contexts)
        if known == 0 or len(self.model.words) == 0:
            return []
        scores = self.model.word_vectors @ total
        k = min(k, len(scores))
        top_idx = np.argpartition(-scores, k - 1)[:k]
        top_idx = top_idx[np.argsort(-scores[top_idx])]
        return [(self.model.words.token(int(i)), float(scores[i])) for i in top_idx]
