"""Skip-gram with negative sampling (SGNS), trained with minibatch SGD.

The objective follows Mikolov et al. [32, 33] as generalised to arbitrary
contexts by Levy & Goldberg [26]: maximise ``log sigmoid(w·c)`` for each
observed (word, context) pair and ``log sigmoid(-w·c')`` for ``k``
sampled negative contexts.  Levy & Goldberg [27] show the optimum
factorises the PMI matrix (Eq. 3 of the paper); the property-based tests
check a coarse version of that on synthetic data.

Everything is vectorised numpy; a corpus of a few hundred thousand pairs
trains in seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ...resilience import faults
from ...resilience.checkpoint import CheckpointMismatchError, TrainerCheckpoint
from .vocab import Vocabulary, build_vocabularies


@dataclass
class SgnsConfig:
    """Hyper-parameters of the embedding trainer."""

    dim: int = 64
    epochs: int = 12
    negatives: int = 5
    learning_rate: float = 0.3
    min_learning_rate: float = 0.0001
    batch_size: int = 512
    min_word_count: int = 1
    min_context_count: int = 1
    seed: int = 41


@dataclass
class SgnsStats:
    pairs: int = 0
    epochs: int = 0
    train_seconds: float = 0.0


class SgnsModel:
    """Trained embeddings: word matrix W and context matrix C."""

    def __init__(
        self,
        words: Vocabulary,
        contexts: Vocabulary,
        word_vectors: np.ndarray,
        context_vectors: np.ndarray,
    ) -> None:
        self.words = words
        self.contexts = contexts
        self.word_vectors = word_vectors
        self.context_vectors = context_vectors

    @property
    def dim(self) -> int:
        return self.word_vectors.shape[1]

    def word_vector(self, word: str) -> Optional[np.ndarray]:
        wid = self.words.get(word)
        return None if wid is None else self.word_vectors[wid]

    def context_vector(self, context: str) -> Optional[np.ndarray]:
        cid = self.contexts.get(context)
        return None if cid is None else self.context_vectors[cid]

    def similarity(self, word_a: str, word_b: str) -> float:
        """Cosine similarity between two word embeddings (0 if OOV)."""
        va, vb = self.word_vector(word_a), self.word_vector(word_b)
        if va is None or vb is None:
            return 0.0
        denom = float(np.linalg.norm(va) * np.linalg.norm(vb))
        if denom == 0.0:
            return 0.0
        return float(va @ vb / denom)

    def save(self, path: str) -> None:
        """Persist vocabularies and embedding matrices (.npz)."""
        # Context tokens may be (rel_id, value_id) tuples; a plain
        # np.asarray would stack those into a 2-D int array and lose the
        # token structure, so build the 1-D object array explicitly.
        context_tokens = np.empty(len(self.contexts.id_to_token), dtype=object)
        context_tokens[:] = self.contexts.id_to_token
        np.savez_compressed(
            path,
            word_tokens=np.asarray(self.words.id_to_token, dtype=object),
            word_counts=np.asarray(self.words.counts, dtype=np.int64),
            context_tokens=context_tokens,
            context_counts=np.asarray(self.contexts.counts, dtype=np.int64),
            word_vectors=self.word_vectors,
            context_vectors=self.context_vectors,
        )

    @classmethod
    def load(cls, path: str) -> "SgnsModel":
        data = np.load(path, allow_pickle=True)
        words = Vocabulary()
        for token, count in zip(data["word_tokens"], data["word_counts"]):
            words._add(str(token), int(count))
        contexts = Vocabulary()
        for token, count in zip(data["context_tokens"], data["context_counts"]):
            contexts._add(restore_context_token(token), int(count))
        return cls(words, contexts, data["word_vectors"], data["context_vectors"])

    def most_similar(self, word: str, k: int = 10) -> List[Tuple[str, float]]:
        """Nearest word embeddings by cosine -- used for Table 4b."""
        vec = self.word_vector(word)
        if vec is None:
            return []
        matrix = self.word_vectors
        norms = np.linalg.norm(matrix, axis=1) * (np.linalg.norm(vec) or 1.0)
        norms[norms == 0.0] = 1.0
        sims = matrix @ vec / norms
        order = np.argsort(-sims)
        out: List[Tuple[str, float]] = []
        for idx in order:
            token = self.words.token(int(idx))
            if token == word:
                continue
            out.append((token, float(sims[idx])))
            if len(out) >= k:
                break
        return out


def train_sgns(
    pairs: Iterable[Tuple[str, str]],
    config: Optional[SgnsConfig] = None,
    checkpoint: Optional[TrainerCheckpoint] = None,
) -> Tuple[SgnsModel, SgnsStats]:
    """Train SGNS embeddings from raw (word, context) string pairs."""
    cfg = config or SgnsConfig()
    started = time.perf_counter()
    words, contexts, encoded = build_vocabularies(
        pairs, cfg.min_word_count, cfg.min_context_count
    )
    stats = SgnsStats(pairs=len(encoded))
    rng = np.random.default_rng(cfg.seed)

    n_words, n_contexts, dim = len(words), len(contexts), cfg.dim
    if n_words == 0 or n_contexts == 0 or not encoded:
        empty_w = np.zeros((n_words, dim))
        empty_c = np.zeros((n_contexts, dim))
        return SgnsModel(words, contexts, empty_w, empty_c), stats

    # Symmetric small random init.  (word2vec's zero-context init relies
    # on millions of tiny SGD steps; at corpus scale a symmetric init
    # converges far faster with mean-aggregated minibatch updates.)
    W = (rng.random((n_words, dim)) - 0.5) / np.sqrt(dim)
    C = (rng.random((n_contexts, dim)) - 0.5) / np.sqrt(dim)

    word_ids = np.asarray([w for w, _ in encoded], dtype=np.int64)
    context_ids = np.asarray([c for _, c in encoded], dtype=np.int64)
    neg_probs = contexts.negative_sampling_table()

    total_batches = cfg.epochs * max(1, int(np.ceil(len(encoded) / cfg.batch_size)))
    batch_counter = 0

    # Resume: the checkpoint holds both matrices (float64 round-trips
    # exactly through JSON) and the PCG64 bit-generator state, so the
    # remaining epochs draw the same permutations and negative samples
    # as the uninterrupted run -- bit-identical final embeddings.  The
    # fresh init above is harmless; restore overwrites W, C and the RNG.
    start_epoch = 0
    if checkpoint is not None and checkpoint.state is not None:
        state = checkpoint.state
        if state.get("kind") != "sgns":
            raise CheckpointMismatchError(
                f"checkpoint {checkpoint.path!r} holds "
                f"{state.get('kind')!r} trainer state, not 'sgns'"
            )
        start_epoch = stats.epochs = int(state["epochs_done"])
        batch_counter = int(state["batch_counter"])
        W = np.asarray(state["word_vectors"], dtype=np.float64).reshape(n_words, dim)
        C = np.asarray(state["context_vectors"], dtype=np.float64).reshape(
            n_contexts, dim
        )
        rng.bit_generator.state = state["rng"]

    for epoch in range(start_epoch, cfg.epochs):
        perm = rng.permutation(len(encoded))
        for start in range(0, len(encoded), cfg.batch_size):
            batch = perm[start : start + cfg.batch_size]
            lr = max(
                cfg.min_learning_rate,
                cfg.learning_rate * (1.0 - batch_counter / total_batches),
            )
            batch_counter += 1
            w_idx = word_ids[batch]
            c_idx = context_ids[batch]
            b = len(batch)

            # Positive examples.
            w_vecs = W[w_idx]  # (b, d)
            c_vecs = C[c_idx]  # (b, d)
            pos_logits = np.einsum("bd,bd->b", w_vecs, c_vecs)
            pos_grad = _sigmoid(pos_logits) - 1.0  # d/d(logit) of -log(sigmoid)

            # Negative examples: (b, k) sampled contexts.
            neg_idx = rng.choice(n_contexts, size=(b, cfg.negatives), p=neg_probs)
            neg_vecs = C[neg_idx]  # (b, k, d)
            neg_logits = np.einsum("bd,bkd->bk", w_vecs, neg_vecs)
            neg_grad = _sigmoid(neg_logits)  # d/d(logit) of -log(sigmoid(-x))

            # Gradients.
            grad_w = pos_grad[:, None] * c_vecs + np.einsum(
                "bk,bkd->bd", neg_grad, neg_vecs
            )
            grad_c_pos = pos_grad[:, None] * w_vecs
            grad_c_neg = neg_grad[:, :, None] * w_vecs[:, None, :]

            # Mean-aggregated scatter updates: hot indices (a context that
            # recurs hundreds of times in one batch) take one averaged
            # step instead of a summed one, which keeps minibatch SGD as
            # stable as word2vec's original pair-at-a-time SGD.
            _mean_scatter_update(W, w_idx, grad_w, lr)
            c_all = np.concatenate([c_idx, neg_idx.reshape(-1)])
            g_all = np.concatenate([grad_c_pos, grad_c_neg.reshape(-1, dim)])
            _mean_scatter_update(C, c_all, g_all, lr)
        stats.epochs += 1
        if checkpoint is not None:
            checkpoint.save_epoch(
                epoch + 1,
                {
                    "kind": "sgns",
                    "epochs_done": epoch + 1,
                    "batch_counter": batch_counter,
                    "rng": rng.bit_generator.state,
                    "word_vectors": W.tolist(),
                    "context_vectors": C.tolist(),
                },
            )
        faults.fire("train.epoch")

    stats.train_seconds = time.perf_counter() - started
    return SgnsModel(words, contexts, W, C), stats


def _mean_scatter_update(
    matrix: np.ndarray, indices: np.ndarray, grads: np.ndarray, lr: float
) -> None:
    """``matrix[i] -= lr * mean(grads where index == i)`` per unique i."""
    unique, inverse, counts = np.unique(
        indices, return_inverse=True, return_counts=True
    )
    accumulated = np.zeros((len(unique), matrix.shape[1]))
    np.add.at(accumulated, inverse, grads)
    matrix[unique] -= lr * accumulated / counts[:, None]


def restore_context_token(token):
    """Normalise a deserialized context token.

    Context tokens are either plain strings (token-stream baselines) or
    interned ``(rel_id, value_id)`` int pairs (AST-path contexts); the
    pairs come back from JSON as lists and from numpy object arrays as
    tuples of numpy ints, so both are folded back to ``Tuple[int, int]``.
    """
    if isinstance(token, str):
        return token
    if isinstance(token, (list, tuple, np.ndarray)):
        return tuple(int(part) for part in token)
    return str(token)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out
