"""Vectorized CRF scoring: columnar factor storage, batched candidates.

:class:`~repro.learning.crf.model.CrfModel` keeps its weights in python
dicts keyed by integer tuples -- ideal for training updates, terrible for
inference, where ICM re-scores every candidate label of every unknown
node once per sweep.  The scalar ``node_score`` pays ``len(beam)`` python
loops over a node's factors (one dict lookup per ``(label, factor)``
pair).  This module re-lays the same weights as **structure-of-arrays**
so one node's whole beam scores as a handful of numpy ops:

* At *freeze* time, :class:`CompiledCrfModel` packs ``pair_weights`` and
  ``unary_weights`` into parallel sorted arrays.  Factors are grouped by
  ``(rel_id, other_value_id)`` (unary groups use ``other == -1``), each
  group gets a dense row id, and every weight becomes one entry in a
  sorted ``row * label_base + label_id`` key array -- a CSR-style index
  over the ``(group, label)`` plane.
* At *graph-compile* time (:meth:`compile_graph`, once per inference
  call), the graph's :meth:`~repro.learning.crf.graph.CrfGraph.columnar`
  view is resolved against the pack: each known/unary factor's group row
  is looked up once, so ICM sweeps touch no python tuples.
* At *scoring* time, :meth:`score_candidates` builds the ``(factors x
  candidates)`` key matrix, gathers all weights with **one**
  ``searchsorted``, and reduces along the factor axis.

**Bit-identity with the scalar oracle** is the design constraint, not an
afterthought: predictions (tie-breaks included) and suggestion scores
must match ``CrfModel.node_score`` exactly.  Two rules make that hold:

1. The factor-axis reduction runs row by row (``scores += w[f]``) in
   factor order -- the same left-to-right IEEE addition sequence the
   scalar loop performs.  Absent weights contribute ``+0.0``, which is
   bitwise inert (the scalar running sum is never ``-0.0``).
2. Candidate ids at or beyond ``label_base`` (overlay-interned request
   strings) and the ``-1`` sentinel (the un-interned ``"?"`` fallback)
   are masked to a zero score, exactly what the scalar path computes for
   a label that matches no trained feature.

The trainer mutates weights between inference calls, so the pack
supports cheap **write-through**: :meth:`set_pair`/:meth:`set_unary`
update packed entries in place, unseen keys land in a small overflow
dict that scoring consults per *factor* (not per candidate), and the
pack rebuilds itself once the overflow outgrows a threshold.  Overflow
weights are patched into the gathered weight matrix *before* the
factor-order reduction, so mid-training scoring stays bit-identical to
the scalar oracle too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .graph import ColumnarGraph, CrfGraph

if TYPE_CHECKING:  # pragma: no cover
    from .model import CrfModel, PairKey, UnaryKey

#: Sentinel "other" id that keys unary groups in the shared group space
#: (real neighbour value ids are always >= 0, so no collision).
UNARY_OTHER = -1


@dataclass(frozen=True)
class CompiledGraph:
    """One graph resolved against one weight pack.

    ``known_rows`` / ``unary_rows`` are flat arrays parallel with the
    :class:`~repro.learning.crf.graph.ColumnarGraph` factor columns:
    each entry is the packed group row of that factor (or ``-1`` when the
    model holds no weights for its group).  Edge rows depend on the
    evolving assignment, so they resolve per scoring call instead.

    ``pack_version`` pins the pack this resolution belongs to; scoring
    against a repacked model raises rather than silently mis-gathering.
    """

    cols: ColumnarGraph
    known_rows: np.ndarray
    unary_rows: np.ndarray
    pack_version: int
    known_off: List[int]
    edge_off: List[int]
    unary_off: List[int]


class CompiledCrfModel:
    """A :class:`CrfModel` frozen into sorted parallel weight arrays.

    Wraps (and keeps a reference to) the scalar model: candidate
    generation and the vocabularies stay on ``model``; only scoring is
    re-laid.  Build one with :meth:`CrfModel.compile`.
    """

    def __init__(self, model: "CrfModel") -> None:
        self.model = model
        self._pack_version = 0
        self._dirty = False
        self._pack()

    @classmethod
    def from_buffers(
        cls,
        model: "CrfModel",
        group_of: Dict[Tuple[int, int], int],
        keys: np.ndarray,
        weights: np.ndarray,
        label_base: int,
    ) -> "CompiledCrfModel":
        """Adopt pre-packed planes without copying (the mmap load path).

        ``keys`` / ``weights`` are the sorted combined-key and weight
        arrays exactly as :meth:`_pack` would build them -- typically
        zero-copy views over a ``pigeon-model/1`` mapping, shared
        page-for-page between every process serving the same artifact.
        The write-through position maps start empty: binary-loaded
        models are read-only, so no trainer ever calls
        :meth:`set_pair` / :meth:`set_unary` on this pack (and the
        backing buffers would refuse the write anyway).
        """
        self = cls.__new__(cls)
        self.model = model
        self._pack_version = 1
        self._dirty = False
        self._label_base = max(1, int(label_base))
        self._group_of = group_of
        self._keys = keys
        self._weights = weights
        self._pair_pos = {}
        self._unary_pos = {}
        self._overflow = {}
        self._overflow_count = 0
        return self

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------
    def _pack(self) -> None:
        """(Re)build the sorted key/weight arrays from the model dicts."""
        model = self.model
        self._label_base = max(1, len(model.space.values))
        base = self._label_base
        group_of: Dict[Tuple[int, int], int] = {}
        combined: List[int] = []
        weights: List[float] = []
        pair_keys: List[Tuple[int, int, int]] = []
        unary_keys: List[Tuple[int, int]] = []
        origins: List[Tuple[bool, int]] = []  # (is_pair, index into *_keys)
        for key, weight in model.pair_weights.items():
            label, rel, other = key
            row = group_of.setdefault((rel, other), len(group_of))
            combined.append(row * base + label)
            weights.append(weight)
            origins.append((True, len(pair_keys)))
            pair_keys.append(key)
        for ukey, weight in model.unary_weights.items():
            label, rel = ukey
            row = group_of.setdefault((rel, UNARY_OTHER), len(group_of))
            combined.append(row * base + label)
            weights.append(weight)
            origins.append((False, len(unary_keys)))
            unary_keys.append(ukey)

        order = np.argsort(np.asarray(combined, dtype=np.int64), kind="stable")
        keys_arr = np.asarray(combined, dtype=np.int64)[order]
        weights_arr = np.asarray(weights, dtype=np.float64)[order]
        pair_pos: Dict["PairKey", int] = {}
        unary_pos: Dict["UnaryKey", int] = {}
        for sorted_index, original in enumerate(order.tolist()):
            is_pair, key_index = origins[original]
            if is_pair:
                pair_pos[pair_keys[key_index]] = sorted_index
            else:
                unary_pos[unary_keys[key_index]] = sorted_index

        self._group_of = group_of
        self._keys = keys_arr
        self._weights = weights_arr
        self._pair_pos = pair_pos
        self._unary_pos = unary_pos
        #: group key -> {label_id: weight}; weights for keys born after
        #: the pack.  Consulted per factor during scoring, folded back in
        #: at the next repack.
        self._overflow: Dict[Tuple[int, int], Dict[int, float]] = {}
        self._overflow_count = 0
        self._dirty = False
        self._pack_version += 1

    @property
    def pack_version(self) -> int:
        return self._pack_version

    @property
    def label_base(self) -> int:
        """Vocab size at pack time; candidate ids must stay below it."""
        return self._label_base

    def invalidate(self) -> None:
        """Mark the pack stale (bulk model mutation, e.g. weight decay)."""
        self._dirty = True

    def _refresh(self) -> None:
        if self._dirty:
            self._pack()

    def _repack_threshold(self) -> int:
        return max(256, len(self._keys) // 4)

    # ------------------------------------------------------------------
    # Write-through (the trainer's update path)
    # ------------------------------------------------------------------
    def set_pair(self, key: "PairKey", value: float) -> None:
        """Mirror ``model.pair_weights[key] = value`` into the pack."""
        position = self._pair_pos.get(key)
        if position is not None:
            self._weights[position] = value
            return
        label, rel, other = key
        self._stash((rel, other), label, value)

    def set_unary(self, key: "UnaryKey", value: float) -> None:
        """Mirror ``model.unary_weights[key] = value`` into the pack."""
        position = self._unary_pos.get(key)
        if position is not None:
            self._weights[position] = value
            return
        label, rel = key
        self._stash((rel, UNARY_OTHER), label, value)

    def _stash(self, group: Tuple[int, int], label: int, value: float) -> None:
        bucket = self._overflow.setdefault(group, {})
        if label not in bucket:
            self._overflow_count += 1
        bucket[label] = value
        if self._overflow_count > self._repack_threshold():
            self._pack()

    # ------------------------------------------------------------------
    # Graph compilation
    # ------------------------------------------------------------------
    def compile_graph(self, graph: CrfGraph) -> CompiledGraph:
        """Resolve one graph's columnar factors against this pack.

        Called once per inference call; the group-row lookups here are
        the only per-factor python work the vectorized engine performs.
        """
        self._refresh()
        cols = graph.columnar()
        group_of = self._group_of
        known_rows = np.fromiter(
            (
                group_of.get((rel, label), -1)
                for rel, label in zip(cols.known_rel_list, cols.known_label_list)
            ),
            dtype=np.int64,
            count=len(cols.known_rel_list),
        )
        unary_rows = np.fromiter(
            (group_of.get((rel, UNARY_OTHER), -1) for rel in cols.unary_rel_list),
            dtype=np.int64,
            count=len(cols.unary_rel_list),
        )
        return CompiledGraph(
            cols=cols,
            known_rows=known_rows,
            unary_rows=unary_rows,
            pack_version=self._pack_version,
            known_off=cols.known_off.tolist(),
            edge_off=cols.edge_off.tolist(),
            unary_off=cols.unary_off.tolist(),
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score_candidates(
        self,
        cg: CompiledGraph,
        index: int,
        candidates: np.ndarray,
        assignment_ids: np.ndarray,
    ) -> np.ndarray:
        """Scores of every candidate label for node ``index`` at once.

        ``candidates`` is an ``int64`` array of label ids; ``-1`` (or any
        id at/above :attr:`label_base`) means "no trained feature can
        match" and scores exactly ``0.0``.  ``assignment_ids`` is the
        current assignment as an ``int64`` array over all nodes (``-1``
        for labels outside the model vocabulary).  Bit-identical to
        calling ``model.node_score`` per candidate.
        """
        if cg.pack_version != self._pack_version:
            raise RuntimeError(
                "CompiledGraph was resolved against pack version "
                f"{cg.pack_version}, but the model has repacked to "
                f"{self._pack_version}; call compile_graph() again"
            )
        cols = cg.cols
        n_candidates = len(candidates)
        ks, ke = cg.known_off[index], cg.known_off[index + 1]
        es, ee = cg.edge_off[index], cg.edge_off[index + 1]
        us, ue = cg.unary_off[index], cg.unary_off[index + 1]
        use_unary = self.model.use_unary

        parts = []
        edge_other_ids: List[int] = []
        if ke > ks:
            parts.append(cg.known_rows[ks:ke])
        if ee > es:
            edge_other_ids = assignment_ids[cols.edge_other[es:ee]].tolist()
            group_of = self._group_of
            # The other >= 0 gate keeps unassigned/unseen neighbours
            # (sentinel -1) from colliding with UNARY_OTHER group keys;
            # the scalar path skips those edges the same way.
            parts.append(
                np.fromiter(
                    (
                        group_of.get((rel, other), -1) if other >= 0 else -1
                        for rel, other in zip(
                            cols.edge_rel_list[es:ee], edge_other_ids
                        )
                    ),
                    dtype=np.int64,
                    count=ee - es,
                )
            )
        if use_unary and ue > us:
            parts.append(cg.unary_rows[us:ue])
        if not parts:
            return np.zeros(n_candidates, dtype=np.float64)
        rows = parts[0] if len(parts) == 1 else np.concatenate(parts)
        n_factors = len(rows)

        valid = (candidates >= 0) & (candidates < self._label_base)
        all_valid = bool(valid.all())
        safe = candidates if all_valid else np.where(valid, candidates, 0)
        keys = rows[:, None] * self._label_base + safe[None, :]
        flat = keys.ravel()
        if len(self._keys):
            positions = np.searchsorted(self._keys, flat)
            np.minimum(positions, len(self._keys) - 1, out=positions)
            found = self._keys[positions] == flat
            gathered = np.where(found, self._weights[positions], 0.0)
            weight_matrix = gathered.reshape(n_factors, n_candidates)
        else:
            weight_matrix = np.zeros((n_factors, n_candidates), dtype=np.float64)

        if self._overflow:
            self._patch_overflow(
                weight_matrix, cg, candidates, ks, ke, es, ee, us, ue,
                edge_other_ids, use_unary,
            )
        if not all_valid:
            weight_matrix[:, ~valid] = 0.0

        # Row-by-row reduction: the same left-to-right addition order the
        # scalar loop uses per candidate, so rounding agrees bit for bit.
        scores = np.zeros(n_candidates, dtype=np.float64)
        for f in range(n_factors):
            scores += weight_matrix[f]
        return scores

    def _patch_overflow(
        self,
        weight_matrix: np.ndarray,
        cg: CompiledGraph,
        candidates: np.ndarray,
        ks: int,
        ke: int,
        es: int,
        ee: int,
        us: int,
        ue: int,
        edge_other_ids: List[int],
        use_unary: bool,
    ) -> None:
        """Write post-pack weights into the gathered matrix, in place.

        Runs only while the trainer has unrepacked updates; the factory
        rows keep their factor order so the reduction stays sequential.
        """
        overflow = self._overflow
        cols = cg.cols
        f = 0
        for rel, label in zip(
            cols.known_rel_list[ks:ke], cols.known_label_list[ks:ke]
        ):
            bucket = overflow.get((rel, label))
            if bucket:
                for lbl, value in bucket.items():
                    weight_matrix[f, candidates == lbl] = value
            f += 1
        for rel, other in zip(cols.edge_rel_list[es:ee], edge_other_ids):
            bucket = overflow.get((rel, other)) if other >= 0 else None
            if bucket:
                for lbl, value in bucket.items():
                    weight_matrix[f, candidates == lbl] = value
            f += 1
        if use_unary:
            for rel in cols.unary_rel_list[us:ue]:
                bucket = overflow.get((rel, UNARY_OTHER))
                if bucket:
                    for lbl, value in bucket.items():
                        weight_matrix[f, candidates == lbl] = value
                f += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledCrfModel({len(self._keys)} weights, "
            f"{len(self._group_of)} groups, pack v{self._pack_version})"
        )
