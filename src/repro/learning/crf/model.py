"""CRF model: sparse weights, scoring, and the candidate index.

The model scores an assignment ``y`` of labels to a graph's unknown nodes
as the sum of factor weights (log-potentials):

``score(y) = sum_i [ sum_{(rel,l) in known_i} w_p(y_i, rel, l)
                   + sum_{(rel,j) in edges_i} w_p(y_i, rel, y_j)
                   + sum_{rel in unary_i}     w_u(y_i, rel) ]``

This corresponds to the (log of the) unnormalised product of factors in
Eq. (1); MAP inference does not need the partition function ``Z``.

The *candidate index* maps observed ``(rel, neighbour-label)`` contexts to
the gold labels seen with them in training -- the mechanism Nice2Predict
uses to keep inference over a tractable beam of candidate names.
"""

from __future__ import annotations

import json
import math
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .graph import CrfGraph, UnknownNode

PairKey = Tuple[str, str, str]  # (label, rel, other_label)
UnaryKey = Tuple[str, str]  # (label, rel)


class CrfModel:
    """Sparse log-linear model over pairwise and unary factors."""

    def __init__(self, use_unary: bool = True) -> None:
        self.pair_weights: Dict[PairKey, float] = defaultdict(float)
        self.unary_weights: Dict[UnaryKey, float] = defaultdict(float)
        #: (rel, other_label) -> Counter of gold labels seen in training.
        self.candidate_index: Dict[Tuple[str, str], Counter] = defaultdict(Counter)
        #: rel -> Counter of gold labels (for unary-only nodes).
        self.unary_candidate_index: Dict[str, Counter] = defaultdict(Counter)
        #: Global label frequencies (fallback candidates).
        self.label_counts: Counter = Counter()
        self.use_unary = use_unary

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def node_score(
        self,
        node: UnknownNode,
        label: str,
        assignment: Sequence[str],
    ) -> float:
        """Score of ``label`` for one node given the current assignment."""
        score = 0.0
        pair = self.pair_weights
        for factor in node.known:
            key = (label, factor.rel, factor.label)
            if key in pair:
                score += pair[key]
        for edge in node.edges:
            key = (label, edge.rel, assignment[edge.other])
            if key in pair:
                score += pair[key]
        if self.use_unary:
            unary = self.unary_weights
            for rel in node.unary:
                key = (label, rel)
                if key in unary:
                    score += unary[key]
        return score

    def assignment_score(self, graph: CrfGraph, assignment: Sequence[str]) -> float:
        """Total (directionally double-counted, consistent) graph score."""
        return sum(
            self.node_score(node, assignment[i], assignment)
            for i, node in enumerate(graph.unknowns)
        )

    # ------------------------------------------------------------------
    # Candidates
    # ------------------------------------------------------------------
    def observe_training_node(self, node: UnknownNode, graph: CrfGraph) -> None:
        """Record a gold-labelled node into the candidate index."""
        gold = node.gold
        self.label_counts[gold] += 1
        for factor in node.known:
            self.candidate_index[(factor.rel, factor.label)][gold] += 1
        for edge in node.edges:
            other_gold = graph.unknowns[edge.other].gold
            self.candidate_index[(edge.rel, other_gold)][gold] += 1
        for rel in node.unary:
            self.unary_candidate_index[rel][gold] += 1

    def candidates_for(
        self,
        node: UnknownNode,
        assignment: Sequence[str],
        beam: int = 48,
        per_context: int = 12,
        global_fallback: int = 8,
    ) -> List[str]:
        """Candidate labels for one node given its neighbourhood."""
        seen: Dict[str, int] = {}

        def add_counter(counter: Counter, limit: int) -> None:
            for label, count in counter.most_common(limit):
                seen[label] = seen.get(label, 0) + count

        for factor in node.known:
            counter = self.candidate_index.get((factor.rel, factor.label))
            if counter:
                add_counter(counter, per_context)
        for edge in node.edges:
            counter = self.candidate_index.get((edge.rel, assignment[edge.other]))
            if counter:
                add_counter(counter, per_context)
        if self.use_unary:
            for rel in node.unary:
                counter = self.unary_candidate_index.get(rel)
                if counter:
                    add_counter(counter, per_context)
        for label, count in self.label_counts.most_common(global_fallback):
            seen.setdefault(label, count)
        ranked = sorted(seen.items(), key=lambda kv: (-kv[1], kv[0]))
        return [label for label, _ in ranked[:beam]]

    # ------------------------------------------------------------------
    # Updates (used by the trainer)
    # ------------------------------------------------------------------
    def add_pair(self, key: PairKey, delta: float) -> None:
        self.pair_weights[key] += delta

    def add_unary(self, key: UnaryKey, delta: float) -> None:
        self.unary_weights[key] += delta

    def l2_decay(self, factor: float) -> None:
        """Multiplicative weight decay (L2 regularisation step)."""
        for key in self.pair_weights:
            self.pair_weights[key] *= factor
        for key in self.unary_weights:
            self.unary_weights[key] *= factor

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        return len(self.pair_weights) + len(self.unary_weights)

    def top_features(self, n: int = 20) -> List[Tuple[str, float]]:
        """Highest-weight features -- CRFs are interpretable (Sec. 5.3)."""
        items: List[Tuple[str, float]] = []
        for (label, rel, other), w in self.pair_weights.items():
            items.append((f"pair: {label} --[{rel}]--> {other}", w))
        for (label, rel), w in self.unary_weights.items():
            items.append((f"unary: {label} --[{rel}]--> (self)", w))
        items.sort(key=lambda kv: -abs(kv[1]))
        return items[:n]

    def to_dict(self) -> dict:
        return {
            "pair_weights": {"\x1f".join(k): v for k, v in self.pair_weights.items()},
            "unary_weights": {"\x1f".join(k): v for k, v in self.unary_weights.items()},
            # Candidate indexes are part of inference (they bound the label
            # beam), so they persist too -- a reloaded model must propose
            # the same candidates in the same tie-break order.
            "candidate_index": {
                "\x1f".join(k): dict(v) for k, v in self.candidate_index.items()
            },
            "unary_candidate_index": {
                k: dict(v) for k, v in self.unary_candidate_index.items()
            },
            "label_counts": dict(self.label_counts),
            "use_unary": self.use_unary,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CrfModel":
        model = cls(use_unary=data.get("use_unary", True))
        for key, value in data.get("pair_weights", {}).items():
            label, rel, other = key.split("\x1f")
            model.pair_weights[(label, rel, other)] = value
        for key, value in data.get("unary_weights", {}).items():
            label, rel = key.split("\x1f")
            model.unary_weights[(label, rel)] = value
        for key, counts in data.get("candidate_index", {}).items():
            rel, other = key.split("\x1f")
            model.candidate_index[(rel, other)].update(counts)
        for rel, counts in data.get("unary_candidate_index", {}).items():
            model.unary_candidate_index[rel].update(counts)
        model.label_counts.update(data.get("label_counts", {}))
        return model

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path: str) -> "CrfModel":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
