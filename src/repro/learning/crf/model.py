"""CRF model: sparse weights, scoring, and the candidate index.

The model scores an assignment ``y`` of labels to a graph's unknown nodes
as the sum of factor weights (log-potentials):

``score(y) = sum_i [ sum_{(rel,l) in known_i} w_p(y_i, rel, l)
                   + sum_{(rel,j) in edges_i} w_p(y_i, rel, y_j)
                   + sum_{rel in unary_i}     w_u(y_i, rel) ]``

This corresponds to the (log of the) unnormalised product of factors in
Eq. (1); MAP inference does not need the partition function ``Z``.

All weight and index keys are **integer tuples** over the model's
:class:`~repro.core.interning.FeatureSpace`: labels and neighbour values
are value-vocab ids, relations are path-vocab ids.  The public label API
stays string-based (``node_score`` takes a label string,
``candidates_for`` returns label strings); interning happens once at the
boundary.  Serialization is vocab-aware -- :meth:`to_dict` embeds the
space, so a reloaded model resolves the same ids to the same strings and
predictions round-trip bit-identically.

The *candidate index* maps observed ``(rel, neighbour-label)`` contexts to
the gold labels seen with them in training -- the mechanism Nice2Predict
uses to keep inference over a tractable beam of candidate names.
"""

from __future__ import annotations

import json
import math
from collections import Counter, defaultdict

import numpy as np
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from ...core.interning import DEFAULT_SPACE, FeatureSpace
from .graph import CrfGraph, UnknownNode

if TYPE_CHECKING:  # pragma: no cover
    from .compiled import CompiledCrfModel

PairKey = Tuple[int, int, int]  # (label_id, rel_id, other_value_id)
UnaryKey = Tuple[int, int]  # (label_id, rel_id)


class _AssignmentIdView:
    """Lazy id view of a string assignment (unseen labels read as ``-1``)."""

    __slots__ = ("_values", "_assignment")

    def __init__(self, values, assignment: Sequence[str]) -> None:
        self._values = values
        self._assignment = assignment

    def __getitem__(self, index: int) -> int:
        label_id = self._values.id_of(self._assignment[index])
        return -1 if label_id is None else label_id

    def __len__(self) -> int:
        return len(self._assignment)


class CrfModel:
    """Sparse log-linear model over pairwise and unary factors."""

    def __init__(
        self, use_unary: bool = True, space: Optional[FeatureSpace] = None
    ) -> None:
        # Defaulting to the process-wide space makes a hand-built model
        # agree on ids with hand-built graphs; the trainer and pipelines
        # pass the graphs' (or the representation's) space explicitly.
        self.space = space if space is not None else DEFAULT_SPACE
        self.pair_weights: Dict[PairKey, float] = defaultdict(float)
        self.unary_weights: Dict[UnaryKey, float] = defaultdict(float)
        #: (rel_id, other_value_id) -> Counter of gold label ids.
        self.candidate_index: Dict[Tuple[int, int], Counter] = defaultdict(Counter)
        #: rel_id -> Counter of gold label ids (for unary-only nodes).
        self.unary_candidate_index: Dict[int, Counter] = defaultdict(Counter)
        #: Global label-id frequencies (fallback candidates).
        self.label_counts: Counter = Counter()
        self.use_unary = use_unary
        # Memoized ``most_common(limit)`` prefixes of the candidate
        # counters.  The counters only grow in observe_training_node
        # (which bumps the version and so drops the cache); during
        # inference they are static, and re-running heapq.nlargest per
        # node per sweep dominated the whole MAP pass before this memo.
        self._cand_cache: Dict[tuple, List[Tuple[int, int]]] = {}
        self._cand_array_cache: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}
        self._cand_version = 0
        self._cand_cache_version = 0
        # Label ids ranked by their *string* (the candidate tie-break
        # key), rebuilt lazily whenever the value vocab has grown.
        self._label_rank: Optional[np.ndarray] = None
        self._label_rank_size = -1

    # ------------------------------------------------------------------
    # Label interning boundary
    # ------------------------------------------------------------------
    def label_id(self, label: str) -> int:
        """Intern a label string into the shared value vocabulary."""
        return self.space.values.intern(label)

    def label_of(self, label_id: int) -> str:
        return self.space.values.value(label_id)

    def rel_id(self, rel: str) -> int:
        """Intern a relation string into the shared path vocabulary."""
        return self.space.paths.intern(rel)

    def pair_key(self, label: str, rel: str, other: str) -> PairKey:
        """Build a :data:`PairKey` from strings (tests, inspection)."""
        return (self.label_id(label), self.rel_id(rel), self.label_id(other))

    def unary_key(self, label: str, rel: str) -> UnaryKey:
        """Build a :data:`UnaryKey` from strings (tests, inspection)."""
        return (self.label_id(label), self.rel_id(rel))

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def node_score(
        self,
        node: UnknownNode,
        label: str,
        assignment: Sequence[str],
    ) -> float:
        """Score of ``label`` for one node given the current assignment."""
        values = self.space.values
        lid = values.id_of(label)
        if lid is None:
            return 0.0  # a label never seen in training matches no feature
        score = 0.0
        pair = self.pair_weights
        for factor in node.known:
            key = (lid, factor.rel, factor.label)
            if key in pair:
                score += pair[key]
        for edge in node.edges:
            other_id = values.id_of(assignment[edge.other])
            if other_id is None:
                continue
            key = (lid, edge.rel, other_id)
            if key in pair:
                score += pair[key]
        if self.use_unary:
            unary = self.unary_weights
            for rel in node.unary:
                key = (lid, rel)
                if key in unary:
                    score += unary[key]
        return score

    def assignment_score(self, graph: CrfGraph, assignment: Sequence[str]) -> float:
        """Total (directionally double-counted, consistent) graph score."""
        return sum(
            self.node_score(node, assignment[i], assignment)
            for i, node in enumerate(graph.unknowns)
        )

    # ------------------------------------------------------------------
    # Candidates
    # ------------------------------------------------------------------
    def observe_training_node(self, node: UnknownNode, graph: CrfGraph) -> None:
        """Record a gold-labelled node into the candidate index."""
        self._cand_version += 1
        gold = self.label_id(node.gold)
        self.label_counts[gold] += 1
        for factor in node.known:
            self.candidate_index[(factor.rel, factor.label)][gold] += 1
        for edge in node.edges:
            other_gold = self.label_id(graph.unknowns[edge.other].gold)
            self.candidate_index[(edge.rel, other_gold)][gold] += 1
        for rel in node.unary:
            self.unary_candidate_index[rel][gold] += 1

    def _sync_cand_caches(self) -> None:
        if self._cand_cache_version != self._cand_version:
            self._cand_cache.clear()
            self._cand_array_cache.clear()
            self._cand_cache_version = self._cand_version

    def _top_candidates(
        self, key: tuple, counter: Counter, limit: int
    ) -> List[Tuple[int, int]]:
        """``counter.most_common(limit)``, memoized until the next observe.

        Returns the *identical* list ``most_common`` would produce (same
        call on the same counter state), so candidate ranking -- ties
        included -- is unchanged; callers must not mutate the result.
        """
        self._sync_cand_caches()
        cached = self._cand_cache.get((key, limit))
        if cached is None:
            cached = counter.most_common(limit)
            self._cand_cache[(key, limit)] = cached
        return cached

    def _top_candidate_arrays(
        self, key: tuple, counter: Counter, limit: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The memoized ``most_common`` prefix as ``(ids, counts)`` arrays."""
        cached = self._cand_array_cache.get((key, limit))
        if cached is None:
            top = self._top_candidates(key, counter, limit)
            cached = (
                np.fromiter((l for l, _ in top), dtype=np.int64, count=len(top)),
                np.fromiter((c for _, c in top), dtype=np.int64, count=len(top)),
            )
            self._cand_array_cache[(key, limit)] = cached
        return cached

    def _label_ranks(self) -> np.ndarray:
        """``rank[label_id]`` = position of the label's string in sorted
        string order -- a proxy for the string tie-break that compares as
        plain int64.  Rebuilt whenever the value vocab has grown."""
        values = self.space.values
        size = len(values)
        if self._label_rank_size != size:
            order = sorted(range(size), key=values.value)
            rank = np.empty(size, dtype=np.int64)
            rank[np.asarray(order, dtype=np.int64)] = np.arange(
                size, dtype=np.int64
            )
            self._label_rank = rank
            self._label_rank_size = size
        return self._label_rank

    def candidate_ids_for(
        self,
        node: UnknownNode,
        assignment_ids: Sequence[int],
        beam: int = 48,
        per_context: int = 12,
        global_fallback: int = 8,
    ) -> List[int]:
        """Candidate label ids for one node given its neighbourhood.

        ``assignment_ids`` maps node index -> current label id, with any
        negative value standing for "outside the model vocabulary" (the
        id-space equivalent of an unseen label string).  This is the core
        the vectorised engine calls; :meth:`candidates_for` wraps it for
        the string API.
        """
        # The merge is vectorised but order-identical to summing counts
        # into a dict and ranking with sorted(key=(-count, label string)):
        # counts stay int64 (exact sums in any order), and ties break on
        # the precomputed string rank -- so candidate order is a function
        # of the corpus, never of interning or context order.
        self._sync_cand_caches()
        arrays = self._top_candidate_arrays
        parts_ids: List[np.ndarray] = []
        parts_counts: List[np.ndarray] = []

        for factor in node.known:
            counter = self.candidate_index.get((factor.rel, factor.label))
            if counter:
                ids, counts = arrays(
                    ("p", factor.rel, factor.label), counter, per_context
                )
                parts_ids.append(ids)
                parts_counts.append(counts)
        for edge in node.edges:
            other_id = assignment_ids[edge.other]
            if other_id < 0:
                continue
            counter = self.candidate_index.get((edge.rel, other_id))
            if counter:
                ids, counts = arrays(("p", edge.rel, other_id), counter, per_context)
                parts_ids.append(ids)
                parts_counts.append(counts)
        if self.use_unary:
            for rel in node.unary:
                counter = self.unary_candidate_index.get(rel)
                if counter:
                    ids, counts = arrays(("u", rel), counter, per_context)
                    parts_ids.append(ids)
                    parts_counts.append(counts)

        fallback = self._top_candidates(("g",), self.label_counts, global_fallback)
        if parts_ids:
            uniq, inverse = np.unique(np.concatenate(parts_ids), return_inverse=True)
            sums = np.zeros(len(uniq), dtype=np.int64)
            np.add.at(sums, inverse, np.concatenate(parts_counts))
            present = set(uniq.tolist())
            extra = [(lid, c) for lid, c in fallback if lid not in present]
        else:
            uniq = np.empty(0, dtype=np.int64)
            sums = np.empty(0, dtype=np.int64)
            extra = list(fallback)
        if extra:
            uniq = np.concatenate(
                [uniq, np.fromiter((l for l, _ in extra), np.int64, len(extra))]
            )
            sums = np.concatenate(
                [sums, np.fromiter((c for _, c in extra), np.int64, len(extra))]
            )
        if not len(uniq):
            return []
        order = np.lexsort((self._label_ranks()[uniq], -sums))
        return uniq[order[:beam]].tolist()

    def candidates_for(
        self,
        node: UnknownNode,
        assignment: Sequence[str],
        beam: int = 48,
        per_context: int = 12,
        global_fallback: int = 8,
    ) -> List[str]:
        """Candidate labels for one node given its neighbourhood."""
        values = self.space.values
        ranked = self.candidate_ids_for(
            node,
            _AssignmentIdView(values, assignment),
            beam=beam,
            per_context=per_context,
            global_fallback=global_fallback,
        )
        return [values.value(label_id) for label_id in ranked]

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self) -> "CompiledCrfModel":
        """Freeze the current weights into a vectorised scoring pack.

        The compiled model keeps a reference to this model (candidate
        generation and vocabularies stay here) and scores bit-identically
        to :meth:`node_score`; see
        :mod:`repro.learning.crf.compiled`.
        """
        from .compiled import CompiledCrfModel

        return CompiledCrfModel(self)

    # ------------------------------------------------------------------
    # Updates (used by the trainer)
    # ------------------------------------------------------------------
    def add_pair(self, key: PairKey, delta: float) -> None:
        self.pair_weights[key] += delta

    def add_unary(self, key: UnaryKey, delta: float) -> None:
        self.unary_weights[key] += delta

    def l2_decay(self, factor: float) -> None:
        """Multiplicative weight decay (L2 regularisation step)."""
        for key in self.pair_weights:
            self.pair_weights[key] *= factor
        for key in self.unary_weights:
            self.unary_weights[key] *= factor

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        return len(self.pair_weights) + len(self.unary_weights)

    def top_features(self, n: int = 20) -> List[Tuple[str, float]]:
        """Highest-weight features -- CRFs are interpretable (Sec. 5.3)."""
        values = self.space.values
        paths = self.space.paths
        items: List[Tuple[str, float]] = []
        for (label, rel, other), w in self.pair_weights.items():
            items.append(
                (
                    f"pair: {values.value(label)} --[{paths.value(rel)}]--> "
                    f"{values.value(other)}",
                    w,
                )
            )
        for (label, rel), w in self.unary_weights.items():
            items.append(
                (f"unary: {values.value(label)} --[{paths.value(rel)}]--> (self)", w)
            )
        items.sort(key=lambda kv: -abs(kv[1]))
        return items[:n]

    def to_dict(self) -> dict:
        """Vocab-aware JSON-ready snapshot; inverse of :meth:`from_dict`.

        Int-tuple keys serialize as arrays; the feature space rides along
        so the ids stay meaningful in any process.
        """
        return {
            "space": self.space.to_dict(),
            "pair_weights": [[l, r, o, w] for (l, r, o), w in self.pair_weights.items()],
            "unary_weights": [[l, r, w] for (l, r), w in self.unary_weights.items()],
            # Candidate indexes are part of inference (they bound the label
            # beam), so they persist too -- a reloaded model must propose
            # the same candidates in the same tie-break order.  Counter
            # entries keep their first-observed insertion order, which is
            # what Counter.most_common uses to break count ties.
            "candidate_index": [
                [r, o, list(counter.items())]
                for (r, o), counter in self.candidate_index.items()
            ],
            "unary_candidate_index": [
                [r, list(counter.items())]
                for r, counter in self.unary_candidate_index.items()
            ],
            "label_counts": list(self.label_counts.items()),
            "use_unary": self.use_unary,
        }

    @classmethod
    def from_dict(cls, data: dict, space: Optional[FeatureSpace] = None) -> "CrfModel":
        """Rebuild a model from a :meth:`to_dict` snapshot.

        With ``space=None`` the model adopts the snapshot's own (detached)
        feature space, keeping the stored ids verbatim -- the path
        :meth:`~repro.api.Pipeline.load` uses, which then rebinds its
        representation onto the restored space.  Passing a ``space``
        *translates* every stored id through the snapshot's vocab into
        that space, so the model agrees with graphs interned elsewhere
        (e.g. :data:`~repro.core.interning.DEFAULT_SPACE`).
        """
        snapshot = FeatureSpace.from_dict(data.get("space", {}))
        if space is None:
            space = snapshot
            rel = val = int
        else:
            target = space

            def rel(i, _paths=snapshot.paths):
                return target.paths.intern(_paths.value(int(i)))

            def val(i, _values=snapshot.values):
                return target.values.intern(_values.value(int(i)))
        model = cls(use_unary=data.get("use_unary", True), space=space)
        for label, r, other, weight in data.get("pair_weights", ()):
            model.pair_weights[(val(label), rel(r), val(other))] = weight
        for label, r, weight in data.get("unary_weights", ()):
            model.unary_weights[(val(label), rel(r))] = weight
        for r, other, counts in data.get("candidate_index", ()):
            model.candidate_index[(rel(r), val(other))].update(
                {val(label): count for label, count in counts}
            )
        for r, counts in data.get("unary_candidate_index", ()):
            model.unary_candidate_index[rel(r)].update(
                {val(label): count for label, count in counts}
            )
        model.label_counts.update(
            {val(label): count for label, count in data.get("label_counts", ())}
        )
        return model

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path: str, space: Optional[FeatureSpace] = None) -> "CrfModel":
        """Load a standalone model, remapping ids onto ``space``.

        Defaults to the process-wide
        :data:`~repro.core.interning.DEFAULT_SPACE` so a loaded model
        scores graphs built by fresh default extractors in this process
        -- the pre-interning string-key behaviour.
        """
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return cls.from_dict(data, space=space if space is not None else DEFAULT_SPACE)
