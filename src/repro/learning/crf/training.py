"""Max-margin training for the CRF (structured perceptron with margin).

For every training graph we run loss-augmented MAP inference under the
current weights and take a subgradient step on the structured hinge loss:
features of the gold assignment are rewarded, features of the margin
violator penalised.  Averaged weights (the usual polyak-style trick,
implemented with lazy timestamps) give the stability of an SVM at
perceptron cost -- appropriate here because the paper treats the learning
engine as an off-the-shelf component and varies only the representation.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...resilience import faults
from ...resilience.checkpoint import CheckpointMismatchError, TrainerCheckpoint
from .graph import CrfGraph
from .inference import map_inference
from .model import CrfModel, PairKey, UnaryKey


@dataclass
class TrainingConfig:
    """Knobs of the trainer; defaults work for corpus-scale experiments."""

    epochs: int = 5
    learning_rate: float = 1.0
    #: Multiplicative decay applied once per epoch (L2-style shrinkage).
    weight_decay: float = 1.0
    #: Shuffle graphs between epochs.
    shuffle: bool = True
    seed: int = 13
    #: ICM beam during training inference.
    beam: int = 32
    max_sweeps: int = 4
    use_unary: bool = True
    #: Average weights over updates (recommended).
    average: bool = True
    #: Inference engine for loss-augmented MAP: "compiled" (vectorised,
    #: the default) or "scalar" (the oracle).  Both train bit-identical
    #: models; the knob exists for the oracle tests and benchmarks.
    engine: str = "compiled"


@dataclass
class TrainingStats:
    """What happened during training (reported by benchmarks)."""

    epochs: int = 0
    updates: int = 0
    graphs: int = 0
    train_seconds: float = 0.0
    parameters: int = 0


class CrfTrainer:
    """Trains a :class:`CrfModel` from gold-labelled graphs."""

    def __init__(self, config: Optional[TrainingConfig] = None) -> None:
        self.config = config or TrainingConfig()

    def train(
        self,
        graphs: Sequence[CrfGraph],
        checkpoint: Optional[TrainerCheckpoint] = None,
    ) -> Tuple[CrfModel, TrainingStats]:
        cfg = self.config
        if cfg.engine not in ("compiled", "scalar"):
            raise ValueError(
                f"unknown inference engine {cfg.engine!r}; "
                "expected 'compiled' or 'scalar'"
            )
        # The model shares the graphs' feature space: factor ids in the
        # graphs index directly into the model's weight keys.  A corpus
        # that knows its own space (a streaming ShardedCorpus, which
        # decodes every graph against one merged space) skips the
        # per-graph identity scan -- scanning would force a full decode
        # pass just to verify what the corpus guarantees by construction.
        space = getattr(graphs, "space", None)
        if space is None:
            space = graphs[0].space if len(graphs) else None
            for graph in graphs:
                if graph.space is not space:
                    raise ValueError(
                        "all training graphs must share one FeatureSpace; got "
                        "graphs built by extractors with different spaces"
                    )
        model = CrfModel(use_unary=cfg.use_unary, space=space)
        stats = TrainingStats(graphs=len(graphs))
        started = time.perf_counter()

        # Pass 0: populate the candidate index from gold labels.
        for graph in graphs:
            for node in graph.unknowns:
                model.observe_training_node(node, graph)

        # Averaging accumulators (lazy timestamp trick).
        pair_totals: Dict[PairKey, float] = {}
        pair_stamp: Dict[PairKey, int] = {}
        unary_totals: Dict[UnaryKey, float] = {}
        unary_stamp: Dict[UnaryKey, int] = {}
        step = 0
        # Vectorised scoring pack; built after pass 0 / checkpoint restore
        # (when the vocab and any restored weights are in place) and kept
        # in sync by write-through from the bump closures, so each
        # loss-augmented inference call reuses the pack instead of
        # re-freezing the whole model.
        compiled = None

        def bump_pair(key: PairKey, delta: float) -> None:
            if cfg.average:
                pair_totals[key] = pair_totals.get(key, 0.0) + model.pair_weights[
                    key
                ] * (step - pair_stamp.get(key, 0))
                pair_stamp[key] = step
            model.pair_weights[key] += delta
            if compiled is not None:
                compiled.set_pair(key, model.pair_weights[key])

        def bump_unary(key: UnaryKey, delta: float) -> None:
            if cfg.average:
                unary_totals[key] = unary_totals.get(key, 0.0) + model.unary_weights[
                    key
                ] * (step - unary_stamp.get(key, 0))
                unary_stamp[key] = step
            model.unary_weights[key] += delta
            if compiled is not None:
                compiled.set_unary(key, model.unary_weights[key])

        rng = random.Random(cfg.seed)
        order = list(range(len(graphs)))

        # Resume: the checkpoint snapshot is the complete mid-training
        # state -- weights, lazy-average accumulators, the shuffle RNG
        # *and* the order list it permutes in place (epoch N+1's
        # permutation depends on epoch N's) -- restored in saved
        # insertion order so finishing the remaining epochs writes a
        # model bit-identical to the uninterrupted run.
        start_epoch = 0
        if checkpoint is not None and checkpoint.state is not None:
            state = checkpoint.state
            if state.get("kind") != "crf":
                raise CheckpointMismatchError(
                    f"checkpoint {checkpoint.path!r} holds "
                    f"{state.get('kind')!r} trainer state, not 'crf'"
                )
            step = int(state["step"])
            stats.updates = int(state["updates"])
            stats.epochs = start_epoch = int(state["epochs_done"])
            saved_rng = state["rng"]
            rng.setstate((saved_rng[0], tuple(saved_rng[1]), saved_rng[2]))
            order = [int(i) for i in state["order"]]
            for l, r, o, w in state["pair_weights"]:
                model.pair_weights[(l, r, o)] = w
            for l, r, w in state["unary_weights"]:
                model.unary_weights[(l, r)] = w
            for l, r, o, v in state["pair_totals"]:
                pair_totals[(l, r, o)] = v
            for l, r, o, v in state["pair_stamp"]:
                pair_stamp[(l, r, o)] = int(v)
            for l, r, v in state["unary_totals"]:
                unary_totals[(l, r)] = v
            for l, r, v in state["unary_stamp"]:
                unary_stamp[(l, r)] = int(v)

        def snapshot(epochs_done: int) -> dict:
            rng_state = rng.getstate()
            return {
                "kind": "crf",
                "epochs_done": epochs_done,
                "step": step,
                "updates": stats.updates,
                "rng": [rng_state[0], list(rng_state[1]), rng_state[2]],
                "order": list(order),
                "pair_weights": [
                    [k[0], k[1], k[2], w] for k, w in model.pair_weights.items()
                ],
                "unary_weights": [
                    [k[0], k[1], w] for k, w in model.unary_weights.items()
                ],
                "pair_totals": [
                    [k[0], k[1], k[2], v] for k, v in pair_totals.items()
                ],
                "pair_stamp": [
                    [k[0], k[1], k[2], v] for k, v in pair_stamp.items()
                ],
                "unary_totals": [[k[0], k[1], v] for k, v in unary_totals.items()],
                "unary_stamp": [[k[0], k[1], v] for k, v in unary_stamp.items()],
            }

        if cfg.engine == "compiled":
            compiled = model.compile()
        scorer = compiled if compiled is not None else model

        for epoch in range(start_epoch, cfg.epochs):
            if cfg.shuffle:
                rng.shuffle(order)
            for graph_index in order:
                graph = graphs[graph_index]
                if not len(graph):
                    continue
                gold = graph.gold_assignment()
                step += 1
                predicted = map_inference(
                    scorer,
                    graph,
                    max_sweeps=cfg.max_sweeps,
                    beam=cfg.beam,
                    loss_augmented=True,
                    gold=gold,
                )
                if predicted == gold:
                    continue
                stats.updates += 1
                lr = cfg.learning_rate
                self._apply_update(
                    model, graph, gold, predicted, lr, bump_pair, bump_unary, cfg
                )
            if cfg.weight_decay < 1.0:
                model.l2_decay(cfg.weight_decay)
                if compiled is not None:
                    # Bulk mutation: repack lazily at the next inference.
                    compiled.invalidate()
            stats.epochs += 1
            if checkpoint is not None:
                checkpoint.save_epoch(epoch + 1, snapshot(epoch + 1))
            faults.fire("train.epoch")

        if cfg.average and step > 0:
            # Flush accumulators and replace weights with their averages.
            for key, weight in list(model.pair_weights.items()):
                total = pair_totals.get(key, 0.0) + weight * (
                    step - pair_stamp.get(key, 0)
                )
                model.pair_weights[key] = total / step
            for key, weight in list(model.unary_weights.items()):
                total = unary_totals.get(key, 0.0) + weight * (
                    step - unary_stamp.get(key, 0)
                )
                model.unary_weights[key] = total / step

        stats.train_seconds = time.perf_counter() - started
        stats.parameters = model.num_parameters()
        return model, stats

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_update(
        model: CrfModel,
        graph: CrfGraph,
        gold: Sequence[str],
        predicted: Sequence[str],
        lr: float,
        bump_pair,
        bump_unary,
        cfg: TrainingConfig,
    ) -> None:
        """Subgradient step: phi(gold) - phi(predicted), on interned ids."""
        intern = model.label_id
        gold_ids = [intern(label) for label in gold]
        pred_ids = [intern(label) for label in predicted]
        for i, node in enumerate(graph.unknowns):
            for factor in node.known:
                gold_key = (gold_ids[i], factor.rel, factor.label)
                pred_key = (pred_ids[i], factor.rel, factor.label)
                if gold_key != pred_key:
                    bump_pair(gold_key, lr)
                    bump_pair(pred_key, -lr)
            for edge in node.edges:
                gold_key = (gold_ids[i], edge.rel, gold_ids[edge.other])
                pred_key = (pred_ids[i], edge.rel, pred_ids[edge.other])
                if gold_key != pred_key:
                    bump_pair(gold_key, lr)
                    bump_pair(pred_key, -lr)
            if cfg.use_unary:
                for rel in node.unary:
                    gold_key = (gold_ids[i], rel)
                    pred_key = (pred_ids[i], rel)
                    if gold_key != pred_key:
                        bump_unary(gold_key, lr)
                        bump_unary(pred_key, -lr)
