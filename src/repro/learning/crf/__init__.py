"""Conditional random fields over program-element graphs.

This package reimplements the Nice2Predict-style CRF the paper plugs AST
paths into (Sec. 3.1, 5.1), including the paper's two extensions:

* **unary factors** for paths between occurrences of the same element;
* a **top-k candidate suggestion** API.
"""

from .graph import CrfGraph, KnownNeighbor, UnknownNode
from .model import CrfModel
from .inference import map_inference, topk_for_node
from .training import CrfTrainer, TrainingConfig

__all__ = [
    "CrfGraph",
    "KnownNeighbor",
    "UnknownNode",
    "CrfModel",
    "map_inference",
    "topk_for_node",
    "CrfTrainer",
    "TrainingConfig",
]
