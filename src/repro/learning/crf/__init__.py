"""Conditional random fields over program-element graphs.

This package reimplements the Nice2Predict-style CRF the paper plugs AST
paths into (Sec. 3.1, 5.1), including the paper's two extensions:

* **unary factors** for paths between occurrences of the same element;
* a **top-k candidate suggestion** API.

Architecture -- columnar layout and oracle gating
-------------------------------------------------

Training state lives in python dicts (:class:`~repro.learning.crf.model.
CrfModel`): sparse weight tables keyed by interned integer tuples, plus
the candidate index that bounds each node's label beam.  That layout is
right for sparse subgradient updates but wrong for inference, where ICM
re-scores whole candidate beams per node per sweep.  Inference therefore
runs on a parallel **columnar** representation:

* :meth:`CrfGraph.columnar() <repro.learning.crf.graph.CrfGraph.columnar>`
  re-lays a graph's per-node factor lists as flat CSR-style id arrays
  (structure-of-arrays, cached per graph);
* :meth:`CrfModel.compile() <repro.learning.crf.model.CrfModel.compile>`
  packs the weight dicts into sorted parallel numpy arrays keyed on the
  ``(factor-group, label)`` plane
  (:class:`~repro.learning.crf.compiled.CompiledCrfModel`), so one
  ``searchsorted`` gathers a whole ``factors x candidates`` weight
  matrix and a factor-ordered reduction scores the beam.

The scalar path (``CrfModel.node_score`` + the string-based sweep in
:mod:`~repro.learning.crf.inference`) is kept verbatim as the
**bit-identity oracle**: the compiled engine must reproduce its output
exactly -- scores, tie-breaks, fallbacks -- and the oracle suite
(``tests/test_crf_compiled.py``) holds that gate.  This mirrors how the
optimised path extractor is gated on ``ReferencePathExtractor``:
the fast path may only ever be a faster spelling of the slow one.
"""

from .compiled import CompiledCrfModel
from .graph import ColumnarGraph, CrfGraph, KnownNeighbor, UnknownNode
from .model import CrfModel
from .inference import map_inference, topk_for_node
from .training import CrfTrainer, TrainingConfig

__all__ = [
    "ColumnarGraph",
    "CompiledCrfModel",
    "CrfGraph",
    "KnownNeighbor",
    "UnknownNode",
    "CrfModel",
    "map_inference",
    "topk_for_node",
    "CrfTrainer",
    "TrainingConfig",
]
