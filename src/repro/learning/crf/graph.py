"""CRF graph structure over program elements.

Following Raychev et al. [40] and Sec. 3.1 of the paper, each *program
element* (not each AST node) is a random variable: all AST occurrences of
one identifier are merged into a single CRF node.  Factors connect:

* an unknown element and a **known** neighbour (identifier with a fixed
  label, literal, property name, ...) -- pairwise factor with one free end;
* two **unknown** elements -- pairwise factor with two free ends;
* an unknown element with itself -- a **unary factor**, derived from paths
  between different occurrences of the same element (the paper's
  Nice2Predict extension, worth about 1.5% accuracy).

The relation attached to each factor is the abstract path encoding; with
the ``no-path`` abstraction all relations collapse into one symbol, which
is exactly the "bag of near identifiers" baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class KnownNeighbor:
    """A pairwise factor between an unknown node and a fixed-label value.

    ``rel`` is directional *from* the unknown element *to* the neighbour.
    """

    rel: str
    label: str


@dataclass(frozen=True)
class UnknownEdge:
    """A pairwise factor between two unknown nodes.

    Stored on the side of node ``owner``; ``other`` is the peer's index in
    the graph.  ``rel`` is directional from owner to peer.
    """

    rel: str
    other: int


@dataclass
class UnknownNode:
    """One predictable program element and its factors."""

    #: Gold label (the original, stripped name); empty at pure inference.
    gold: str = ""
    #: Opaque element key for reporting (e.g. the frontend binding).
    key: str = ""
    #: Pairwise factors to known neighbours.
    known: List[KnownNeighbor] = field(default_factory=list)
    #: Pairwise factors to other unknown nodes (directional, this side).
    edges: List[UnknownEdge] = field(default_factory=list)
    #: Unary factors: relations between occurrences of this element.
    unary: List[str] = field(default_factory=list)

    def degree(self) -> int:
        return len(self.known) + len(self.edges) + len(self.unary)


class CrfGraph:
    """A factor graph for one program (one file in our corpora)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.unknowns: List[UnknownNode] = []
        self._key_to_index: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_unknown(self, key: str, gold: str = "") -> int:
        """Add (or fetch) the unknown node for an element key."""
        if key in self._key_to_index:
            return self._key_to_index[key]
        index = len(self.unknowns)
        self.unknowns.append(UnknownNode(gold=gold, key=key))
        self._key_to_index[key] = index
        return index

    def index_of(self, key: str) -> Optional[int]:
        return self._key_to_index.get(key)

    def add_known_factor(self, index: int, rel: str, label: str) -> None:
        self.unknowns[index].known.append(KnownNeighbor(rel, label))

    def add_unknown_factor(self, a: int, b: int, rel: str, rel_reverse: str) -> None:
        """Connect two unknowns; each side stores its directional relation."""
        if a == b:
            raise ValueError("use add_unary_factor for self relations")
        self.unknowns[a].edges.append(UnknownEdge(rel, b))
        self.unknowns[b].edges.append(UnknownEdge(rel_reverse, a))

    def add_unary_factor(self, index: int, rel: str) -> None:
        self.unknowns[index].unary.append(rel)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.unknowns)

    def gold_assignment(self) -> List[str]:
        return [node.gold for node in self.unknowns]

    def factor_count(self) -> int:
        return sum(node.degree() for node in self.unknowns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrfGraph({self.name!r}, nodes={len(self.unknowns)}, "
            f"factors={self.factor_count()})"
        )
