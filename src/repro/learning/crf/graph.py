"""CRF graph structure over program elements.

Following Raychev et al. [40] and Sec. 3.1 of the paper, each *program
element* (not each AST node) is a random variable: all AST occurrences of
one identifier are merged into a single CRF node.  Factors connect:

* an unknown element and a **known** neighbour (identifier with a fixed
  label, literal, property name, ...) -- pairwise factor with one free end;
* two **unknown** elements -- pairwise factor with two free ends;
* an unknown element with itself -- a **unary factor**, derived from paths
  between different occurrences of the same element (the paper's
  Nice2Predict extension, worth about 1.5% accuracy).

Factors are stored as **integer ids** in the graph's
:class:`~repro.core.interning.FeatureSpace`: ``rel`` is a path-vocab id
(the abstract path encoding) and a known neighbour's ``label`` is a
value-vocab id.  The ``add_*_factor`` methods accept either ids (the
fast path used by the task builders, which intern at extraction time) or
raw strings (hand-written builders and tests), interning the latter on
the way in.  With the ``no-path`` abstraction all relations collapse
into one id, which is exactly the "bag of near identifiers" baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...core.interning import DEFAULT_SPACE, FeatureSpace

#: A relation or neighbour label as callers may pass it: an interned id
#: or a raw string (interned by the graph).
Feature = Union[int, str]


@dataclass(frozen=True)
class KnownNeighbor:
    """A pairwise factor between an unknown node and a fixed-label value.

    ``rel`` is the path-vocab id of the relation, directional *from* the
    unknown element *to* the neighbour; ``label`` is the value-vocab id
    of the neighbour's label.
    """

    rel: int
    label: int


@dataclass(frozen=True)
class UnknownEdge:
    """A pairwise factor between two unknown nodes.

    Stored on the side of node ``owner``; ``other`` is the peer's index in
    the graph.  ``rel`` is the path-vocab id, directional owner -> peer.
    """

    rel: int
    other: int


@dataclass(frozen=True)
class ColumnarGraph:
    """Structure-of-arrays view of a :class:`CrfGraph`'s factors.

    Every per-node python list of dataclass factors is re-laid as flat
    ``int64`` arrays with CSR-style ``*_off`` offset arrays (length
    ``n_nodes + 1``): node ``i``'s known factors live at
    ``known_rel[known_off[i]:known_off[i+1]]`` (parallel with
    ``known_label``), and likewise for edges and unary factors.  The
    vectorised inference engine walks these arrays instead of python
    tuples -- one contiguous gather per node instead of one attribute
    lookup per factor -- and :class:`~repro.learning.crf.compiled.
    CompiledCrfModel` resolves them against its packed weight rows.

    The view is immutable and model-independent; :meth:`CrfGraph.columnar`
    caches it per graph until another factor is added.
    """

    n_nodes: int
    known_rel: np.ndarray
    known_label: np.ndarray
    known_off: np.ndarray
    edge_rel: np.ndarray
    edge_other: np.ndarray
    edge_off: np.ndarray
    unary_rel: np.ndarray
    unary_off: np.ndarray
    #: Plain-int copies of the factor columns (``ndarray.tolist()``), kept
    #: because the compiled model resolves group rows through python dict
    #: lookups and iterating a list of ints is ~3x faster than iterating
    #: numpy scalars.
    known_rel_list: List[int]
    known_label_list: List[int]
    edge_rel_list: List[int]
    edge_other_list: List[int]
    unary_rel_list: List[int]


@dataclass
class UnknownNode:
    """One predictable program element and its factors."""

    #: Gold label (the original, stripped name); empty at pure inference.
    gold: str = ""
    #: Opaque element key for reporting (e.g. the frontend binding).
    key: str = ""
    #: Pairwise factors to known neighbours.
    known: List[KnownNeighbor] = field(default_factory=list)
    #: Pairwise factors to other unknown nodes (directional, this side).
    edges: List[UnknownEdge] = field(default_factory=list)
    #: Unary factors: relation ids between occurrences of this element.
    unary: List[int] = field(default_factory=list)

    def degree(self) -> int:
        return len(self.known) + len(self.edges) + len(self.unary)


class CrfGraph:
    """A factor graph for one program (one file in our corpora).

    ``space`` is the feature space the factor ids reference; graphs built
    by one extractor (or one pipeline) share its space, and hand-built
    graphs default to the process-wide
    :data:`~repro.core.interning.DEFAULT_SPACE`.
    """

    def __init__(self, name: str = "", space: Optional[FeatureSpace] = None) -> None:
        self.name = name
        self.space = space if space is not None else DEFAULT_SPACE
        self.unknowns: List[UnknownNode] = []
        self._key_to_index: Dict[str, int] = {}
        #: Bumped on every structural mutation; invalidates the cached
        #: columnar view (factor lists may also be appended to directly
        #: by task builders -- those run before the first columnar() call).
        self._version = 0
        self._columnar: Optional[Tuple[int, "ColumnarGraph"]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_unknown(self, key: str, gold: str = "") -> int:
        """Add (or fetch) the unknown node for an element key."""
        if key in self._key_to_index:
            return self._key_to_index[key]
        index = len(self.unknowns)
        self.unknowns.append(UnknownNode(gold=gold, key=key))
        self._key_to_index[key] = index
        self._version += 1
        return index

    def index_of(self, key: str) -> Optional[int]:
        return self._key_to_index.get(key)

    def rel_id(self, rel: Feature) -> int:
        """Normalise a relation (string or id) to its path-vocab id."""
        return self.space.paths.intern(rel) if isinstance(rel, str) else rel

    def value_id(self, label: Feature) -> int:
        """Normalise a label (string or id) to its value-vocab id."""
        return self.space.values.intern(label) if isinstance(label, str) else label

    def add_known_factor(self, index: int, rel: Feature, label: Feature) -> None:
        self.unknowns[index].known.append(
            KnownNeighbor(self.rel_id(rel), self.value_id(label))
        )
        self._version += 1

    def add_unknown_factor(
        self, a: int, b: int, rel: Feature, rel_reverse: Feature
    ) -> None:
        """Connect two unknowns; each side stores its directional relation."""
        if a == b:
            raise ValueError("use add_unary_factor for self relations")
        self.unknowns[a].edges.append(UnknownEdge(self.rel_id(rel), b))
        self.unknowns[b].edges.append(UnknownEdge(self.rel_id(rel_reverse), a))
        self._version += 1

    def add_unary_factor(self, index: int, rel: Feature) -> None:
        self.unknowns[index].unary.append(self.rel_id(rel))
        self._version += 1

    # ------------------------------------------------------------------
    # Columnar view
    # ------------------------------------------------------------------
    def columnar(self) -> ColumnarGraph:
        """The structure-of-arrays view of this graph's factors.

        Built once and cached; any later ``add_*`` call invalidates the
        cache.  (Builders that extend the per-node factor lists directly
        -- the shard decoder -- finish before the first ``columnar()``
        call, so the snapshot always sees the complete graph.)
        """
        cached = self._columnar
        if cached is not None and cached[0] == self._version:
            return cached[1]
        n = len(self.unknowns)
        known_rel: List[int] = []
        known_label: List[int] = []
        known_off = np.zeros(n + 1, dtype=np.int64)
        edge_rel: List[int] = []
        edge_other: List[int] = []
        edge_off = np.zeros(n + 1, dtype=np.int64)
        unary_rel: List[int] = []
        unary_off = np.zeros(n + 1, dtype=np.int64)
        for i, node in enumerate(self.unknowns):
            for factor in node.known:
                known_rel.append(factor.rel)
                known_label.append(factor.label)
            for edge in node.edges:
                edge_rel.append(edge.rel)
                edge_other.append(edge.other)
            unary_rel.extend(node.unary)
            known_off[i + 1] = len(known_rel)
            edge_off[i + 1] = len(edge_rel)
            unary_off[i + 1] = len(unary_rel)
        view = ColumnarGraph(
            n_nodes=n,
            known_rel=np.asarray(known_rel, dtype=np.int64),
            known_label=np.asarray(known_label, dtype=np.int64),
            known_off=known_off,
            edge_rel=np.asarray(edge_rel, dtype=np.int64),
            edge_other=np.asarray(edge_other, dtype=np.int64),
            edge_off=edge_off,
            unary_rel=np.asarray(unary_rel, dtype=np.int64),
            unary_off=unary_off,
            known_rel_list=known_rel,
            known_label_list=known_label,
            edge_rel_list=edge_rel,
            edge_other_list=edge_other,
            unary_rel_list=unary_rel,
        )
        self._columnar = (self._version, view)
        return view

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def decode_rel(self, rel_id: int) -> str:
        """The abstract path encoding behind a relation id."""
        return self.space.paths.value(rel_id)

    def decode_value(self, value_id: int) -> str:
        """The label string behind a value id."""
        return self.space.values.value(value_id)

    def __len__(self) -> int:
        return len(self.unknowns)

    def gold_assignment(self) -> List[str]:
        return [node.gold for node in self.unknowns]

    def factor_count(self) -> int:
        return sum(node.degree() for node in self.unknowns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrfGraph({self.name!r}, nodes={len(self.unknowns)}, "
            f"factors={self.factor_count()})"
        )
