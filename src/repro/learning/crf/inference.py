"""MAP inference and top-k suggestion for the CRF.

MAP inference uses iterated conditional modes (ICM) over per-node
candidate beams: initialise every unknown node greedily from its known
neighbourhood, then sweep the nodes, moving each to its best label given
the current assignment, until a sweep changes nothing.  This is the same
family of greedy candidate-swap inference Nice2Predict uses.

``topk_for_node`` implements the paper's top-k extension (Sec. 5.1,
adopted into Nice2Predict): conditioned on the MAP assignment of the rest
of the graph, rank the candidate labels of one node.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .graph import CrfGraph
from .model import CrfModel

#: Label used to initialise nodes before the first sweep.
UNKNOWN_LABEL = "?"


def map_inference(
    model: CrfModel,
    graph: CrfGraph,
    max_sweeps: int = 8,
    beam: int = 48,
    loss_augmented: bool = False,
    gold: Optional[Sequence[str]] = None,
) -> List[str]:
    """Approximate MAP assignment for all unknown nodes of a graph.

    With ``loss_augmented=True`` (training only) a unit reward is added to
    every label different from the gold one, so the returned assignment is
    the margin violator required by structured max-margin updates.
    """
    if loss_augmented and gold is None:
        raise ValueError("loss-augmented inference requires the gold assignment")

    assignment: List[str] = [UNKNOWN_LABEL] * len(graph)
    candidate_cache: List[List[str]] = [[] for _ in range(len(graph))]

    # Greedy initialisation in order of decreasing known-degree, so highly
    # constrained nodes anchor their neighbours.
    order = sorted(
        range(len(graph)),
        key=lambda i: -(len(graph.unknowns[i].known) + len(graph.unknowns[i].unary)),
    )
    for i in order:
        node = graph.unknowns[i]
        candidates = model.candidates_for(node, assignment, beam=beam)
        candidate_cache[i] = candidates
        assignment[i] = _best_label(
            model, graph, i, candidates, assignment, loss_augmented, gold
        )

    # ICM sweeps.
    for _ in range(max_sweeps):
        changed = False
        for i in range(len(graph)):
            node = graph.unknowns[i]
            # Refresh candidates: neighbour labels may have changed.
            candidates = model.candidates_for(node, assignment, beam=beam)
            merged = list(dict.fromkeys(candidate_cache[i] + candidates))
            candidate_cache[i] = merged[:beam]
            best = _best_label(
                model, graph, i, candidate_cache[i], assignment, loss_augmented, gold
            )
            if best != assignment[i]:
                assignment[i] = best
                changed = True
        if not changed:
            break
    return assignment


def _best_label(
    model: CrfModel,
    graph: CrfGraph,
    index: int,
    candidates: Sequence[str],
    assignment: Sequence[str],
    loss_augmented: bool,
    gold: Optional[Sequence[str]],
) -> str:
    node = graph.unknowns[index]
    best_label = assignment[index]
    best_score = float("-inf")
    for label in candidates or (UNKNOWN_LABEL,):
        score = model.node_score(node, label, assignment)
        if loss_augmented and gold is not None and label != gold[index]:
            score += 1.0
        if score > best_score:
            best_score = score
            best_label = label
    return best_label


def topk_for_node(
    model: CrfModel,
    graph: CrfGraph,
    index: int,
    k: int = 8,
    assignment: Optional[Sequence[str]] = None,
    beam: int = 96,
) -> List[Tuple[str, float]]:
    """Top-k candidate labels for one node, with their scores.

    The rest of the graph is fixed to ``assignment`` (computed by MAP
    inference when not provided).  This is the API the paper used for the
    qualitative study of Table 4a.
    """
    if assignment is None:
        assignment = map_inference(model, graph)
    node = graph.unknowns[index]
    candidates = model.candidates_for(node, assignment, beam=beam)
    scored = [
        (label, model.node_score(node, label, assignment)) for label in candidates
    ]
    scored.sort(key=lambda kv: (-kv[1], kv[0]))
    return scored[:k]


def predict(model: CrfModel, graph: CrfGraph) -> List[str]:
    """Convenience wrapper: the MAP assignment."""
    return map_inference(model, graph)
