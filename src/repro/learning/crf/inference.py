"""MAP inference and top-k suggestion for the CRF.

MAP inference uses iterated conditional modes (ICM) over per-node
candidate beams: initialise every unknown node greedily from its known
neighbourhood, then sweep the nodes, moving each to its best label given
the current assignment, until a sweep changes nothing.  This is the same
family of greedy candidate-swap inference Nice2Predict uses.

``topk_for_node`` implements the paper's top-k extension (Sec. 5.1,
adopted into Nice2Predict): conditioned on the MAP assignment of the rest
of the graph, rank the candidate labels of one node.

Two engines implement the same contract:

* the **scalar** path (``model.node_score`` per candidate) -- the
  bit-identity oracle, kept deliberately simple;
* the **compiled** path, taken whenever the model argument is a
  :class:`~repro.learning.crf.compiled.CompiledCrfModel` -- ids
  end-to-end (labels decode only at the return boundary), whole beams
  scored per numpy call, and nodes whose neighbourhood has not changed
  since they were last scored skipped outright (their candidates and
  best label are pure functions of the neighbour ids, so skipping is
  exact, not approximate).

Both engines must produce bit-identical assignments, tie-breaks
included; ``tests/test_crf_compiled.py`` holds the oracle suite.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .compiled import CompiledCrfModel
from .graph import CrfGraph
from .model import CrfModel

#: Label used to initialise nodes before the first sweep, and the
#: explicit fallback candidate when a node's beam comes back empty.
UNKNOWN_LABEL = "?"

#: Either engine; the compiled one wraps (and defers candidates to) a
#: :class:`CrfModel`.
ScoringModel = Union[CrfModel, CompiledCrfModel]


def map_inference(
    model: ScoringModel,
    graph: CrfGraph,
    max_sweeps: int = 8,
    beam: int = 48,
    loss_augmented: bool = False,
    gold: Optional[Sequence[str]] = None,
) -> List[str]:
    """Approximate MAP assignment for all unknown nodes of a graph.

    With ``loss_augmented=True`` (training only) a unit reward is added to
    every label different from the gold one, so the returned assignment is
    the margin violator required by structured max-margin updates.
    """
    if loss_augmented and gold is None:
        raise ValueError("loss-augmented inference requires the gold assignment")
    if isinstance(model, CompiledCrfModel):
        return _map_inference_compiled(
            model, graph, max_sweeps, beam, loss_augmented, gold
        )

    assignment: List[str] = [UNKNOWN_LABEL] * len(graph)
    candidate_cache: List[List[str]] = [[] for _ in range(len(graph))]

    # Greedy initialisation in order of decreasing known-degree, so highly
    # constrained nodes anchor their neighbours.
    order = sorted(
        range(len(graph)),
        key=lambda i: -(len(graph.unknowns[i].known) + len(graph.unknowns[i].unary)),
    )
    for i in order:
        node = graph.unknowns[i]
        candidates = model.candidates_for(node, assignment, beam=beam)
        candidate_cache[i] = candidates
        assignment[i] = _best_label(
            model, graph, i, candidates, assignment, loss_augmented, gold
        )

    # ICM sweeps.
    for _ in range(max_sweeps):
        changed = False
        for i in range(len(graph)):
            node = graph.unknowns[i]
            # Refresh candidates: neighbour labels may have changed.
            candidates = model.candidates_for(node, assignment, beam=beam)
            merged = list(dict.fromkeys(candidate_cache[i] + candidates))
            candidate_cache[i] = merged[:beam]
            best = _best_label(
                model, graph, i, candidate_cache[i], assignment, loss_augmented, gold
            )
            if best != assignment[i]:
                assignment[i] = best
                changed = True
        if not changed:
            break
    return assignment


def _best_label(
    model: CrfModel,
    graph: CrfGraph,
    index: int,
    candidates: Sequence[str],
    assignment: Sequence[str],
    loss_augmented: bool,
    gold: Optional[Sequence[str]],
) -> str:
    node = graph.unknowns[index]
    if not candidates:
        # Explicit empty-beam fallback: score the unknown sentinel (an
        # unseen label scores exactly 0.0) rather than keeping whatever
        # the assignment happened to hold.  Both engines share this rule.
        candidates = (UNKNOWN_LABEL,)
    best_label = candidates[0]
    best_score = float("-inf")
    for label in candidates:
        score = model.node_score(node, label, assignment)
        if loss_augmented and gold is not None and label != gold[index]:
            score += 1.0
        if score > best_score:
            best_score = score
            best_label = label
    return best_label


# ----------------------------------------------------------------------
# Compiled engine
# ----------------------------------------------------------------------
def _map_inference_compiled(
    compiled: CompiledCrfModel,
    graph: CrfGraph,
    max_sweeps: int,
    beam: int,
    loss_augmented: bool,
    gold: Optional[Sequence[str]],
) -> List[str]:
    """ICM on id arrays; bit-identical to the scalar sweep above."""
    n = len(graph)
    if n == 0:
        return []
    model = compiled.model
    values = model.space.values
    cg = compiled.compile_graph(graph)
    cols = cg.cols

    # The id of the initialisation sentinel: the interned id when "?" is
    # a real (trained) label, else -1 -- which scores 0.0 and reads as
    # "unseen" to the candidate index, exactly like the string path.
    unknown_id = values.id_of(UNKNOWN_LABEL)
    fill = unknown_id if unknown_id is not None else -1
    assignment = np.full(n, fill, dtype=np.int64)
    # Plain-int shadow of the assignment for the candidate index (python
    # dict lookups hash plain ints faster than numpy scalars).
    assignment_list: List[int] = [fill] * n

    gold_ids: Optional[List[int]] = None
    if loss_augmented:
        assert gold is not None
        gold_ids = []
        for label in gold:
            gid = values.id_of(label)
            if gid is None:
                # Unseen gold: "?" must compare equal to the fallback
                # sentinel; any other unseen string can match no candidate.
                gid = fill if label == UNKNOWN_LABEL else -2
            gold_ids.append(gid)

    candidate_cache: List[List[int]] = [[] for _ in range(n)]
    # Last-scored neighbour snapshot per node; a node whose snapshot is
    # unchanged would merge identical candidates and pick the identical
    # best label, so the sweep skips it.
    last_key: List[Optional[Tuple[int, ...]]] = [None] * n
    edge_off = cg.edge_off
    edge_other = cols.edge_other

    def neighbor_key(i: int) -> Tuple[int, ...]:
        start, end = edge_off[i], edge_off[i + 1]
        if end == start:
            return ()
        return tuple(assignment[edge_other[start:end]].tolist())

    known_off, unary_off = cg.known_off, cg.unary_off
    order = sorted(
        range(n),
        key=lambda i: -(
            known_off[i + 1] - known_off[i] + unary_off[i + 1] - unary_off[i]
        ),
    )
    for i in order:
        node = graph.unknowns[i]
        candidates = model.candidate_ids_for(node, assignment_list, beam=beam)
        candidate_cache[i] = candidates
        best = _best_id(
            compiled, cg, i, candidates, assignment, loss_augmented, gold_ids, fill
        )
        assignment[i] = best
        assignment_list[i] = best
        last_key[i] = neighbor_key(i)

    for _ in range(max_sweeps):
        changed = False
        for i in range(n):
            key = neighbor_key(i)
            if key == last_key[i]:
                continue
            node = graph.unknowns[i]
            candidates = model.candidate_ids_for(node, assignment_list, beam=beam)
            merged = list(dict.fromkeys(candidate_cache[i] + candidates))[:beam]
            candidate_cache[i] = merged
            best = _best_id(
                compiled, cg, i, merged, assignment, loss_augmented, gold_ids, fill
            )
            last_key[i] = key
            if best != assignment[i]:
                assignment[i] = best
                assignment_list[i] = best
                changed = True
        if not changed:
            break
    return [
        values.value(label_id) if label_id >= 0 else UNKNOWN_LABEL
        for label_id in assignment.tolist()
    ]


def _best_id(
    compiled: CompiledCrfModel,
    cg,
    index: int,
    candidate_ids: Sequence[int],
    assignment: np.ndarray,
    loss_augmented: bool,
    gold_ids: Optional[List[int]],
    fill: int,
) -> int:
    if not candidate_ids:
        candidate_ids = [fill]  # same explicit fallback as _best_label
    candidates = np.asarray(candidate_ids, dtype=np.int64)
    scores = compiled.score_candidates(cg, index, candidates, assignment)
    if loss_augmented:
        assert gold_ids is not None
        scores = scores + np.where(candidates != gold_ids[index], 1.0, 0.0)
    return int(candidates[int(np.argmax(scores))])


def topk_for_node(
    model: ScoringModel,
    graph: CrfGraph,
    index: int,
    k: int = 8,
    assignment: Optional[Sequence[str]] = None,
    beam: int = 96,
) -> List[Tuple[str, float]]:
    """Top-k candidate labels for one node, with their scores.

    The rest of the graph is fixed to ``assignment`` (computed by MAP
    inference when not provided).  This is the API the paper used for the
    qualitative study of Table 4a.
    """
    if assignment is None:
        assignment = map_inference(model, graph)
    if isinstance(model, CompiledCrfModel):
        return _topk_compiled(model, graph, index, k, assignment, beam)
    node = graph.unknowns[index]
    candidates = model.candidates_for(node, assignment, beam=beam)
    scored = [
        (label, model.node_score(node, label, assignment)) for label in candidates
    ]
    scored.sort(key=lambda kv: (-kv[1], kv[0]))
    return scored[:k]


def _topk_compiled(
    compiled: CompiledCrfModel,
    graph: CrfGraph,
    index: int,
    k: int,
    assignment: Sequence[str],
    beam: int,
) -> List[Tuple[str, float]]:
    model = compiled.model
    values = model.space.values
    cg = compiled.compile_graph(graph)
    ids = np.fromiter(
        (
            -1 if (lid := values.id_of(label)) is None else lid
            for label in assignment
        ),
        dtype=np.int64,
        count=len(assignment),
    )
    candidate_ids = model.candidate_ids_for(
        graph.unknowns[index], ids.tolist(), beam=beam
    )
    if not candidate_ids:
        return []
    candidates = np.asarray(candidate_ids, dtype=np.int64)
    scores = compiled.score_candidates(cg, index, candidates, ids)
    scored = [
        (values.value(label_id), score)
        for label_id, score in zip(candidate_ids, scores.tolist())
    ]
    scored.sort(key=lambda kv: (-kv[1], kv[0]))
    return scored[:k]


def predict(model: ScoringModel, graph: CrfGraph) -> List[str]:
    """Convenience wrapper: the MAP assignment."""
    return map_inference(model, graph)
