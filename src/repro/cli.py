"""Command-line interface for PIGEON.

Usage::

    python -m repro.cli paths <file>            # print path-contexts
    python -m repro.cli rename <file> [...]     # deobfuscate (train on a
                                                # generated corpus first)
    python -m repro.cli experiment <language>   # run a mini experiment
    python -m repro.cli languages               # list supported languages

The CLI is a thin veneer over :class:`repro.Pigeon` and the experiment
harness; anything it does is available programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import ExtractionConfig, PathExtractor, Pigeon, parse_source, supported_languages
from .corpus import deduplicate, generate_corpus
from .corpus.generator import CorpusConfig
from .eval.harness import evaluate_crf, path_graph_builder, prepare_language_data
from .learning.crf import TrainingConfig

_EXTENSION_LANGUAGES = {
    ".js": "javascript",
    ".java": "java",
    ".py": "python",
    ".cs": "csharp",
}


def _guess_language(path: str, explicit: Optional[str]) -> str:
    if explicit:
        return explicit
    for extension, language in _EXTENSION_LANGUAGES.items():
        if path.endswith(extension):
            return language
    raise SystemExit(
        f"cannot infer language of {path!r}; pass --language explicitly"
    )


def cmd_languages(_args: argparse.Namespace) -> int:
    for language in supported_languages():
        print(language)
    return 0


def cmd_paths(args: argparse.Namespace) -> int:
    language = _guess_language(args.file, args.language)
    with open(args.file, "r", encoding="utf-8") as handle:
        source = handle.read()
    ast = parse_source(language, source)
    extractor = PathExtractor(
        ExtractionConfig(
            max_length=args.max_length,
            max_width=args.max_width,
            include_semi_paths=args.semi_paths,
        )
    )
    for extracted in extractor.extract(ast):
        print(extracted.context)
    return 0


def cmd_rename(args: argparse.Namespace) -> int:
    language = _guess_language(args.file, args.language)
    if language not in ("javascript", "python"):
        raise SystemExit("rename supports javascript and python (printable languages)")
    print(f"Training on a generated {language} corpus...", file=sys.stderr)
    files = generate_corpus(
        CorpusConfig(language=language, n_projects=args.projects, seed=args.seed)
    )
    kept, _removed = deduplicate(files)
    pigeon = Pigeon(
        language=language,
        training_config=TrainingConfig(epochs=args.epochs),
    )
    pigeon.train([f.source for f in kept])
    with open(args.file, "r", encoding="utf-8") as handle:
        source = handle.read()
    print(pigeon.rename(source))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    data = prepare_language_data(
        args.language,
        CorpusConfig(language=args.language, n_projects=args.projects, seed=args.seed),
    )
    result = evaluate_crf(
        data,
        path_graph_builder(args.max_length, args.max_width),
        training_config=TrainingConfig(epochs=args.epochs),
        name=f"{args.language} AST paths ({args.max_length}/{args.max_width})",
    )
    print(result.summary())
    print(
        f"  extraction {result.extract_seconds:.1f}s, "
        f"training {result.train_seconds:.1f}s, "
        f"{result.parameters} parameters"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="pigeon", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("languages", help="list supported languages").set_defaults(
        func=cmd_languages
    )

    paths = sub.add_parser("paths", help="print path-contexts of a file")
    paths.add_argument("file")
    paths.add_argument("--language", default=None)
    paths.add_argument("--max-length", type=int, default=7)
    paths.add_argument("--max-width", type=int, default=3)
    paths.add_argument("--semi-paths", action="store_true")
    paths.set_defaults(func=cmd_paths)

    rename = sub.add_parser("rename", help="predict names and print renamed source")
    rename.add_argument("file")
    rename.add_argument("--language", default=None)
    rename.add_argument("--projects", type=int, default=16)
    rename.add_argument("--epochs", type=int, default=5)
    rename.add_argument("--seed", type=int, default=8)
    rename.set_defaults(func=cmd_rename)

    experiment = sub.add_parser("experiment", help="run a mini variable-naming experiment")
    experiment.add_argument("language", choices=supported_languages())
    experiment.add_argument("--projects", type=int, default=12)
    experiment.add_argument("--epochs", type=int, default=4)
    experiment.add_argument("--max-length", type=int, default=7)
    experiment.add_argument("--max-width", type=int, default=3)
    experiment.add_argument("--seed", type=int, default=7)
    experiment.set_defaults(func=cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
