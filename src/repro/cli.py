"""Command-line interface for PIGEON.

Usage::

    python -m repro.cli languages [--json]        # supported languages
    python -m repro.cli cells [--json]            # valid registry cells
    python -m repro.cli paths <file>              # print path-contexts
    python -m repro.cli extract [files...]        # corpus-scale extraction
                                                  # stats (optionally --workers N)
    python -m repro.cli shard build --out DIR ... # persist a corpus as shards
    python -m repro.cli shard build --out DIR --partition 2/4 ...
                                                  # build one machine's slice
                                                  # of the shard plan
    python -m repro.cli shard gather DIR... --out DIR
                                                  # collect partition outputs
                                                  # into one validated set
    python -m repro.cli shard info DIR            # inspect/verify a shard set
    python -m repro.cli shard merge DIR           # merge shard vocabs
    python -m repro.cli train --model m.json ...  # train + save a pipeline
    python -m repro.cli train --model m.bin --format binary ...
                                                  # save a mmap-ready binary
                                                  # artifact instead of JSON
    python -m repro.cli train --model m.json --shards DIR
                                                  # stream a sharded corpus
                                                  # through training instead
    python -m repro.cli model pack IN OUT [--prune-min-count N] [--format binary]
                                                  # re-pack (and optionally
                                                  # prune) a saved model
    python -m repro.cli model info PATH           # header, sections, sizes,
                                                  # prune provenance
    python -m repro.cli model verify PATH         # full integrity check
    python -m repro.cli predict --model m.json <file> [--top K]
    python -m repro.cli predict --server URL <file>
                                                  # thin client against a
                                                  # running prediction server
    python -m repro.cli serve --model m.json      # async batched HTTP server
    python -m repro.cli fleet serve --model m.json --replicas 3
                                                  # consistent-hash router over
                                                  # N shared-nothing replicas
    python -m repro.cli fleet stats [URL]         # merged fleet statistics
    python -m repro.cli fleet reload [URL]        # rolling drain-restart
    python -m repro.cli rename <file> [...]       # deobfuscate (trains on a
                                                  # generated corpus first)
    python -m repro.cli experiment <language>     # run a mini experiment

The CLI is a thin veneer over :class:`repro.api.Pipeline` and the
experiment harness; anything it does is available programmatically.
``train`` and ``predict`` emit JSON on stdout so the commands compose
with tooling.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from . import ExtractionConfig, PathExtractor, parse_source, supported_languages
from .core.service import ExtractionService
from .api import Pipeline, RunSpec
from .corpus import deduplicate, generate_corpus
from .corpus.generator import CorpusConfig
from .eval.harness import compatible_specs, evaluate_crf, path_graph_builder, prepare_language_data
from .learning.crf import TrainingConfig

_EXTENSION_LANGUAGES = {
    ".js": "javascript",
    ".java": "java",
    ".py": "python",
    ".cs": "csharp",
}


def _guess_language(path: str, explicit: Optional[str]) -> str:
    if explicit:
        return explicit
    extension = os.path.splitext(path)[1]
    language = _EXTENSION_LANGUAGES.get(extension)
    if language is None:
        raise SystemExit(
            f"cannot infer language of {path!r}; pass --language explicitly"
        )
    return language


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_languages(args: argparse.Namespace) -> int:
    names = supported_languages()
    if args.json:
        print(json.dumps(list(names)))
    else:
        for language in names:
            print(language)
    return 0


def cmd_cells(args: argparse.Namespace) -> int:
    specs = compatible_specs(
        languages=[args.language] if args.language else None,
        tasks=[args.task] if args.task else None,
    )
    if args.json:
        print(json.dumps([spec.to_dict() for spec in specs], indent=2))
    else:
        for spec in specs:
            print(spec.cell())
    return 0


def cmd_paths(args: argparse.Namespace) -> int:
    language = _guess_language(args.file, args.language)
    ast = parse_source(language, _read(args.file))
    extractor = PathExtractor(
        ExtractionConfig(
            max_length=args.max_length,
            max_width=args.max_width,
            include_semi_paths=args.semi_paths,
        )
    )
    for extracted in extractor.extract(ast):
        print(extracted.context)
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    if args.files:
        language = _guess_language(args.files[0], args.language)
        sources = [_read(path) for path in args.files]
    else:
        if not args.language:
            raise SystemExit("pass files or --language to generate a corpus")
        language = args.language
        print(f"Extracting a generated {language} corpus...", file=sys.stderr)
        files = generate_corpus(
            CorpusConfig(language=language, n_projects=args.projects, seed=args.seed)
        )
        kept, _removed = deduplicate(files)
        sources = [f.source for f in kept]

    service = ExtractionService(
        config=ExtractionConfig(
            max_length=args.max_length,
            max_width=args.max_width,
            include_semi_paths=args.semi_paths,
        )
    )
    result = service.index_sources(sources, language, workers=args.workers)
    if args.show:
        space = result.space
        for file_contexts in result.contexts:
            for start_id, rel_id, end_id in file_contexts:
                print(
                    f"⟨{space.values.value(start_id)}, "
                    f"{space.paths.value(rel_id)}, "
                    f"{space.values.value(end_id)}⟩"
                )
    summary = dict(result.summary(), language=language)
    if args.json:
        print(json.dumps(summary))
    else:
        print(
            f"{summary['files']} files, {summary['paths']} path-contexts, "
            f"{summary['unique_paths']} unique paths, "
            f"{summary['unique_values']} unique values"
        )
        print(
            f"{summary['nodes']} nodes in {summary['seconds']:.2f}s "
            f"({summary['nodes_per_second']:.0f} nodes/s, "
            f"workers={summary['workers']})"
        )
    return 0


def _training_sources(
    args: argparse.Namespace, language: str, action: str = "Training on"
) -> List[str]:
    if args.files:
        return [_read(path) for path in args.files]
    print(f"{action} a generated {language} corpus...", file=sys.stderr)
    files = generate_corpus(
        CorpusConfig(language=language, n_projects=args.projects, seed=args.seed)
    )
    kept, _removed = deduplicate(files)
    return [f.source for f in kept]


def cmd_shard_build(args: argparse.Namespace) -> int:
    from .shards import build_spec_shards, parse_partition

    partition = parse_partition(args.partition) if args.partition else None
    if args.files:
        language = _guess_language(args.files[0], args.language)
    elif args.language:
        language = args.language
    else:
        raise SystemExit("pass files or --language to generate a corpus")
    # The same corpus-sourcing policy as 'pigeon train': anything else
    # would break the bit-identity between the two commands' models.
    sources = _training_sources(args, language, action="Sharding")

    if args.kind == "triples":
        config_kwargs = {}
        if args.max_length is not None:
            config_kwargs["max_length"] = args.max_length
        if args.max_width is not None:
            config_kwargs["max_width"] = args.max_width
        service = ExtractionService(config=ExtractionConfig(**config_kwargs))
        result = service.index_to_shards(
            sources, language, args.out,
            shard_size=args.shard_size, workers=args.workers,
            partition=partition, resume=args.resume,
        )
    else:
        extraction = {}
        if args.max_length is not None:
            extraction["max_length"] = args.max_length
        if args.max_width is not None:
            extraction["max_width"] = args.max_width
        spec = RunSpec(
            language=language,
            task=args.task,
            representation=args.representation,
            learner=args.learner,
            extraction=extraction,
        )
        result = build_spec_shards(
            spec, sources, args.out,
            shard_size=args.shard_size, workers=args.workers,
            partition=partition, resume=args.resume,
        )
    summary = dict(result.summary(), language=language, kind=args.kind)
    if args.json:
        print(json.dumps(summary))
    else:
        partition_note = (
            f" (partition {summary['partition']} of a "
            f"{summary['planned_shards']}-shard plan)"
            if "partition" in summary
            else ""
        )
        print(
            f"{summary['shards']} shards, {summary['files']} files, "
            f"{summary['paths']} path records -> {args.out}{partition_note}"
        )
        resumed_note = (
            f", {summary['skipped']} verified shards skipped"
            if "skipped" in summary
            else ""
        )
        print(
            f"built in {summary['seconds']:.2f}s "
            f"({summary['files_per_second']:.0f} files/s, "
            f"workers={summary['workers']}{resumed_note})"
        )
    return 0


def cmd_shard_gather(args: argparse.Namespace) -> int:
    from .shards import gather_shards

    summary = gather_shards(args.partitions, args.out)
    if args.json:
        print(json.dumps(summary))
    else:
        print(
            f"gathered {summary['shards']} shards from "
            f"{summary['partitions']} partitions -> {args.out} "
            f"({summary['files']} files, {summary['paths']} path records; "
            f"indices complete, headers agree)"
        )
    return 0


def cmd_shard_info(args: argparse.Namespace) -> int:
    from .shards import ShardSet

    shard_set = ShardSet.open(args.shards)
    if args.verify:
        for reader in shard_set:
            reader.verify()
    summary = shard_set.summary()
    if args.json:
        summary["verified"] = bool(args.verify)
        summary["spec"] = shard_set.spec_dict
        summary["shard_files"] = [
            {"path": r.path, "shard_index": r.shard_index, "files": r.files}
            for r in shard_set
        ]
        print(json.dumps(summary, indent=2))
    else:
        spec = shard_set.spec_dict
        cell = (
            f"{spec['language']}/{spec['task']}/{spec['representation']}/{spec['learner']}"
            if spec
            else f"{summary['language']} (raw extraction)"
        )
        verified = " (digests verified)" if args.verify else ""
        print(
            f"{summary['shards']} {summary['kind']} shards for {cell}: "
            f"{summary['files']} files, {summary['paths']} path records{verified}"
        )
        for reader in shard_set:
            print(
                f"  shard {reader.shard_index:>3}  {reader.files:>5} files  "
                f"{reader.meta.get('paths', 0):>8} paths  {reader.path}"
            )
    return 0


def cmd_shard_merge(args: argparse.Namespace) -> int:
    from .shards import ShardSet, VocabMerger, save_manifest

    shard_set = ShardSet.open(args.shards)
    merged = VocabMerger().merge(shard_set)
    summary = merged.summary()
    if args.out:
        save_manifest(args.out, shard_set, merged)
        summary["manifest"] = args.out
    if args.json:
        print(json.dumps(summary))
    else:
        print(
            f"merged {summary['shards']} shards: {summary['unique_paths']} "
            f"unique paths, {summary['unique_values']} unique values"
            + (f" -> {args.out}" if args.out else "")
        )
    return 0


def _checkpoint_args(args: argparse.Namespace):
    """Resolve --checkpoint/--resume into (path, resume) for train()."""
    checkpoint = args.checkpoint
    resume = False
    if args.resume:
        if checkpoint and checkpoint != args.resume:
            raise SystemExit(
                "error: --checkpoint and --resume name different files; "
                "--resume CKPT already implies checkpointing to CKPT"
            )
        checkpoint = args.resume
        resume = True
    return checkpoint, resume


def cmd_train(args: argparse.Namespace) -> int:
    if args.shards:
        return _train_from_shards(args)
    if args.merged:
        raise SystemExit("--merged applies to --shards training only")
    if not args.language:
        raise SystemExit("pass --language (or --shards DIR, which carries it)")
    extraction = {}
    if args.max_length is not None:
        extraction["max_length"] = args.max_length
    if args.max_width is not None:
        extraction["max_width"] = args.max_width
    # --epochs lands in both option dicts; each learner reads its own
    # (crf -> training, word2vec -> sgns, third-party -> its choice).
    spec = RunSpec(
        language=args.language,
        task=args.task or "variable_naming",
        representation=args.representation or "ast-paths",
        learner=args.learner or "crf",
        extraction=extraction,
        training={"epochs": args.epochs},
        sgns={"epochs": args.epochs},
    )
    checkpoint, resume = _checkpoint_args(args)
    pipeline = Pipeline(spec)
    stats = pipeline.train(
        _training_sources(args, args.language),
        checkpoint=checkpoint,
        resume=resume,
    )
    pipeline.save(args.model, format=args.format)
    print(json.dumps(_train_report(args.model, spec, stats, format=args.format)))
    return 0


def _train_from_shards(args: argparse.Namespace) -> int:
    """``pigeon train --shards DIR``: stream a sharded corpus through
    training.  The spec rides in the shard headers, so only training
    hyper-parameters (``--epochs``) are taken from the command line."""
    from .shards import ShardSet

    if args.files:
        raise SystemExit("pass --shards DIR or training files, not both")
    if args.max_length is not None or args.max_width is not None:
        raise SystemExit(
            "error: extraction limits ride in the shard headers; rebuild "
            "the shards with 'pigeon shard build --max-length/--max-width' "
            "instead of passing them to train --shards"
        )
    shard_set = ShardSet.open(args.shards)
    spec_dict = shard_set.spec_dict
    if spec_dict is None:
        raise SystemExit(
            f"error: shards in {args.shards!r} are raw extraction shards "
            f"(kind {shard_set.kind!r}); training needs view shards from "
            f"'pigeon shard build'"
        )
    spec_dict["training"] = {"epochs": args.epochs}
    spec_dict["sgns"] = {"epochs": args.epochs}
    spec = RunSpec.from_dict(spec_dict)
    # Any explicitly given axis must agree with what the shards were
    # built for -- silently training a different cell would be worse
    # than an error.
    for axis in ("language", "task", "representation", "learner"):
        given = getattr(args, axis)
        built = getattr(spec, axis)
        if given is not None and given != built:
            raise SystemExit(
                f"error: shards were built for {axis} {built!r}, "
                f"not {given!r}"
            )
    checkpoint, resume = _checkpoint_args(args)
    pipeline = Pipeline(spec)
    stats = pipeline.train(
        shards=shard_set, merged=args.merged, checkpoint=checkpoint, resume=resume
    )
    pipeline.save(args.model, format=args.format)
    print(
        json.dumps(
            _train_report(
                args.model, spec, stats, shards=len(shard_set), format=args.format
            )
        )
    )
    return 0


def _train_report(
    model: str,
    spec: RunSpec,
    stats,
    shards: Optional[int] = None,
    format: str = "json",
) -> dict:
    report = {
        "model": model,
        "format": format,
        "spec": spec.to_dict(),
        "files_trained": stats.files_trained,
        "elements_trained": stats.elements_trained,
        "parameters": stats.parameters,
        "train_seconds": round(stats.train_seconds, 3),
    }
    if shards is not None:
        report["shards"] = shards
    return report


def cmd_model_pack(args: argparse.Namespace) -> int:
    from .artifacts import pack_model

    info = pack_model(
        args.input,
        args.output,
        format=args.format,
        prune_min_count=args.prune_min_count,
        accuracy_delta_budget=args.accuracy_delta_budget,
    )
    print(json.dumps(info))
    return 0


def cmd_model_info(args: argparse.Namespace) -> int:
    from .artifacts import artifact_info

    info = artifact_info(args.path)
    if args.json:
        print(json.dumps(info, indent=2))
        return 0
    spec = info["spec"] or {}
    cell = "/".join(
        str(spec.get(axis, "?"))
        for axis in ("language", "task", "representation", "learner")
    )
    print(
        f"{info['path']}: {info['kind']} ({info['format']}), cell {cell}, "
        f"{info['file_bytes']} bytes"
    )
    if info["prune"]:
        prune = info["prune"]
        print(
            f"  pruned: min_rel_count={prune.get('min_rel_count')}, "
            f"accuracy_delta_budget={prune.get('accuracy_delta_budget')}"
        )
    for section in info["sections"]:
        shape = "x".join(str(dim) for dim in section["shape"]) or "scalar"
        print(
            f"  {section['name']:<24} {section['dtype']:>6} "
            f"{shape:>12} {section['nbytes']:>10} bytes"
        )
    return 0


def cmd_model_verify(args: argparse.Namespace) -> int:
    from .artifacts import ModelArtifact, is_model_artifact
    from .resilience.atomicio import read_stamped_json

    if is_model_artifact(args.path):
        ModelArtifact.open(args.path, verify_payload=True)
        kind = "binary"
    else:
        read_stamped_json(
            args.path,
            require_digest=True,
            hint="the saved model is torn -- retrain or restore a backup",
        )
        kind = "json"
    print(f"{args.path}: OK ({kind}; digests verified)")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    # --fleet is --server pointed at a fleet router; the router speaks
    # the same /predict dialect, so the thin client is identical.
    if args.fleet:
        if args.server:
            raise SystemExit("pass --server or --fleet, not both")
        args.server = args.fleet
    if args.server and args.model:
        raise SystemExit("pass either --model (local) or --server (remote), not both")
    if args.server and args.engine:
        raise SystemExit(
            "--engine is a local (--model) option; the server picks its "
            "engine at startup (pigeon serve --engine)"
        )
    source = _read(args.file)
    if args.server:
        from .serving.client import ServingClient, ServingError

        # Infer the routing language from the file extension like every
        # local subcommand does; an unknown extension stays None and the
        # server resolves it (or reports ambiguity) itself.
        language = args.language or _EXTENSION_LANGUAGES.get(
            os.path.splitext(args.file)[1]
        )
        with ServingClient(args.server) as client:
            try:
                response = client.predict(
                    source,
                    language=language,
                    task=args.task,
                    top=args.top,
                )
            except ServingError as error:
                raise SystemExit(f"error: {error}") from error
        result = dict({"file": args.file}, **response)
    elif args.model:
        pipeline = Pipeline.load(args.model)
        if args.engine:
            if not hasattr(pipeline.learner, "engine"):
                raise SystemExit(
                    f"error: --engine applies to CRF models, but "
                    f"{args.model!r} holds a {pipeline.spec.learner!r} learner"
                )
            pipeline.learner.engine = args.engine
        result = {
            "file": args.file,
            "cell": pipeline.spec.cell(),
        }
        engine = getattr(pipeline.learner, "engine", None)
        if engine is not None:
            result["engine"] = engine
        if args.top:
            result["suggestions"] = {
                key: [[label, score] for label, score in ranked]
                for key, ranked in pipeline.suggest(source, k=args.top).items()
            }
        else:
            result["predictions"] = pipeline.predict(source)
    else:
        raise SystemExit("pass --model FILE or --server URL")
    print(json.dumps(result, indent=2))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serving import ModelHost, PredictionServer

    host = ModelHost(args.model, workers=args.workers, engine=args.engine)
    server = PredictionServer(
        host,
        address=args.host,
        port=args.port,
        batch_size=args.batch_size,
        batch_wait_ms=args.batch_wait_ms,
        cache_size=args.cache_size,
    )

    async def _serve() -> None:
        import signal

        await server.start()
        print(
            f"serving {', '.join(host.cells())} on {server.url} "
            f"(workers={host.workers}, batch={server.batcher.batch_size}"
            f"/{args.batch_wait_ms}ms, cache={server.cache.capacity})",
            file=sys.stderr,
        )
        # One machine-readable ready line on stdout: orchestrators (the
        # fleet's subprocess spawner, scripts) learn the bound port --
        # which matters with --port 0 -- without scraping stderr.
        print(
            json.dumps({"ready": True, "url": server.url, "models": host.cells()}),
            flush=True,
        )
        # SIGINT and SIGTERM both mean "drain and leave": without a
        # handler SIGTERM would kill mid-batch, and a shell-backgrounded
        # process may have SIGINT masked entirely.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread / non-Unix: Ctrl-C still works
        try:
            await stop.wait()
        finally:
            print("draining in-flight requests...", file=sys.stderr)
            await server.shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    except OSError as error:
        _bind_error(error, args.host, args.port)
        raise
    return 0


def _bind_error(error: OSError, host: str, port: int) -> None:
    """Turn a bind failure into a one-line exit, re-raise anything else."""
    import errno

    if error.errno in (errno.EADDRINUSE, errno.EACCES):
        raise SystemExit(
            f"error: cannot bind {host}:{port}: {error.strerror or error} "
            f"(is another server already on that port?)"
        ) from error


def cmd_fleet_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .fleet import FleetRouter, ReplicaSet

    if args.replicas < 1:
        raise SystemExit("--replicas must be >= 1")
    if args.in_process:
        replicas = ReplicaSet.in_process(
            args.model,
            args.replicas,
            batch_size=args.batch_size,
            batch_wait_ms=args.batch_wait_ms,
            cache_size=args.cache_size,
        )
    else:
        replicas = ReplicaSet.spawn(
            args.model,
            args.replicas,
            base_port=args.base_port,
            workers=args.workers,
        )
    print(
        f"starting {args.replicas} "
        f"{'in-process' if args.in_process else 'subprocess'} replicas...",
        file=sys.stderr,
    )
    replicas.start()
    router = FleetRouter(
        replicas,
        address=args.host,
        port=args.port,
        max_inflight_per_replica=args.max_inflight,
    )

    async def _serve() -> None:
        import signal

        await router.start()
        members = ", ".join(
            f"{replica.name}={replica.url}" for replica in replicas
        )
        print(
            f"fleet router on {router.url} over {len(replicas)} replicas "
            f"({members})",
            file=sys.stderr,
        )
        print(
            json.dumps(
                {
                    "ready": True,
                    "url": router.url,
                    "replicas": {r.name: r.url for r in replicas},
                }
            ),
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stop.wait()
        finally:
            print("stopping the router...", file=sys.stderr)
            await router.shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    except OSError as error:
        _bind_error(error, args.host, args.port)
        raise
    finally:
        print("stopping replicas...", file=sys.stderr)
        replicas.stop()
    return 0


def cmd_fleet_stats(args: argparse.Namespace) -> int:
    from .serving.client import ServingClient, ServingError

    with ServingClient(args.url) as client:
        try:
            stats = client.fleet_stats()
        except ServingError as error:
            raise SystemExit(f"error: {error}") from error
    print(json.dumps(stats, indent=2))
    return 0


def cmd_fleet_reload(args: argparse.Namespace) -> int:
    from .serving.client import ServingClient, ServingError

    with ServingClient(args.url, timeout_s=600.0) as client:
        try:
            report = client.fleet_reload(models=args.model or None)
        except ServingError as error:
            raise SystemExit(f"error: {error}") from error
    print(json.dumps(report, indent=2))
    return 0


def cmd_rename(args: argparse.Namespace) -> int:
    language = _guess_language(args.file, args.language)
    if language not in ("javascript", "python"):
        raise SystemExit("rename supports javascript and python (printable languages)")
    print(f"Training on a generated {language} corpus...", file=sys.stderr)
    files = generate_corpus(
        CorpusConfig(language=language, n_projects=args.projects, seed=args.seed)
    )
    kept, _removed = deduplicate(files)
    pipeline = Pipeline(
        RunSpec(language=language, training={"epochs": args.epochs})
    )
    pipeline.train([f.source for f in kept])
    print(pipeline.rename(_read(args.file)))
    return 0


def cmd_translate(args: argparse.Namespace) -> int:
    from .translate import Translator

    if args.server and args.model:
        raise SystemExit("pass either --model (local) or --server (remote), not both")
    source = _read(args.file)
    if args.server:
        from .serving.client import ServingClient, ServingError

        language = args.language or _EXTENSION_LANGUAGES.get(
            os.path.splitext(args.file)[1]
        )
        with ServingClient(args.server) as client:
            try:
                result = client.translate(source, args.to, language=language)
            except ServingError as error:
                raise SystemExit(f"error: {error}") from error
    else:
        language = _guess_language(args.file, args.language)
        model = None
        if args.model:
            model = Pipeline.load(args.model)
            if model.spec.language != language:
                raise SystemExit(
                    f"error: model {args.model!r} is trained on "
                    f"{model.spec.language!r}, but {args.file!r} is {language!r}"
                )
        result = Translator(model).translate(source, args.to, language=language)
    translated = result["translated_source"]
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(translated)
    if args.json:
        print(json.dumps(dict({"file": args.file}, **result), indent=2))
    elif not args.out:
        print(translated, end="" if translated.endswith("\n") else "\n")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    data = prepare_language_data(
        args.language,
        CorpusConfig(language=args.language, n_projects=args.projects, seed=args.seed),
    )
    result = evaluate_crf(
        data,
        path_graph_builder(args.max_length, args.max_width),
        training_config=TrainingConfig(epochs=args.epochs),
        name=f"{args.language} AST paths ({args.max_length}/{args.max_width})",
    )
    print(result.summary())
    print(
        f"  extraction {result.extract_seconds:.1f}s, "
        f"training {result.train_seconds:.1f}s, "
        f"{result.parameters} parameters"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="pigeon", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    languages = sub.add_parser("languages", help="list supported languages")
    languages.add_argument("--json", action="store_true", help="emit a JSON array")
    languages.set_defaults(func=cmd_languages)

    cells = sub.add_parser(
        "cells", help="list every valid (language, task, representation, learner) cell"
    )
    cells.add_argument("--language", default=None)
    cells.add_argument("--task", default=None)
    cells.add_argument("--json", action="store_true", help="emit full RunSpec JSON")
    cells.set_defaults(func=cmd_cells)

    paths = sub.add_parser("paths", help="print path-contexts of a file")
    paths.add_argument("file")
    paths.add_argument("--language", default=None)
    paths.add_argument("--max-length", type=int, default=7)
    paths.add_argument("--max-width", type=int, default=3)
    paths.add_argument("--semi-paths", action="store_true")
    paths.set_defaults(func=cmd_paths)

    extract = sub.add_parser(
        "extract", help="batch-extract path-contexts and report corpus stats"
    )
    extract.add_argument("files", nargs="*", help="source files (default: generated corpus)")
    extract.add_argument("--language", default=None)
    extract.add_argument("--max-length", type=int, default=7)
    extract.add_argument("--max-width", type=int, default=3)
    extract.add_argument("--semi-paths", action="store_true")
    extract.add_argument("--projects", type=int, default=16)
    extract.add_argument("--seed", type=int, default=8)
    extract.add_argument("--workers", type=int, default=1, help="process-pool fan-out")
    extract.add_argument("--json", action="store_true", help="emit stats as JSON")
    extract.add_argument("--show", action="store_true", help="also print every context")
    extract.set_defaults(func=cmd_extract)

    shard = sub.add_parser(
        "shard",
        help="build, inspect and merge on-disk corpus shards",
        epilog=(
            "examples:\n"
            "  pigeon shard build --language javascript --out shards/ --workers 4\n"
            "  pigeon shard build src/*.js --out shards/ --shard-size 64\n"
            "  pigeon shard info shards/ --verify\n"
            "  pigeon shard merge shards/ --out merged.json\n"
            "  pigeon train --model m.json --shards shards/\n"
            "\n"
            "shards are independent (build them on as many cores or machines\n"
            "as you like); merging replays their vocabularies in shard order,\n"
            "so training over shards matches in-memory training bit for bit.\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    shard_build = shard_sub.add_parser(
        "build", help="extract a corpus into training-ready shard files"
    )
    shard_build.add_argument(
        "files", nargs="*", help="source files (default: generated corpus)"
    )
    shard_build.add_argument("--out", required=True, help="output shard directory")
    shard_build.add_argument("--language", default=None)
    shard_build.add_argument("--task", default="variable_naming")
    shard_build.add_argument("--representation", default="ast-paths")
    shard_build.add_argument("--learner", default="crf")
    shard_build.add_argument(
        "--kind",
        choices=("view", "triples"),
        default="view",
        help="view = training-ready feature views (default); "
        "triples = raw extraction output",
    )
    shard_build.add_argument("--shard-size", type=int, default=32, help="files per shard")
    shard_build.add_argument("--workers", type=int, default=1, help="one process per shard")
    shard_build.add_argument("--max-length", type=int, default=None)
    shard_build.add_argument("--max-width", type=int, default=None)
    shard_build.add_argument("--projects", type=int, default=16)
    shard_build.add_argument("--seed", type=int, default=8)
    shard_build.add_argument("--json", action="store_true", help="emit stats as JSON")
    shard_build.add_argument(
        "--resume",
        action="store_true",
        help="re-enter an interrupted build: verify the directory's build "
        "journal, skip digest-verified completed shards, rebuild the rest",
    )
    shard_build.add_argument(
        "--partition",
        default=None,
        metavar="I/N",
        help="build only the I-th (1-based) of N round-robin slices of the "
        "full shard plan; shard indices stay global, so partitions built "
        "on different machines gather back into one complete set",
    )
    shard_build.set_defaults(func=cmd_shard_build)

    shard_gather = shard_sub.add_parser(
        "gather",
        help="collect partitioned 'shard build --partition' outputs into "
        "one validated shard set",
    )
    shard_gather.add_argument(
        "partitions", nargs="+", help="partition output directories"
    )
    shard_gather.add_argument("--out", required=True, help="assembled shard directory")
    shard_gather.add_argument("--json", action="store_true")
    shard_gather.set_defaults(func=cmd_shard_gather)

    shard_info = shard_sub.add_parser(
        "info", help="print a shard set's header metadata and counts"
    )
    shard_info.add_argument("shards", help="shard directory (or one shard file)")
    shard_info.add_argument(
        "--verify", action="store_true", help="also check every payload digest"
    )
    shard_info.add_argument("--json", action="store_true")
    shard_info.set_defaults(func=cmd_shard_info)

    shard_merge = shard_sub.add_parser(
        "merge", help="merge shard vocabularies into one global space"
    )
    shard_merge.add_argument("shards", help="shard directory (or one shard file)")
    shard_merge.add_argument(
        "--out", default=None, help="write the merge manifest (global vocab + remaps)"
    )
    shard_merge.add_argument("--json", action="store_true")
    shard_merge.set_defaults(func=cmd_shard_merge)

    train = sub.add_parser("train", help="train a pipeline and save it to a model file")
    train.add_argument("files", nargs="*", help="training files (default: generated corpus)")
    train.add_argument("--model", required=True, help="output model file")
    train.add_argument(
        "--format",
        default="json",
        choices=("json", "binary"),
        help="saved-model format: json (writable default) or binary "
        "(mmap-ready pigeon-model/1 artifact for serving fleets)",
    )
    train.add_argument(
        "--shards",
        default=None,
        metavar="DIR",
        help="stream a sharded corpus from 'pigeon shard build' through "
        "training instead of holding every file's features in memory",
    )
    train.add_argument(
        "--merged",
        default=None,
        metavar="FILE",
        help="reuse a merge manifest from 'pigeon shard merge --out' "
        "instead of re-merging the shard vocabularies (--shards only; "
        "provenance is checked against the shard digests)",
    )
    train.add_argument("--language", default=None, choices=supported_languages())
    # None defaults (resolved in cmd_train) so that --shards can tell an
    # explicit, possibly conflicting flag apart from "not given".
    train.add_argument("--task", default=None, help="default: variable_naming")
    train.add_argument("--representation", default=None, help="default: ast-paths")
    train.add_argument("--learner", default=None, help="default: crf")
    train.add_argument("--max-length", type=int, default=None)
    train.add_argument("--max-width", type=int, default=None)
    train.add_argument("--projects", type=int, default=16)
    train.add_argument("--epochs", type=int, default=5)
    train.add_argument("--seed", type=int, default=8)
    train.add_argument(
        "--checkpoint",
        default=None,
        metavar="CKPT",
        help="atomically checkpoint trainer state to CKPT at every epoch",
    )
    train.add_argument(
        "--resume",
        default=None,
        metavar="CKPT",
        help="resume an interrupted run from CKPT (and keep checkpointing "
        "to it); the finished model is bit-identical to an uninterrupted run",
    )
    train.set_defaults(func=cmd_train)

    model = sub.add_parser(
        "model",
        help="inspect, verify, and re-pack saved model artifacts",
        description="The unified artifact surface: pack converts between "
        "the JSON pipeline format and the mmap-ready pigeon-model/1 "
        "binary container (optionally pruning rare relations), info "
        "prints the header and section table, verify checks every "
        "digest.",
    )
    model_sub = model.add_subparsers(dest="model_command", required=True)

    model_pack = model_sub.add_parser(
        "pack",
        help="re-pack a saved model (either format) into json or binary",
    )
    model_pack.add_argument("input", help="saved model (JSON pipeline or binary artifact)")
    model_pack.add_argument("output", help="output artifact path")
    model_pack.add_argument(
        "--format",
        default="binary",
        choices=("binary", "json"),
        help="output format (default: binary)",
    )
    model_pack.add_argument(
        "--prune-min-count",
        type=int,
        default=None,
        metavar="N",
        help="drop weights/candidates whose relation was observed fewer "
        "than N times in training, then re-pack the vocab densely",
    )
    model_pack.add_argument(
        "--accuracy-delta-budget",
        type=float,
        default=None,
        metavar="FRAC",
        help="declared ceiling on the pruned model's accuracy drop, "
        "recorded in the artifact header (default: 0.05)",
    )
    model_pack.set_defaults(func=cmd_model_pack)

    model_info = model_sub.add_parser(
        "info", help="print a saved model's header, sections, and sizes"
    )
    model_info.add_argument("path")
    model_info.add_argument("--json", action="store_true", help="emit JSON")
    model_info.set_defaults(func=cmd_model_info)

    model_verify = model_sub.add_parser(
        "verify",
        help="verify a saved model's integrity digests (header + payload)",
    )
    model_verify.add_argument("path")
    model_verify.set_defaults(func=cmd_model_verify)

    predict = sub.add_parser(
        "predict",
        help="predict with a saved model (or against a server), emit JSON",
        epilog=(
            "examples:\n"
            "  pigeon predict --model m.json program.js\n"
            "  pigeon predict --model m.json program.js --top 5\n"
            "  pigeon predict --server http://localhost:8017 program.js\n"
            "  pigeon predict --server localhost:8017 --task method_naming f.py\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    predict.add_argument("file")
    predict.add_argument("--model", default=None, help="model file from 'train'")
    predict.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="act as a thin client against a running 'pigeon serve' instance",
    )
    predict.add_argument(
        "--fleet",
        default=None,
        metavar="URL",
        help="act as a thin client against a running 'pigeon fleet serve' "
        "router (same dialect as --server)",
    )
    predict.add_argument(
        "--language", default=None, help="route to this language (--server mode)"
    )
    predict.add_argument(
        "--task", default=None, help="route to this task (--server mode)"
    )
    predict.add_argument("--top", type=int, default=0, help="emit top-K suggestions")
    predict.add_argument(
        "--engine",
        choices=("compiled", "scalar"),
        default=None,
        help="CRF inference engine: 'compiled' (vectorised, default) or "
        "'scalar' (the bit-identity oracle); local --model mode only",
    )
    predict.set_defaults(func=cmd_predict)

    serve = sub.add_parser(
        "serve",
        help="serve saved models over async batched HTTP",
        epilog=(
            "examples:\n"
            "  pigeon train --model m.json --language javascript\n"
            "  pigeon serve --model m.json --port 8017\n"
            "  pigeon serve --model vars.json --model methods.json --workers 4\n"
            "\n"
            "  curl -s localhost:8017/healthz\n"
            "  curl -s localhost:8017/stats\n"
            "  curl -s -X POST localhost:8017/predict \\\n"
            "       -d '{\"source\": \"var a = b + 1;\"}'\n"
            "\n"
            "requests are micro-batched (--batch-size / --batch-wait-ms) and\n"
            "responses are cached by AST fingerprint (--cache-size), so\n"
            "duplicate submissions skip extraction and inference entirely.\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve.add_argument(
        "--model",
        action="append",
        required=True,
        help="saved model file from 'train'; repeat to serve several "
        "(language, task) cells from one server",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8017, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--engine",
        choices=("compiled", "scalar"),
        default=None,
        help="pin the CRF inference engine for every served model "
        "(default: each model's own default, 'compiled')",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="pre-warmed scoring processes (0 = score in-process)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=8, help="max requests per micro-batch"
    )
    serve.add_argument(
        "--batch-wait-ms",
        type=float,
        default=2.0,
        help="max milliseconds a batch waits to fill before scoring",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="response-cache entries, keyed on AST fingerprint x task "
        "(0 disables caching)",
    )
    serve.set_defaults(func=cmd_serve)

    fleet = sub.add_parser(
        "fleet",
        help="run and inspect a consistent-hash fleet of serving replicas",
        epilog=(
            "examples:\n"
            "  pigeon fleet serve --model m.json --replicas 3\n"
            "  pigeon fleet serve --model m.json --replicas 3 --base-port 8100\n"
            "  pigeon fleet serve --model m.json --replicas 2 --in-process\n"
            "  pigeon fleet stats http://127.0.0.1:8016\n"
            "  pigeon fleet reload http://127.0.0.1:8016\n"
            "  pigeon predict --fleet http://127.0.0.1:8016 program.js\n"
            "\n"
            "the router hashes each request's AST digest onto a consistent-hash\n"
            "ring of replicas, so repeated programs always hit the replica whose\n"
            "cache already holds their answer; replica caches partition rather\n"
            "than duplicate.  a dead replica's key range fails over to its ring\n"
            "successor; 'fleet reload' drain-restarts one replica at a time.\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_serve = fleet_sub.add_parser(
        "serve", help="spawn N serving replicas behind one router address"
    )
    fleet_serve.add_argument(
        "--model",
        action="append",
        required=True,
        help="saved model file; repeat to serve several cells (every "
        "replica loads every model)",
    )
    fleet_serve.add_argument(
        "--replicas", type=int, default=3, help="number of serving replicas"
    )
    fleet_serve.add_argument("--host", default="127.0.0.1", help="router bind address")
    fleet_serve.add_argument(
        "--port", type=int, default=8016, help="router bind port (0 = ephemeral)"
    )
    fleet_serve.add_argument(
        "--base-port",
        type=int,
        default=None,
        help="first replica port (replica i binds base+i); default: "
        "ephemeral ports",
    )
    fleet_serve.add_argument(
        "--in-process",
        action="store_true",
        help="run replicas as threads in this process instead of "
        "'pigeon serve' subprocesses (shared-nothing either way)",
    )
    fleet_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="scoring processes per replica (subprocess replicas only)",
    )
    fleet_serve.add_argument(
        "--max-inflight",
        type=int,
        default=16,
        help="admission limit per healthy replica; beyond "
        "replicas x limit the router sheds load with 503 + Retry-After",
    )
    fleet_serve.add_argument(
        "--batch-size", type=int, default=8, help="per-replica micro-batch size"
    )
    fleet_serve.add_argument(
        "--batch-wait-ms", type=float, default=2.0, help="per-replica batch wait"
    )
    fleet_serve.add_argument(
        "--cache-size", type=int, default=1024, help="per-replica response cache"
    )
    fleet_serve.set_defaults(func=cmd_fleet_serve)

    fleet_stats = fleet_sub.add_parser(
        "stats", help="print a running fleet's merged statistics as JSON"
    )
    fleet_stats.add_argument(
        "url", nargs="?", default="http://127.0.0.1:8016", help="router URL"
    )
    fleet_stats.set_defaults(func=cmd_fleet_stats)

    fleet_reload = fleet_sub.add_parser(
        "reload",
        help="rolling drain-restart of every replica (picks up updated "
        "model files; the fleet never drops below N-1 healthy)",
    )
    fleet_reload.add_argument(
        "url", nargs="?", default="http://127.0.0.1:8016", help="router URL"
    )
    fleet_reload.add_argument(
        "--model",
        action="append",
        default=None,
        help="switch replicas to these model files during the roll",
    )
    fleet_reload.set_defaults(func=cmd_fleet_reload)

    rename = sub.add_parser("rename", help="predict names and print renamed source")
    rename.add_argument("file")
    rename.add_argument("--language", default=None)
    rename.add_argument("--projects", type=int, default=16)
    rename.add_argument("--epochs", type=int, default=5)
    rename.add_argument("--seed", type=int, default=8)
    rename.set_defaults(func=cmd_rename)

    translate = sub.add_parser(
        "translate",
        help="translate a source file into another language through the IR",
    )
    translate.add_argument("file")
    translate.add_argument(
        "--to",
        required=True,
        choices=supported_languages(),
        help="target language the translation is rendered in",
    )
    translate.add_argument(
        "--language",
        default=None,
        help="source language (default: inferred from the file extension)",
    )
    translate.add_argument(
        "--model",
        default=None,
        help="saved translate-task model that names the translated identifiers "
        "(omitted: structural translation, original names carry over)",
    )
    translate.add_argument(
        "--server",
        default=None,
        help="translate via a running prediction server instead of locally",
    )
    translate.add_argument(
        "--out", default=None, help="write the translated source to this file"
    )
    translate.add_argument(
        "--json",
        action="store_true",
        help="print the full payload (predictions, identifier counts) as JSON",
    )
    translate.set_defaults(func=cmd_translate)

    experiment = sub.add_parser("experiment", help="run a mini variable-naming experiment")
    experiment.add_argument("language", choices=supported_languages())
    experiment.add_argument("--projects", type=int, default=12)
    experiment.add_argument("--epochs", type=int, default=4)
    experiment.add_argument("--max-length", type=int, default=7)
    experiment.add_argument("--max-width", type=int, default=3)
    experiment.add_argument("--seed", type=int, default=7)
    experiment.set_defaults(func=cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from .api import UnsupportedSpecError
    from .registry import UnknownPluginError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (UnknownPluginError, UnsupportedSpecError, OSError, ValueError) as error:
        # Configuration and file errors are user mistakes, not crashes:
        # surface the one-line message (which lists known plugin names),
        # not a traceback.
        raise SystemExit(f"error: {error}") from error


if __name__ == "__main__":
    raise SystemExit(main())
