"""Cross-language translation: AST -> IR lifting + CRF-named rendering.

Architecture
============

Translation reuses the repo's existing layers end to end and adds only
the two pieces the paper's pipeline does not have -- *lifting* and
*re-rendering*::

    source text
        |  repro.lang frontend (parse_source)       existing
        v
    language AST
        |  repro.translate.lift (one lifter per     NEW -- inverse of the
        |  language, registered in ``lifters``)     corpus renderers
        v
    corpus IR (FileSpec) + symbol table
        |         |
        |         |  repro.api ``translate`` task    existing CRF stack:
        |         |  (variable + method unknowns)    paths -> factors ->
        |         v                                  loopy max-sum
        |   CRF name predictions (binding/method key -> name)
        |         |
        |  repro.translate.translator applies        NEW -- collision-safe
        |  predictions to the symbol table           renaming
        v
    renamed IR
        |  repro.corpus renderer for the target      existing
        v
    idiomatic target source

Because the lifters invert the corpus renderers into the *same* IR the
corpus generator starts from, a translation is "a corpus program seen
from the other side": rendering the lifted IR in the original language
round-trips, and rendering it in another language yields that language's
idiom (``for..of`` vs ``range()``, ``.push`` vs ``.add``, camelCase vs
snake_case) rather than a literal transliteration.

Failure surface: anything outside the IR vocabulary raises
:class:`UnsupportedConstructError` carrying the language, node kind, and
a root-relative node position -- the serving layer maps it to a
structured 4xx, never a 500 or partial output.

Equivalence: :func:`structurally_equivalent` compares two lifted files
under a renaming/retyping-invariant signature; it is the round-trip gate
used by ``benchmarks/bench_translate.py``.
"""

from .equivalence import structural_signature, structurally_equivalent
from .lift import (
    LiftResult,
    UnsupportedConstructError,
    lift,
    lifters,
    node_position,
)
from .translator import RENDERERS, Translator

__all__ = [
    "LiftResult",
    "RENDERERS",
    "Translator",
    "UnsupportedConstructError",
    "lift",
    "lifters",
    "node_position",
    "structural_signature",
    "structurally_equivalent",
]
