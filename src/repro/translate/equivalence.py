"""Structural equivalence of lifted IR programs.

The round-trip gate (translate -> parse with the target frontend -> lift
back -> compare) cannot compare IR trees literally: renderers make
surface choices that are *semantically* one construct.  The signature
computed here canonicalises exactly those choices and nothing else:

* identifier **names** and static **types** are excluded (translation
  renames; dynamic targets erase types) -- but identifier *identity* is
  kept, as the index of each slot's first appearance, so data flow still
  has to match;
* ``MapGet``/``Index`` collapse (every renderer prints both the same
  way), ``MapPut`` merges with subscript assignment, ``Incr`` merges
  with ``+= 1``, ``StrCat`` with ``+``, a missing ``Decl`` initialiser
  with an explicit null/None;
* literal values, operators, statement shapes, argument counts,
  free-call names (case of the first letter normalised, C# renders them
  ``Helpers.PascalCase``) and throw messages are all kept.

Two programs with equal signatures execute the same algorithm over the
same literals with consistently-mapped variables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..corpus.ir import (
    Append,
    Assign,
    Aug,
    Bin,
    Break,
    CallFree,
    CallLocal,
    Decl,
    Expr,
    ExprStmt,
    FileSpec,
    ForEach,
    ForRange,
    Function,
    If,
    Incr,
    Index,
    Len,
    Lit,
    MapGet,
    MapHas,
    MapPut,
    NewCollection,
    Not,
    Return,
    Stmt,
    StrCat,
    Throw,
    Var,
    VarSlot,
    While,
)

Signature = Tuple


class _FunctionContext:
    """Per-function canonical numbering of slots and local-method targets."""

    def __init__(
        self,
        method_order: Dict[Tuple[str, ...], int],
        rendered_names: Dict[str, int],
    ) -> None:
        self.slot_index: Dict[int, int] = {}
        self.method_order = method_order
        #: Every rendered spelling of a local method name -> its index.
        #: A free call with such a name is indistinguishable from a local
        #: call in source, so the signature resolves it to the method.
        self.rendered_names = rendered_names

    def slot(self, slot: VarSlot) -> int:
        key = id(slot)
        if key not in self.slot_index:
            self.slot_index[key] = len(self.slot_index)
        return self.slot_index[key]


def _norm_free_name(name: str) -> str:
    return name[0].lower() + name[1:] if name else name


def _lit_sig(value) -> Tuple:
    if value is None:
        return ("none",)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("num", repr(value))
    return ("str", value)


def _expr_sig(expr: Optional[Expr], ctx: _FunctionContext) -> Tuple:
    if expr is None:
        return ("lit", ("none",))
    if isinstance(expr, Var):
        return ("var", ctx.slot(expr.slot))
    if isinstance(expr, Lit):
        return ("lit", _lit_sig(expr.value))
    if isinstance(expr, Bin):
        return ("bin", expr.op, _expr_sig(expr.left, ctx), _expr_sig(expr.right, ctx))
    if isinstance(expr, StrCat):
        return ("bin", "+", _expr_sig(expr.left, ctx), _expr_sig(expr.right, ctx))
    if isinstance(expr, Not):
        return ("not", _expr_sig(expr.operand, ctx))
    if isinstance(expr, CallFree):
        local = ctx.rendered_names.get(expr.name)
        if local is not None:
            return ("calllocal", local, tuple(_expr_sig(a, ctx) for a in expr.args))
        return (
            "callfree",
            _norm_free_name(expr.name),
            tuple(_expr_sig(a, ctx) for a in expr.args),
        )
    if isinstance(expr, CallLocal):
        target = ctx.method_order.get(tuple(expr.name_subtokens), -1)
        return ("calllocal", target, tuple(_expr_sig(a, ctx) for a in expr.args))
    if isinstance(expr, Len):
        return ("len", _expr_sig(expr.operand, ctx))
    if isinstance(expr, Index):
        return ("get", _expr_sig(expr.collection, ctx), _expr_sig(expr.index, ctx))
    if isinstance(expr, MapGet):
        return ("get", _expr_sig(expr.map, ctx), _expr_sig(expr.key, ctx))
    if isinstance(expr, MapHas):
        return ("has", _expr_sig(expr.map, ctx), _expr_sig(expr.key, ctx))
    if isinstance(expr, NewCollection):
        kind = "map" if expr.type.startswith("map") else "list"
        return ("new", kind)
    raise TypeError(f"unknown expression {expr!r}")


_INCR_VALUE_SIG = ("lit", ("num", "1"))


def _stmt_sig(stmt: Stmt, ctx: _FunctionContext) -> Tuple:
    if isinstance(stmt, Decl):
        return ("decl", ctx.slot(stmt.slot), _expr_sig(stmt.init, ctx))
    if isinstance(stmt, Assign):
        if isinstance(stmt.target, Index):
            return (
                "put",
                _expr_sig(stmt.target.collection, ctx),
                _expr_sig(stmt.target.index, ctx),
                _expr_sig(stmt.value, ctx),
            )
        return ("assign", _expr_sig(stmt.target, ctx), _expr_sig(stmt.value, ctx))
    if isinstance(stmt, MapPut):
        return (
            "put",
            _expr_sig(stmt.map, ctx),
            _expr_sig(stmt.key, ctx),
            _expr_sig(stmt.value, ctx),
        )
    if isinstance(stmt, Aug):
        return ("aug", stmt.op, _expr_sig(stmt.target, ctx), _expr_sig(stmt.value, ctx))
    if isinstance(stmt, Incr):
        return ("aug", "+", _expr_sig(stmt.target, ctx), _INCR_VALUE_SIG)
    if isinstance(stmt, If):
        return (
            "if",
            _expr_sig(stmt.cond, ctx),
            _block_sig(stmt.body, ctx),
            _block_sig(stmt.orelse, ctx),
        )
    if isinstance(stmt, While):
        return ("while", _expr_sig(stmt.cond, ctx), _block_sig(stmt.body, ctx))
    if isinstance(stmt, ForRange):
        return (
            "forrange",
            ctx.slot(stmt.slot),
            _expr_sig(stmt.stop, ctx),
            _block_sig(stmt.body, ctx),
        )
    if isinstance(stmt, ForEach):
        return (
            "foreach",
            ctx.slot(stmt.slot),
            _expr_sig(stmt.iterable, ctx),
            _block_sig(stmt.body, ctx),
        )
    if isinstance(stmt, Return):
        value = None if stmt.value is None else _expr_sig(stmt.value, ctx)
        return ("return", value)
    if isinstance(stmt, ExprStmt):
        return ("expr", _expr_sig(stmt.expr, ctx))
    if isinstance(stmt, Break):
        return ("break",)
    if isinstance(stmt, Append):
        return ("append", _expr_sig(stmt.collection, ctx), _expr_sig(stmt.value, ctx))
    if isinstance(stmt, Throw):
        return ("throw", stmt.message)
    raise TypeError(f"unknown statement {stmt!r}")


def _block_sig(body: List[Stmt], ctx: _FunctionContext) -> Tuple:
    return tuple(_stmt_sig(s, ctx) for s in body)


def _function_sig(
    fn: Function,
    method_order: Dict[Tuple[str, ...], int],
    rendered_names: Dict[str, int],
) -> Tuple:
    ctx = _FunctionContext(method_order, rendered_names)
    for param in fn.params:
        ctx.slot(param)
    return (len(fn.params), _block_sig(fn.body, ctx))


def structural_signature(spec: FileSpec) -> Signature:
    """A renaming/retyping-invariant signature of one IR file."""
    method_order: Dict[Tuple[str, ...], int] = {}
    for i, fn in enumerate(spec.functions):
        method_order.setdefault(tuple(fn.name_subtokens), i)
    rendered_names: Dict[str, int] = {}
    for i, fn in enumerate(spec.functions):
        for spelling in (fn.camel_name(), fn.pascal_name(), fn.snake_name()):
            rendered_names.setdefault(spelling, i)
    return tuple(
        _function_sig(fn, method_order, rendered_names) for fn in spec.functions
    )


def structurally_equivalent(a: FileSpec, b: FileSpec) -> bool:
    """True when the two files execute the same structure (see module doc)."""
    return structural_signature(a) == structural_signature(b)
