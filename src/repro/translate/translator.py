"""The translation pipeline: lift -> CRF predict -> rename -> render.

:class:`Translator` turns one source file in any supported language into
idiomatic source in another: the lifter recovers the corpus IR and a
symbol table keyed exactly like the CRF's unknowns, a trained
``translate`` model (or any pipeline whose keys intersect) predicts
names for every renameable binding and method, the symbol table is
mutated in place, and the target renderer prints the result in the
target language's own idiom (camelCase vs snake_case, ``for..of`` vs
``range``, ``.push`` vs ``.add``...), not a token-by-token
transliteration.

The output payload is deterministic (sorted key order, no timestamps):
the serving layer returns it verbatim, which is what makes served
translate responses bit-identical to direct :meth:`Translator.translate`
calls.
"""

from __future__ import annotations

import re
import time
from typing import Dict, List, Optional, Tuple

from ..corpus import render_csharp, render_java, render_js, render_python
from ..corpus.ir import (
    Decl,
    FileSpec,
    ForEach,
    ForRange,
    Function,
    CallLocal,
    Var,
    VarSlot,
)
from ..lang.base import languages, parse_source
from ..resilience import faults
from ..resilience.faults import FaultInjected, TIMEOUT_SLEEP_S
from .lift import LiftResult, _walk_exprs, _walk_stmts, lift, split_camel, split_snake

#: Languages a translation can target: everything with a renderer.
RENDERERS = {
    "java": render_java.render_file,
    "python": render_python.render_file,
    "javascript": render_js.render_file,
    "csharp": render_csharp.render_file,
}

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: Names never assigned to identifiers in any target: the union of the
#: four languages' keywords plus the callables the renderers emit.
_RESERVED = frozenset(
    """
    abstract and as assert async await base bool boolean break case catch
    char checked class const continue def default del delegate do double
    elif else enum event except explicit extends extern final finally
    float for foreach from function global goto if implements implicit
    import in instanceof int interface internal is lambda let lock long
    namespace native new nonlocal not null object of operator or out
    override pass params private protected public raise readonly ref
    return sbyte sealed short sizeof static strictfp string struct super
    switch synchronized this throw throws transient true try typeof uint
    ulong unchecked unsafe ushort using var virtual void volatile while
    with yield None True False
    len range print Error Helpers hasOwnProperty
    """.split()
)


class Translator:
    """Translate source between languages through the corpus IR.

    ``model`` is optional: a :class:`~repro.api.pipeline.Pipeline` or a
    serving :class:`~repro.api.pipeline.ScoringHandle` trained on the
    source language (usually on the ``translate`` task, so variable *and*
    method unknowns are covered).  Without a model the translation is
    purely structural -- original names carry over.
    """

    def __init__(self, model=None) -> None:
        self.model = model

    # ------------------------------------------------------------------
    def translate(
        self,
        source: str,
        target_language: str,
        language: Optional[str] = None,
        program=None,
    ) -> Dict[str, object]:
        """Translate ``source`` into ``target_language``; returns the payload.

        Raises :class:`~repro.translate.lift.UnsupportedConstructError`
        (a structured 4xx for the serving layer) when the source uses
        constructs outside the IR vocabulary, and :class:`ValueError` for
        bad language arguments.
        """
        status = faults.fire("translate")
        if status == "timeout":
            time.sleep(TIMEOUT_SLEEP_S)
        elif status == "unavail":
            raise FaultInjected("translate: unavailable (fault injected)")

        if target_language not in RENDERERS:
            known = ", ".join(sorted(RENDERERS))
            raise ValueError(
                f"unknown target language {target_language!r} (known: {known})"
            )
        model_language = getattr(getattr(self.model, "spec", None), "language", None)
        source_language = language or model_language
        if source_language is None:
            raise ValueError("source language required when translating without a model")
        if model_language is not None and source_language != model_language:
            raise ValueError(
                f"model is trained on {model_language!r} but the source is "
                f"{source_language!r}"
            )
        if source_language not in languages:
            known = ", ".join(sorted(languages.names()))
            raise ValueError(
                f"unknown source language {source_language!r} (known: {known})"
            )

        ast = program.ast if program is not None else parse_source(source_language, source)
        lifted = lift(ast)
        predictions: Dict[str, str] = {}
        if self.model is not None:
            if program is not None and hasattr(self.model, "fingerprinted"):
                predictions = dict(self.model.predict(source, program=program))
            else:
                predictions = dict(self.model.predict(source))
        applied, total, named = _apply_predictions(lifted, predictions, target_language)
        translated = RENDERERS[target_language](lifted.spec)
        return {
            "source_language": source_language,
            "target_language": target_language,
            "translated_source": translated,
            "predictions": {key: applied[key] for key in sorted(applied)},
            "identifiers": {"total": total, "named": named},
        }


# ----------------------------------------------------------------------
# Prediction application (symbol-table mutation)
# ----------------------------------------------------------------------


def _split_prediction(name: str) -> Tuple[str, ...]:
    return split_snake(name) if "_" in name else split_camel(name)


def _spellings(fn: Function) -> Tuple[str, str, str]:
    return (fn.camel_name(), fn.pascal_name(), fn.snake_name())


def _free_call_names(spec: FileSpec) -> set:
    names = set()
    for fn in spec.functions:
        for stmt in _walk_stmts(fn.body):
            for expr in _walk_exprs(stmt):
                if expr.__class__.__name__ == "CallFree":
                    names.add(expr.name)
    return names


def _function_slots(fn: Function) -> List[VarSlot]:
    """Distinct slots of one function by identity, params first."""
    seen: Dict[int, VarSlot] = {}
    for param in fn.params:
        seen.setdefault(id(param), param)
    for stmt in _walk_stmts(fn.body):
        if isinstance(stmt, Decl):
            seen.setdefault(id(stmt.slot), stmt.slot)
        elif isinstance(stmt, (ForRange, ForEach)):
            seen.setdefault(id(stmt.slot), stmt.slot)
        for expr in _walk_exprs(stmt):
            if isinstance(expr, Var):
                seen.setdefault(id(expr.slot), expr.slot)
    return list(seen.values())


def _apply_predictions(
    lifted: LiftResult, predictions: Dict[str, str], target_language: str
) -> Tuple[Dict[str, str], int, int]:
    """Rename the lifted symbol table in place.

    Returns ``(final name per identifier key, translatable count,
    CRF-named count)``.  Predicted names that are invalid identifiers or
    would collide (with reserved words, free-call names, other methods,
    or sibling variables) fall back to the original name, so renaming can
    never break the round-trip.
    """
    applied: Dict[str, str] = {}
    named = 0

    free_names = _free_call_names(lifted.spec)
    taken = set(_RESERVED) | free_names

    # Methods first: their final names constrain variable renames.
    remap: Dict[Tuple[str, ...], Tuple[str, ...]] = {}
    for key, fn in lifted.methods.items():
        original = tuple(fn.name_subtokens)
        prediction = predictions.get(key, "")
        final = original
        from_crf = False
        if prediction and _IDENTIFIER_RE.match(prediction):
            candidate = _split_prediction(prediction)
            trial = Function(candidate, [], [])
            if not any(s in taken for s in _spellings(trial)):
                final = candidate
                from_crf = True
        fn.name_subtokens = final
        taken.update(_spellings(fn))
        remap.setdefault(original, final)
        applied[key] = fn.camel_name() if target_language != "python" else fn.snake_name()
        named += 1 if from_crf else 0

    # Re-point every local call at its method's final name.
    for fn in lifted.spec.functions:
        for stmt in _walk_stmts(fn.body):
            for expr in _walk_exprs(stmt):
                if isinstance(expr, CallLocal):
                    new = remap.get(tuple(expr.name_subtokens))
                    if new is not None:
                        expr.name_subtokens = new

    # Variables, per function (slot names only need in-function uniqueness).
    binding_of = {id(slot): binding for binding, slot in lifted.slots.items()}
    total = sum(1 for slot in lifted.slots.values() if slot.kind in ("local", "param"))
    total += len(lifted.methods)
    for fn in lifted.spec.functions:
        used = set(taken)
        slots = _function_slots(fn)
        used.update(slot.name for slot in slots)
        for slot in slots:
            binding = binding_of.get(id(slot))
            if binding is None or slot.kind not in ("local", "param"):
                continue
            prediction = predictions.get(binding, "")
            original = slot.name
            if (
                prediction
                and prediction != original
                and _IDENTIFIER_RE.match(prediction)
                and prediction not in used
            ):
                used.discard(original)
                slot.name = prediction
                used.add(prediction)
                named += 1
            elif prediction and prediction == original:
                named += 1
            applied[binding] = slot.name
    return applied, total, named
