"""AST -> corpus-IR lifters, one per language frontend.

A lifter inverts the corresponding ``repro.corpus.render_*`` renderer: it
walks a parsed :class:`~repro.core.ast_model.Ast` and rebuilds the
:mod:`repro.corpus.ir` program it denotes.  Because the IR is the shared
pivot of all four renderers, lifting + re-rendering is translation.

Three properties matter more than coverage:

* **Symbol-table fidelity** -- every renameable identifier occurrence
  resolves to one shared :class:`~repro.corpus.ir.VarSlot` keyed by the
  *frontend binding key* (``m1:total``, ``s2:count``, ...), and every
  method declaration is keyed ``method:{i}:{name}`` exactly as
  :func:`repro.tasks.method_naming.method_elements` keys it.  CRF
  predictions made on the same AST therefore address lifted symbols
  directly; renaming is mutating ``slot.name`` in place.
* **Structured failure** -- anything outside the IR vocabulary raises
  :class:`UnsupportedConstructError` carrying the node kind and a
  child-index path from the root, so callers (CLI, server) can surface a
  precise 4xx instead of a stack trace or partial output.
* **Type recovery** -- dynamic-language lifts run a small fixpoint
  (:func:`infer_types`) that recovers static types from usage (loop
  bounds, map/list operations, literals) so rendering into Java/C# is
  idiomatically typed rather than ``Object``-soup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import re

from ..core.ast_model import Ast, Node
from ..corpus.ir import (
    BOOL,
    DOUBLE,
    INT,
    LIST_INT,
    LIST_STRING,
    MAP_STR_INT,
    OBJECT,
    STRING,
    VOID,
    Append,
    Assign,
    Aug,
    Bin,
    Break,
    CallFree,
    CallLocal,
    Decl,
    Expr,
    ExprStmt,
    FileSpec,
    ForEach,
    ForRange,
    Function,
    If,
    Incr,
    Index,
    Len,
    Lit,
    MapGet,
    MapHas,
    MapPut,
    NewCollection,
    Not,
    Return,
    Stmt,
    StrCat,
    Throw,
    Var,
    VarSlot,
    While,
    custom_type,
    expr_type,
)
from ..registry import Registry
from ..tasks.variable_naming import RENAMEABLE_KINDS

#: The lifter extension point: language name -> lifter class.
lifters = Registry("lifter")

#: Binary operators the IR vocabulary admits.
_BIN_OPS = frozenset({"+", "-", "*", "/", "%", "==", "!=", "<", ">", "<=", ">=", "&&", "||"})

_CAMEL_RE = re.compile(r"[A-Za-z][a-z]*|[0-9]+")


def split_camel(name: str) -> Tuple[str, ...]:
    """``runCount0`` -> ``("run", "count", "0")`` (inverse of camel/Pascal)."""
    parts = tuple(m.group(0).lower() for m in _CAMEL_RE.finditer(name))
    return parts or (name.lower(),)


def split_snake(name: str) -> Tuple[str, ...]:
    """``run_count_0`` -> ``("run", "count", "0")`` (inverse of snake)."""
    parts = tuple(p for p in name.split("_") if p)
    return parts or (name,)


def node_position(node: Node) -> str:
    """Child-index path from the root, e.g. ``CompilationUnit/ClassDeclaration[2]/IfStmt[4]``."""
    parts: List[str] = []
    current = node
    while current.parent is not None:
        parts.append(f"{current.kind}[{current.child_index()}]")
        current = current.parent
    parts.append(current.kind)
    return "/".join(reversed(parts))


class UnsupportedConstructError(ValueError):
    """A source construct outside the corpus-IR vocabulary.

    Carries enough structure (language, node kind, tree position) for the
    serving layer to answer a 4xx that pinpoints the offending node.
    """

    def __init__(self, language: str, node: Node, detail: str = "") -> None:
        self.language = language
        self.node_kind = node.kind
        self.position = node_position(node)
        self.detail = detail
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"[{language}] unsupported construct {node.kind!r} "
            f"at {self.position}{suffix}"
        )


@dataclass
class LiftResult:
    """One file lifted to IR plus the symbol table the CRF addresses."""

    spec: FileSpec
    language: str
    #: frontend binding key -> the (shared, mutable) slot it lifted to.
    slots: Dict[str, VarSlot] = field(default_factory=dict)
    #: ``method:{i}:{name}`` element key -> the lifted Function.
    methods: Dict[str, Function] = field(default_factory=dict)


def lift(ast: Ast) -> LiftResult:
    """Lift a parsed program into the corpus IR (entry point)."""
    lifter_cls = lifters.get(ast.language)
    result = lifter_cls(ast).lift()
    infer_types(result)
    return result


class _LifterBase:
    language = ""

    def __init__(self, ast: Ast) -> None:
        self.ast = ast
        self.slots: Dict[str, VarSlot] = {}
        self.methods: Dict[str, Function] = {}
        #: rendered declaration name -> Function, for CallLocal detection.
        self.local_names: Dict[str, Function] = {}

    def lift(self) -> LiftResult:
        raise NotImplementedError

    def fail(self, node: Node, detail: str = "") -> None:
        raise UnsupportedConstructError(self.language, node, detail)

    def slot_at(self, node: Node, type_tag: str = OBJECT, kind: str = "") -> VarSlot:
        """The shared slot behind one identifier occurrence node.

        Accepts renameable locals/params plus variables whose name shadows
        a same-file function (the JS resolver marks those ``function``);
        shadowing slots lift normally but never receive CRF predictions.
        """
        binding = node.meta.get("binding")
        id_kind = node.meta.get("id_kind")
        if binding is None or id_kind not in (*RENAMEABLE_KINDS, "function"):
            self.fail(node, "identifier is not a renameable local/param")
        slot = self.slots.get(binding)
        if slot is None:
            slot = VarSlot(node.value or str(binding), type_tag, kind or str(node.meta.get("id_kind")))
            self.slots[binding] = slot
        return slot

    def register_method(self, index: int, name: str, fn: Function) -> None:
        self.methods[f"method:{index}:{name}"] = fn
        # First declaration wins on duplicate names, like overload-free
        # resolution; keeps call targets deterministic for the signature.
        self.local_names.setdefault(name, fn)

    def make_call(self, name: str, args: List[Expr], node: Node) -> Expr:
        """A local (same-file) or free call, by declared-name lookup."""
        fn = self.local_names.get(name)
        if fn is not None:
            return CallLocal(fn.name_subtokens, args, fn.return_type)
        return CallFree(name, args, OBJECT)

    def var_expr(self, node: Node) -> Var:
        return Var(self.slot_at(node))

    def result(self, spec: FileSpec) -> LiftResult:
        return LiftResult(spec, self.language, self.slots, self.methods)


# ----------------------------------------------------------------------
# Java
# ----------------------------------------------------------------------


@lifters.register("java")
class JavaLifter(_LifterBase):
    language = "java"

    _PRIMITIVES = {"int": INT, "double": DOUBLE, "boolean": BOOL, "void": VOID}
    _CLASS_TYPES = {
        "String": STRING,
        "Object": OBJECT,
        "Integer": INT,
        "Double": DOUBLE,
        "Boolean": BOOL,
    }

    def lift(self) -> LiftResult:
        root = self.ast.root
        if root.kind != "CompilationUnit":
            self.fail(root, "expected a compilation unit")
        project = "translated"
        class_node: Optional[Node] = None
        for child in root.children:
            if child.kind == "PackageDeclaration":
                name = child.children[0].value or "" if child.children else ""
                parts = name.split(".")
                if len(parts) == 3 and parts[0] == "com" and parts[2] == "app":
                    project = parts[1]
            elif child.kind == "ImportDeclaration":
                continue
            elif child.kind == "ClassDeclaration":
                if class_node is not None:
                    self.fail(child, "multiple top-level classes")
                class_node = child
            else:
                self.fail(child)
        if class_node is None:
            self.fail(root, "no class declaration")

        members = list(class_node.children)
        class_name = ""
        if members and members[0].kind == "SimpleName":
            class_name = members[0].value or ""
            members = members[1:]
        shells: List[Tuple[Function, List[Node]]] = []
        for i, member in enumerate(members):
            if member.kind != "MethodDeclaration":
                self.fail(member)
            ch = member.children
            return_type = self.lift_type(ch[0])
            name = ch[1].value or ""
            params: List[VarSlot] = []
            j = 2
            while j < len(ch) and ch[j].kind == "Parameter":
                ptype = self.lift_type(ch[j].children[0])
                slot = self.slot_at(ch[j].children[1], ptype, "param")
                slot.type = ptype
                params.append(slot)
                j += 1
            fn = Function(split_camel(name), params, [], return_type)
            self.register_method(i, name, fn)
            shells.append((fn, ch[j:]))
        for fn, stmts in shells:
            fn.body = self.lift_block(stmts)
        module = "_".join(split_camel(class_name)) if class_name else "module"
        return self.result(
            FileSpec(project, module, [fn for fn, _ in shells], class_name)
        )

    def lift_type(self, node: Node) -> str:
        kind, value = node.kind, node.value or ""
        if kind == "PrimitiveType":
            if value in self._PRIMITIVES:
                return self._PRIMITIVES[value]
            self.fail(node, f"primitive type {value!r}")
        if kind == "ClassType":
            if value in self._CLASS_TYPES:
                return self._CLASS_TYPES[value]
            if value == "void":
                return VOID
            return custom_type(value)
        if kind == "GenericType" and node.children:
            base = node.children[0].value or ""
            args = [c.value or "" for c in node.children[1:]]
            if base in ("List", "ArrayList"):
                if args == ["Integer"]:
                    return LIST_INT
                if args == ["String"]:
                    return LIST_STRING
            if base in ("Map", "HashMap") and args == ["String", "Integer"]:
                return MAP_STR_INT
            self.fail(node, "unsupported generic type")
        self.fail(node, "unsupported type")
        raise AssertionError  # unreachable; fail() always raises

    def lift_block(self, nodes: List[Node]) -> List[Stmt]:
        out: List[Stmt] = []
        for node in nodes:
            self.lift_stmt(node, out)
        return out

    def lift_stmt(self, node: Node, out: List[Stmt]) -> None:
        kind = node.kind
        if kind == "VariableDeclarationExpr":
            type_tag = self.lift_type(node.children[0])
            for declarator in node.children[1:]:
                if declarator.kind != "VariableDeclarator":
                    self.fail(declarator)
                slot = self.slot_at(declarator.children[0], type_tag)
                slot.type = type_tag
                init = (
                    self.lift_expr(declarator.children[1])
                    if len(declarator.children) > 1
                    else None
                )
                out.append(Decl(slot, init))
        elif kind == "IfStmt":
            cond = self.lift_expr(node.children[0])
            rest = node.children[1:]
            orelse: List[Stmt] = []
            if rest and rest[-1].kind == "ElseStmt":
                orelse = self.lift_block(rest[-1].children)
                rest = rest[:-1]
            out.append(If(cond, self.lift_block(rest), orelse))
        elif kind == "WhileStmt":
            out.append(
                While(self.lift_expr(node.children[0]), self.lift_block(node.children[1:]))
            )
        elif kind == "ForStmt":
            out.append(self.lift_for(node))
        elif kind == "ForeachStmt":
            decl = node.children[0]
            type_tag = self.lift_type(decl.children[0])
            declarator = decl.children[1]
            slot = self.slot_at(declarator.children[0], type_tag)
            slot.type = type_tag
            iterable = self.lift_expr(node.children[1])
            out.append(ForEach(slot, iterable, self.lift_block(node.children[2:])))
        elif kind == "ReturnStmt":
            value = self.lift_expr(node.children[0]) if node.children else None
            out.append(Return(value))
        elif kind == "BreakStmt":
            out.append(Break())
        elif kind == "ThrowStmt":
            out.append(self.lift_throw(node))
        elif kind.startswith("AssignExpr"):
            out.append(self.lift_assign(node))
        elif kind == "PostfixExpr++":
            target = self.lift_expr(node.children[0])
            if not isinstance(target, Var):
                self.fail(node, "++ on a non-variable")
            out.append(Incr(target))
        elif kind == "MethodCallExpr":
            lifted = self.lift_call(node, as_stmt=True)
            out.append(lifted if isinstance(lifted, (Append, MapPut)) else ExprStmt(lifted))
        else:
            self.fail(node)

    def lift_for(self, node: Node) -> Stmt:
        ch = node.children
        if (
            len(ch) < 3
            or ch[0].kind != "VariableDeclarationExpr"
            or ch[1].kind != "BinaryExpr<"
            or ch[2].kind != "PostfixExpr++"
        ):
            self.fail(node, "only 'for (int i = 0; i < stop; i++)' loops lift")
        declarator = ch[0].children[1]
        name_node = declarator.children[0]
        slot = self.slot_at(name_node, INT)
        slot.type = INT
        binding = name_node.meta.get("binding")
        start = declarator.children[1] if len(declarator.children) > 1 else None
        if start is None or start.kind != "IntegerLiteral" or start.value != "0":
            self.fail(node, "counting for-loops must start at 0")
        left, stop_node = ch[1].children
        if left.meta.get("binding") != binding:
            self.fail(node, "loop condition does not test the loop variable")
        if ch[2].children[0].meta.get("binding") != binding:
            self.fail(node, "loop update does not bump the loop variable")
        return ForRange(slot, self.lift_expr(stop_node), self.lift_block(ch[3:]))

    def lift_assign(self, node: Node) -> Stmt:
        op = node.kind[len("AssignExpr"):]
        target_node, value_node = node.children
        value = self.lift_expr(value_node)
        if op == "=":
            if target_node.kind != "NameExpr":
                self.fail(target_node, "unsupported assignment target")
            return Assign(self.var_expr(target_node), value)
        if op in ("+=", "-=", "*="):
            target = self.lift_expr(target_node)
            if not isinstance(target, Var):
                self.fail(target_node, "compound assignment to a non-variable")
            return Aug(target, op[0], value)
        self.fail(node, f"assignment operator {op!r}")
        raise AssertionError

    def lift_throw(self, node: Node) -> Stmt:
        obj = node.children[0]
        ch = obj.children if obj.kind == "ObjectCreationExpr" else []
        if len(ch) == 2 and ch[0].kind == "ClassType" and ch[1].kind == "StringLiteral":
            return Throw(ch[1].value or "")
        self.fail(node, "only 'throw new Exc(\"message\")' lifts")
        raise AssertionError

    def lift_call(self, node: Node, as_stmt: bool = False) -> Expr:
        ch = node.children
        first = ch[0]
        if first.kind == "SimpleName":
            args = [self.lift_expr(a) for a in ch[1:]]
            return self.make_call(first.value or "", args, node)
        method = ch[1].value or ""
        args = ch[2:]
        obj = self.lift_expr(first)
        if method == "get" and len(args) == 1:
            return Index(obj, self.lift_expr(args[0]))
        if method == "containsKey" and len(args) == 1:
            return MapHas(obj, self.lift_expr(args[0]))
        if method in ("size", "length") and not args:
            return Len(obj)
        if as_stmt and method == "add" and len(args) == 1:
            return Append(obj, self.lift_expr(args[0]))  # type: ignore[return-value]
        if as_stmt and method == "put" and len(args) == 2:
            return MapPut(obj, self.lift_expr(args[0]), self.lift_expr(args[1]))  # type: ignore[return-value]
        self.fail(node, f"unsupported method call .{method}()")
        raise AssertionError

    def lift_expr(self, node: Node) -> Expr:
        kind = node.kind
        if kind == "NameExpr":
            return self.var_expr(node)
        if kind == "IntegerLiteral":
            return Lit(int(node.value or "0"), INT)
        if kind == "DoubleLiteral":
            return Lit(float(node.value or "0"), DOUBLE)
        if kind == "StringLiteral":
            return Lit(node.value or "", STRING)
        if kind == "BooleanLiteral":
            return Lit(node.value == "true", BOOL)
        if kind == "NullLiteral":
            return Lit(None, OBJECT)
        if kind.startswith("BinaryExpr"):
            op = kind[len("BinaryExpr"):]
            if op not in _BIN_OPS:
                self.fail(node, f"binary operator {op!r}")
            return Bin(op, self.lift_expr(node.children[0]), self.lift_expr(node.children[1]))
        if kind == "UnaryExpr!":
            return Not(self.lift_expr(node.children[0]))
        if kind == "UnaryExpr-":
            operand = self.lift_expr(node.children[0])
            if isinstance(operand, Lit) and operand.type in (INT, DOUBLE):
                return Lit(-operand.value, operand.type)
            self.fail(node, "unary minus on a non-literal")
        if kind == "MethodCallExpr":
            return self.lift_call(node)
        if kind == "ObjectCreationExpr":
            ch = node.children
            if len(ch) == 1 and ch[0].kind == "GenericType":
                return NewCollection(self.lift_type(ch[0]))
            self.fail(node, "only empty collection constructors lift")
        self.fail(node)
        raise AssertionError


# ----------------------------------------------------------------------
# Python
# ----------------------------------------------------------------------


@lifters.register("python")
class PythonLifter(_LifterBase):
    language = "python"

    def lift(self) -> LiftResult:
        root = self.ast.root
        if root.kind != "Module":
            self.fail(root, "expected a module")
        shells: List[Tuple[Function, List[Node]]] = []
        index = 0
        for child in root.children:
            if child.kind != "FunctionDef":
                self.fail(child, "only top-level function definitions lift")
            ch = child.children
            if not ch or ch[0].kind != "FunctionName":
                self.fail(child, "function without a name")
            name = ch[0].value or ""
            params: List[VarSlot] = []
            j = 1
            while j < len(ch) and ch[j].kind == "arg":
                slot = self.slot_at(ch[j], OBJECT, "param")
                slot.kind = "param"
                params.append(slot)
                j += 1
            if j < len(ch) and ch[j].kind in ("SelfArg", "Default"):
                self.fail(ch[j], "methods and default arguments do not lift")
            fn = Function(split_snake(name), params, [], VOID)
            self.register_method(index, name, fn)
            shells.append((fn, ch[j:]))
            index += 1
        for fn, stmts in shells:
            fn.body = self.lift_block(stmts)
            if fn.return_type == VOID and _has_valued_return(fn.body):
                fn.return_type = OBJECT
        return self.result(
            FileSpec("translated", "translated", [fn for fn, _ in shells], "Translated")
        )

    def lift_block(self, nodes: List[Node]) -> List[Stmt]:
        out: List[Stmt] = []
        for node in nodes:
            self.lift_stmt(node, out)
        return out

    def lift_stmt(self, node: Node, out: List[Stmt]) -> None:
        kind = node.kind
        if kind == "Assign":
            if len(node.children) != 2:
                self.fail(node, "multi-target assignment")
            target, value_node = node.children
            value = self.lift_expr(value_node)
            if target.kind == "Name":
                binding = target.meta.get("binding")
                fresh = binding not in self.slots
                var = self.var_expr(target)
                out.append(Decl(var.slot, value) if fresh else Assign(var, value))
            elif target.kind == "Subscript":
                collection = self.lift_expr(target.children[0])
                key = self.lift_expr(target.children[1])
                out.append(MapPut(collection, key, value))
            else:
                self.fail(target, "unsupported assignment target")
        elif kind.startswith("AugAssign"):
            op = kind[len("AugAssign"):]
            if op not in ("+", "-", "*"):
                self.fail(node, f"augmented operator {op!r}")
            target = self.lift_expr(node.children[0])
            if not isinstance(target, Var):
                self.fail(node, "augmented assignment to a non-variable")
            value = self.lift_expr(node.children[1])
            if op == "+" and isinstance(value, Lit) and value.value == 1:
                out.append(Incr(target))
            else:
                out.append(Aug(target, op, value))
        elif kind == "If":
            cond = self.lift_expr(node.children[0])
            rest = node.children[1:]
            orelse: List[Stmt] = []
            if rest and rest[-1].kind == "Else":
                orelse = self.lift_block(rest[-1].children)
                rest = rest[:-1]
            out.append(If(cond, self.lift_block(rest), orelse))
        elif kind == "While":
            out.append(
                While(self.lift_expr(node.children[0]), self.lift_block(node.children[1:]))
            )
        elif kind == "For":
            out.append(self.lift_for(node))
        elif kind == "Return":
            value = self.lift_expr(node.children[0]) if node.children else None
            out.append(Return(value))
        elif kind == "Break":
            out.append(Break())
        elif kind == "Pass":
            return
        elif kind == "Raise":
            out.append(self.lift_raise(node))
        elif kind == "Call":
            callee = node.children[0]
            if (
                callee.kind == "Attribute"
                and len(callee.children) == 2
                and callee.children[1].value == "append"
                and len(node.children) == 2
            ):
                out.append(
                    Append(
                        self.lift_expr(callee.children[0]),
                        self.lift_expr(node.children[1]),
                    )
                )
            else:
                out.append(ExprStmt(self.lift_expr(node)))
        else:
            self.fail(node)

    def lift_for(self, node: Node) -> Stmt:
        target, iterable = node.children[0], node.children[1]
        body = node.children[2:]
        if body and body[-1].kind == "Else":
            self.fail(body[-1], "for-else does not lift")
        if target.kind != "Name":
            self.fail(target, "unsupported loop target")
        slot = self.slot_at(target)
        if (
            iterable.kind == "Call"
            and iterable.children
            and iterable.children[0].kind == "Name"
            and iterable.children[0].value == "range"
            and len(iterable.children) == 2
        ):
            slot.type = INT
            return ForRange(slot, self.lift_expr(iterable.children[1]), self.lift_block(body))
        return ForEach(slot, self.lift_expr(iterable), self.lift_block(body))

    def lift_raise(self, node: Node) -> Stmt:
        if node.children:
            call = node.children[0]
            if (
                call.kind == "Call"
                and len(call.children) == 2
                and call.children[0].kind == "Name"
                and call.children[1].kind == "Str"
            ):
                return Throw(call.children[1].value or "")
        self.fail(node, "only 'raise Exc(\"message\")' lifts")
        raise AssertionError

    def lift_expr(self, node: Node) -> Expr:
        kind = node.kind
        if kind == "Name":
            if node.meta.get("id_kind") in RENAMEABLE_KINDS:
                return self.var_expr(node)
            self.fail(node, "global name outside a call position")
        if kind == "Num":
            text = node.value or "0"
            if any(c in text for c in ".eE"):
                return Lit(float(text), DOUBLE)
            return Lit(int(text), INT)
        if kind == "Str":
            return Lit(node.value or "", STRING)
        if kind == "NameConstant":
            if node.value in ("True", "False"):
                return Lit(node.value == "True", BOOL)
            return Lit(None, OBJECT)
        if kind.startswith("Compare"):
            op = kind[len("Compare"):]
            left, right = node.children
            if op == "in":
                return MapHas(self.lift_expr(right), self.lift_expr(left))
            if op in _BIN_OPS:
                return Bin(op, self.lift_expr(left), self.lift_expr(right))
            self.fail(node, f"comparison {op!r}")
        if kind.startswith("BoolOp"):
            op = "&&" if kind.endswith("and") else "||"
            lifted = [self.lift_expr(c) for c in node.children]
            folded = lifted[0]
            for operand in lifted[1:]:
                folded = Bin(op, folded, operand)
            return folded
        if kind.startswith("BinOp"):
            op = kind[len("BinOp"):]
            if op not in ("+", "-", "*", "/", "%"):
                self.fail(node, f"binary operator {op!r}")
            return Bin(op, self.lift_expr(node.children[0]), self.lift_expr(node.children[1]))
        if kind == "UnaryOpnot":
            return Not(self.lift_expr(node.children[0]))
        if kind == "UnaryOp-":
            operand = self.lift_expr(node.children[0])
            if isinstance(operand, Lit) and operand.type in (INT, DOUBLE):
                return Lit(-operand.value, operand.type)
            self.fail(node, "unary minus on a non-literal")
        if kind == "Call":
            return self.lift_call(node)
        if kind == "Subscript":
            return Index(self.lift_expr(node.children[0]), self.lift_expr(node.children[1]))
        if kind == "Dict":
            if node.children:
                self.fail(node, "only empty dict literals lift")
            return NewCollection(MAP_STR_INT)
        if kind == "List":
            if node.children:
                self.fail(node, "only empty list literals lift")
            return NewCollection(LIST_INT)
        self.fail(node)
        raise AssertionError

    def lift_call(self, node: Node) -> Expr:
        callee = node.children[0]
        args_nodes = node.children[1:]
        if callee.kind != "Name":
            self.fail(callee, "unsupported call target")
        name = callee.value or ""
        if name == "len" and len(args_nodes) == 1:
            return Len(self.lift_expr(args_nodes[0]))
        args = [self.lift_expr(a) for a in args_nodes]
        return self.make_call(name, args, node)


# ----------------------------------------------------------------------
# JavaScript
# ----------------------------------------------------------------------


@lifters.register("javascript")
class JavaScriptLifter(_LifterBase):
    language = "javascript"

    def lift(self) -> LiftResult:
        root = self.ast.root
        if root.kind != "Toplevel":
            self.fail(root, "expected a toplevel")
        shells: List[Tuple[Function, List[Node]]] = []
        for i, child in enumerate(root.children):
            if child.kind != "Defun":
                self.fail(child, "only top-level function declarations lift")
            ch = child.children
            if not ch or ch[0].kind != "SymbolDefun":
                self.fail(child, "function without a name")
            name = ch[0].value or ""
            params: List[VarSlot] = []
            j = 1
            while j < len(ch) and ch[j].kind == "SymbolFunarg":
                slot = self.slot_at(ch[j], OBJECT, "param")
                slot.kind = "param"
                params.append(slot)
                j += 1
            fn = Function(split_camel(name), params, [], VOID)
            self.register_method(i, name, fn)
            shells.append((fn, ch[j:]))
        for fn, stmts in shells:
            fn.body = self.lift_block(stmts)
            if fn.return_type == VOID and _has_valued_return(fn.body):
                fn.return_type = OBJECT
        return self.result(
            FileSpec("translated", "translated", [fn for fn, _ in shells], "Translated")
        )

    def lift_block(self, nodes: List[Node]) -> List[Stmt]:
        out: List[Stmt] = []
        for node in nodes:
            self.lift_stmt(node, out)
        return out

    def lift_stmt(self, node: Node, out: List[Stmt]) -> None:
        kind = node.kind
        if kind == "Var":
            for vardef in node.children:
                if vardef.kind != "VarDef":
                    self.fail(vardef)
                slot = self.slot_at(vardef.children[0])
                init = (
                    self.lift_expr(vardef.children[1])
                    if len(vardef.children) > 1
                    else None
                )
                out.append(Decl(slot, init))
        elif kind.startswith("Assign"):
            out.append(self.lift_assign(node))
        elif kind == "UnaryPostfix++":
            target = self.lift_expr(node.children[0])
            if not isinstance(target, Var):
                self.fail(node, "++ on a non-variable")
            out.append(Incr(target))
        elif kind == "If":
            cond = self.lift_expr(node.children[0])
            rest = node.children[1:]
            orelse: List[Stmt] = []
            if rest and rest[-1].kind == "Else":
                orelse = self.lift_block(rest[-1].children)
                rest = rest[:-1]
            out.append(If(cond, self.lift_block(rest), orelse))
        elif kind == "While":
            out.append(
                While(self.lift_expr(node.children[0]), self.lift_block(node.children[1:]))
            )
        elif kind == "For":
            out.append(self.lift_for(node))
        elif kind == "ForIn":
            target = node.children[0]
            if target.kind != "SymbolVar":
                self.fail(target, "unsupported loop target")
            slot = self.slot_at(target)
            iterable = self.lift_expr(node.children[1])
            out.append(ForEach(slot, iterable, self.lift_block(node.children[2:])))
        elif kind == "Return":
            value = self.lift_expr(node.children[0]) if node.children else None
            out.append(Return(value))
        elif kind == "Break":
            out.append(Break())
        elif kind == "Throw":
            out.append(self.lift_throw(node))
        elif kind == "Call":
            callee = node.children[0]
            if (
                callee.kind == "Dot"
                and len(callee.children) == 2
                and callee.children[1].value == "push"
                and len(node.children) == 2
            ):
                out.append(
                    Append(
                        self.lift_expr(callee.children[0]),
                        self.lift_expr(node.children[1]),
                    )
                )
            else:
                out.append(ExprStmt(self.lift_expr(node)))
        else:
            self.fail(node)

    def lift_assign(self, node: Node) -> Stmt:
        op = node.kind[len("Assign"):]
        target_node, value_node = node.children
        value = self.lift_expr(value_node)
        if op == "=":
            if target_node.kind == "SymbolRef":
                return Assign(self.var_expr(target_node), value)
            if target_node.kind == "Sub":
                return MapPut(
                    self.lift_expr(target_node.children[0]),
                    self.lift_expr(target_node.children[1]),
                    value,
                )
            self.fail(target_node, "unsupported assignment target")
        if op in ("+=", "-=", "*="):
            target = self.lift_expr(target_node)
            if not isinstance(target, Var):
                self.fail(target_node, "compound assignment to a non-variable")
            return Aug(target, op[0], value)
        self.fail(node, f"assignment operator {op!r}")
        raise AssertionError

    def lift_for(self, node: Node) -> Stmt:
        ch = node.children
        if (
            len(ch) < 3
            or ch[0].kind != "Var"
            or ch[1].kind != "Binary<"
            or ch[2].kind != "UnaryPostfix++"
        ):
            self.fail(node, "only 'for (var i = 0; i < stop; i++)' loops lift")
        vardef = ch[0].children[0]
        name_node = vardef.children[0]
        slot = self.slot_at(name_node, INT)
        slot.type = INT
        binding = name_node.meta.get("binding")
        start = vardef.children[1] if len(vardef.children) > 1 else None
        if start is None or start.kind != "Number" or start.value != "0":
            self.fail(node, "counting for-loops must start at 0")
        left, stop_node = ch[1].children
        if left.meta.get("binding") != binding:
            self.fail(node, "loop condition does not test the loop variable")
        if ch[2].children[0].meta.get("binding") != binding:
            self.fail(node, "loop update does not bump the loop variable")
        return ForRange(slot, self.lift_expr(stop_node), self.lift_block(ch[3:]))

    def lift_throw(self, node: Node) -> Stmt:
        obj = node.children[0]
        ch = obj.children if obj.kind == "New" else []
        if len(ch) == 2 and ch[0].kind == "SymbolRef" and ch[1].kind == "String":
            return Throw(ch[1].value or "")
        self.fail(node, "only 'throw new Error(\"message\")' lifts")
        raise AssertionError

    def lift_expr(self, node: Node) -> Expr:
        kind = node.kind
        if kind == "SymbolRef":
            return self.var_expr(node)
        if kind == "Number":
            text = node.value or "0"
            if any(c in text for c in ".eE"):
                return Lit(float(text), DOUBLE)
            return Lit(int(text), INT)
        if kind == "String":
            return Lit(node.value or "", STRING)
        if kind == "True":
            return Lit(True, BOOL)
        if kind == "False":
            return Lit(False, BOOL)
        if kind == "Null":
            return Lit(None, OBJECT)
        if kind.startswith("Binary"):
            op = kind[len("Binary"):]
            if op not in _BIN_OPS:
                self.fail(node, f"binary operator {op!r}")
            return Bin(op, self.lift_expr(node.children[0]), self.lift_expr(node.children[1]))
        if kind == "UnaryPrefix!":
            return Not(self.lift_expr(node.children[0]))
        if kind == "UnaryPrefix-":
            operand = self.lift_expr(node.children[0])
            if isinstance(operand, Lit) and operand.type in (INT, DOUBLE):
                return Lit(-operand.value, operand.type)
            self.fail(node, "unary minus on a non-literal")
        if kind == "Dot":
            obj, prop = node.children
            if prop.value == "length":
                return Len(self.lift_expr(obj))
            self.fail(node, f"property access .{prop.value}")
        if kind == "Sub":
            return Index(self.lift_expr(node.children[0]), self.lift_expr(node.children[1]))
        if kind == "Call":
            return self.lift_call(node)
        if kind == "Object":
            if node.children:
                self.fail(node, "only empty object literals lift")
            return NewCollection(MAP_STR_INT)
        if kind == "Array":
            if node.children:
                self.fail(node, "only empty array literals lift")
            return NewCollection(LIST_INT)
        self.fail(node)
        raise AssertionError

    def lift_call(self, node: Node) -> Expr:
        callee = node.children[0]
        args_nodes = node.children[1:]
        if (
            callee.kind == "Dot"
            and len(callee.children) == 2
            and callee.children[1].value == "hasOwnProperty"
            and len(args_nodes) == 1
        ):
            return MapHas(self.lift_expr(callee.children[0]), self.lift_expr(args_nodes[0]))
        if callee.kind == "SymbolRef":
            args = [self.lift_expr(a) for a in args_nodes]
            return self.make_call(callee.value or "", args, node)
        self.fail(callee, "unsupported call target")
        raise AssertionError


# ----------------------------------------------------------------------
# C#
# ----------------------------------------------------------------------

_CS_BINARY_OPS = {
    "LogicalOrExpression": "||",
    "LogicalAndExpression": "&&",
    "EqualsExpression": "==",
    "NotEqualsExpression": "!=",
    "LessThanExpression": "<",
    "GreaterThanExpression": ">",
    "LessThanOrEqualExpression": "<=",
    "GreaterThanOrEqualExpression": ">=",
    "AddExpression": "+",
    "SubtractExpression": "-",
    "MultiplyExpression": "*",
    "DivideExpression": "/",
    "ModuloExpression": "%",
}

_CS_AUG_OPS = {
    "AddAssignmentExpression": "+",
    "SubtractAssignmentExpression": "-",
    "MultiplyAssignmentExpression": "*",
}


def _decap(name: str) -> str:
    return name[0].lower() + name[1:] if name else name


@lifters.register("csharp")
class CSharpLifter(_LifterBase):
    language = "csharp"

    _PREDEFINED = {
        "int": INT,
        "double": DOUBLE,
        "bool": BOOL,
        "string": STRING,
        "void": VOID,
        "object": OBJECT,
    }

    def lift(self) -> LiftResult:
        root = self.ast.root
        if root.kind != "CompilationUnit":
            self.fail(root, "expected a compilation unit")
        project = "translated"
        class_node: Optional[Node] = None
        for child in root.children:
            if child.kind == "UsingDirective":
                continue
            if child.kind == "NamespaceDeclaration":
                name = child.children[0].value or "" if child.children else ""
                parts = name.split(".")
                if len(parts) == 2 and parts[1] == "App":
                    project = parts[0].lower()
                for member in child.children[1:]:
                    if member.kind != "ClassDeclaration":
                        self.fail(member)
                    if class_node is not None:
                        self.fail(member, "multiple classes")
                    class_node = member
            elif child.kind == "ClassDeclaration":
                if class_node is not None:
                    self.fail(child, "multiple classes")
                class_node = child
            else:
                self.fail(child)
        if class_node is None:
            self.fail(root, "no class declaration")

        members = list(class_node.children)
        class_name = ""
        if members and members[0].kind == "IdentifierToken":
            class_name = members[0].value or ""
            members = members[1:]
        shells: List[Tuple[Function, List[Node]]] = []
        for i, member in enumerate(members):
            if member.kind != "MethodDeclaration":
                self.fail(member)
            ch = member.children
            return_type = self.lift_type(ch[0])
            name = ch[1].value or ""
            params: List[VarSlot] = []
            body_nodes: List[Node] = []
            for extra in ch[2:]:
                if extra.kind == "ParameterList":
                    for param in extra.children:
                        ptype = self.lift_type(param.children[0])
                        slot = self.slot_at(param.children[1], ptype, "param")
                        slot.type = ptype
                        params.append(slot)
                elif extra.kind == "Block":
                    body_nodes = extra.children
                else:
                    self.fail(extra)
            fn = Function(split_camel(name), params, [], return_type)
            self.register_method(i, name, fn)
            shells.append((fn, body_nodes))
        for fn, stmts in shells:
            fn.body = self.lift_block(stmts)
        module = "_".join(split_camel(class_name)) if class_name else "module"
        return self.result(
            FileSpec(project, module, [fn for fn, _ in shells], class_name)
        )

    def lift_type(self, node: Node) -> str:
        kind, value = node.kind, node.value or ""
        if kind == "PredefinedType":
            if value in self._PREDEFINED:
                return self._PREDEFINED[value]
            self.fail(node, f"predefined type {value!r}")
        if kind == "GenericName" and node.children:
            base = node.children[0].value or ""
            args = [c.value or "" for c in node.children[1:]]
            if base == "List":
                if args == ["int"]:
                    return LIST_INT
                if args == ["string"]:
                    return LIST_STRING
            if base == "Dictionary" and args == ["string", "int"]:
                return MAP_STR_INT
            self.fail(node, "unsupported generic type")
        if kind == "IdentifierName":
            return custom_type(value)
        self.fail(node, "unsupported type")
        raise AssertionError

    def embedded(self, node: Node) -> List[Node]:
        return list(node.children) if node.kind == "Block" else [node]

    def lift_block(self, nodes: List[Node]) -> List[Stmt]:
        out: List[Stmt] = []
        for node in nodes:
            self.lift_stmt(node, out)
        return out

    def lift_stmt(self, node: Node, out: List[Stmt]) -> None:
        kind = node.kind
        if kind == "LocalDeclarationStatement":
            declaration = node.children[0]
            type_tag = self.lift_type(declaration.children[0])
            for declarator in declaration.children[1:]:
                slot = self.slot_at(declarator.children[0], type_tag)
                slot.type = type_tag
                init = None
                if len(declarator.children) > 1:
                    init = self.lift_expr(declarator.children[1].children[0])
                out.append(Decl(slot, init))
        elif kind == "ExpressionStatement":
            out.append(self.lift_expr_stmt(node.children[0]))
        elif kind == "IfStatement":
            cond = self.lift_expr(node.children[0])
            body = self.lift_block(self.embedded(node.children[1]))
            orelse: List[Stmt] = []
            if len(node.children) > 2 and node.children[2].kind == "ElseClause":
                orelse = self.lift_block(self.embedded(node.children[2].children[0]))
            out.append(If(cond, body, orelse))
        elif kind == "WhileStatement":
            out.append(
                While(
                    self.lift_expr(node.children[0]),
                    self.lift_block(self.embedded(node.children[1])),
                )
            )
        elif kind == "ForStatement":
            out.append(self.lift_for(node))
        elif kind == "ForEachStatement":
            type_tag = self.lift_type(node.children[0])
            slot = self.slot_at(node.children[1], type_tag)
            slot.type = type_tag
            iterable = self.lift_expr(node.children[2])
            out.append(
                ForEach(slot, iterable, self.lift_block(self.embedded(node.children[3])))
            )
        elif kind == "ReturnStatement":
            value = self.lift_expr(node.children[0]) if node.children else None
            out.append(Return(value))
        elif kind == "BreakStatement":
            out.append(Break())
        elif kind == "ThrowStatement":
            out.append(self.lift_throw(node))
        else:
            self.fail(node)

    def lift_expr_stmt(self, node: Node) -> Stmt:
        kind = node.kind
        if kind == "SimpleAssignmentExpression":
            target_node, value_node = node.children
            value = self.lift_expr(value_node)
            if target_node.kind == "IdentifierName":
                return Assign(self.var_expr(target_node), value)
            if target_node.kind == "ElementAccessExpression":
                return MapPut(
                    self.lift_expr(target_node.children[0]),
                    self.lift_expr(target_node.children[1]),
                    value,
                )
            self.fail(target_node, "unsupported assignment target")
        if kind in _CS_AUG_OPS:
            target = self.lift_expr(node.children[0])
            if not isinstance(target, Var):
                self.fail(node, "compound assignment to a non-variable")
            return Aug(target, _CS_AUG_OPS[kind], self.lift_expr(node.children[1]))
        if kind == "PostIncrementExpression":
            target = self.lift_expr(node.children[0])
            if not isinstance(target, Var):
                self.fail(node, "++ on a non-variable")
            return Incr(target)
        if kind == "InvocationExpression":
            lifted = self.lift_call(node, as_stmt=True)
            return lifted if isinstance(lifted, (Append, MapPut)) else ExprStmt(lifted)
        self.fail(node)
        raise AssertionError

    def lift_for(self, node: Node) -> Stmt:
        ch = node.children
        if (
            len(ch) < 4
            or ch[0].kind != "LocalDeclarationStatement"
            or ch[1].kind != "LessThanExpression"
            or ch[2].kind != "PostIncrementExpression"
        ):
            self.fail(node, "only 'for (int i = 0; i < stop; i++)' loops lift")
        declarator = ch[0].children[0].children[1]
        name_node = declarator.children[0]
        slot = self.slot_at(name_node, INT)
        slot.type = INT
        binding = name_node.meta.get("binding")
        start = (
            declarator.children[1].children[0]
            if len(declarator.children) > 1
            else None
        )
        if start is None or start.kind != "NumericLiteralExpression" or start.value != "0":
            self.fail(node, "counting for-loops must start at 0")
        left, stop_node = ch[1].children
        if left.meta.get("binding") != binding:
            self.fail(node, "loop condition does not test the loop variable")
        if ch[2].children[0].meta.get("binding") != binding:
            self.fail(node, "loop update does not bump the loop variable")
        return ForRange(
            slot, self.lift_expr(stop_node), self.lift_block(self.embedded(ch[3]))
        )

    def lift_throw(self, node: Node) -> Stmt:
        obj = node.children[0]
        if obj.kind == "ObjectCreationExpression" and len(obj.children) == 2:
            args = obj.children[1]
            if (
                args.kind == "ArgumentList"
                and len(args.children) == 1
                and args.children[0].children[0].kind == "StringLiteralExpression"
            ):
                return Throw(args.children[0].children[0].value or "")
        self.fail(node, "only 'throw new Exc(\"message\")' lifts")
        raise AssertionError

    def lift_call(self, node: Node, as_stmt: bool = False) -> Expr:
        callee, arg_list = node.children[0], node.children[1]
        args_nodes = [a.children[0] for a in arg_list.children]
        if callee.kind == "SimpleMemberAccessExpression":
            obj_node, member_node = callee.children
            member = member_node.value or ""
            if (
                obj_node.kind == "IdentifierName"
                and obj_node.value == "Helpers"
                and obj_node.meta.get("id_kind") not in RENAMEABLE_KINDS
            ):
                args = [self.lift_expr(a) for a in args_nodes]
                return CallFree(_decap(member), args, OBJECT)
            obj = self.lift_expr(obj_node)
            if member == "ContainsKey" and len(args_nodes) == 1:
                return MapHas(obj, self.lift_expr(args_nodes[0]))
            if as_stmt and member == "Add" and len(args_nodes) == 1:
                return Append(obj, self.lift_expr(args_nodes[0]))  # type: ignore[return-value]
            self.fail(node, f"unsupported method call .{member}()")
        if callee.kind == "IdentifierName":
            name = callee.value or ""
            args = [self.lift_expr(a) for a in args_nodes]
            fn = self.local_names.get(name)
            if fn is not None:
                return CallLocal(fn.name_subtokens, args, fn.return_type)
            return CallFree(_decap(name), args, OBJECT)
        self.fail(callee, "unsupported call target")
        raise AssertionError

    def lift_expr(self, node: Node) -> Expr:
        kind = node.kind
        if kind == "IdentifierName":
            return self.var_expr(node)
        if kind == "NumericLiteralExpression":
            text = node.value or "0"
            if any(c in text for c in ".eE"):
                return Lit(float(text), DOUBLE)
            return Lit(int(text), INT)
        if kind == "StringLiteralExpression":
            return Lit(node.value or "", STRING)
        if kind == "TrueLiteralExpression":
            return Lit(True, BOOL)
        if kind == "FalseLiteralExpression":
            return Lit(False, BOOL)
        if kind == "NullLiteralExpression":
            return Lit(None, OBJECT)
        if kind in _CS_BINARY_OPS:
            return Bin(
                _CS_BINARY_OPS[kind],
                self.lift_expr(node.children[0]),
                self.lift_expr(node.children[1]),
            )
        if kind == "LogicalNotExpression":
            return Not(self.lift_expr(node.children[0]))
        if kind == "UnaryMinusExpression":
            operand = self.lift_expr(node.children[0])
            if isinstance(operand, Lit) and operand.type in (INT, DOUBLE):
                return Lit(-operand.value, operand.type)
            self.fail(node, "unary minus on a non-literal")
        if kind == "SimpleMemberAccessExpression":
            obj, member = node.children
            if member.value in ("Length", "Count"):
                return Len(self.lift_expr(obj))
            self.fail(node, f"member access .{member.value}")
        if kind == "ElementAccessExpression":
            return Index(self.lift_expr(node.children[0]), self.lift_expr(node.children[1]))
        if kind == "InvocationExpression":
            return self.lift_call(node)
        if kind == "ObjectCreationExpression":
            ch = node.children
            if (
                len(ch) == 2
                and ch[0].kind == "GenericName"
                and ch[1].kind == "ArgumentList"
                and not ch[1].children
            ):
                return NewCollection(self.lift_type(ch[0]))
            self.fail(node, "only empty collection constructors lift")
        self.fail(node)
        raise AssertionError


# ----------------------------------------------------------------------
# Usage-driven type recovery
# ----------------------------------------------------------------------


def _has_valued_return(body: List[Stmt]) -> bool:
    for stmt in _walk_stmts(body):
        if isinstance(stmt, Return) and stmt.value is not None:
            return True
    return False


def _walk_stmts(body: List[Stmt]):
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk_stmts(stmt.body)
            yield from _walk_stmts(stmt.orelse)
        elif isinstance(stmt, (While, ForRange, ForEach)):
            yield from _walk_stmts(stmt.body)


def _walk_exprs(stmt: Stmt):
    roots: List[Expr] = []
    if isinstance(stmt, Decl):
        if stmt.init is not None:
            roots.append(stmt.init)
    elif isinstance(stmt, Assign):
        roots.extend([stmt.target, stmt.value])
    elif isinstance(stmt, Aug):
        roots.extend([stmt.target, stmt.value])
    elif isinstance(stmt, Incr):
        roots.append(stmt.target)
    elif isinstance(stmt, (If, While)):
        roots.append(stmt.cond)
    elif isinstance(stmt, ForRange):
        roots.append(stmt.stop)
    elif isinstance(stmt, ForEach):
        roots.append(stmt.iterable)
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            roots.append(stmt.value)
    elif isinstance(stmt, ExprStmt):
        roots.append(stmt.expr)
    elif isinstance(stmt, Append):
        roots.extend([stmt.collection, stmt.value])
    elif isinstance(stmt, MapPut):
        roots.extend([stmt.map, stmt.key, stmt.value])
    stack = list(roots)
    while stack:
        expr = stack.pop()
        yield expr
        if isinstance(expr, (Bin, StrCat)):
            stack.extend([expr.left, expr.right])
        elif isinstance(expr, Not):
            stack.append(expr.operand)
        elif isinstance(expr, (CallFree, CallLocal)):
            stack.extend(expr.args)
        elif isinstance(expr, Len):
            stack.append(expr.operand)
        elif isinstance(expr, Index):
            stack.extend([expr.collection, expr.index])
        elif isinstance(expr, MapGet):
            stack.extend([expr.map, expr.key])
        elif isinstance(expr, MapHas):
            stack.extend([expr.map, expr.key])


def _safe_type(expr: Expr) -> str:
    if isinstance(expr, NewCollection):
        # An empty literal's element type is a guess; let usage decide.
        return OBJECT
    try:
        return expr_type(expr)
    except (TypeError, ValueError, KeyError):
        return OBJECT


def _set(slot: VarSlot, tag: str) -> bool:
    if slot.type == OBJECT and tag != OBJECT:
        slot.type = tag
        return True
    return False


_ELEMENT_OF = {LIST_INT: INT, LIST_STRING: STRING}
_LIST_OF = {INT: LIST_INT, STRING: LIST_STRING}


def infer_types(result: LiftResult, max_rounds: int = 8) -> None:
    """Recover slot/collection/return types from usage, to a fixpoint.

    Lifts from statically-typed sources (Java, C#) arrive fully typed and
    pass through unchanged; Python/JavaScript lifts start as ``Object``
    and converge from evidence: loop bounds and ``++`` imply ``int``, map
    operations imply ``map<string,int>``, appends type lists, literals and
    typed call/return positions propagate outward.  Everything here is
    cosmetic -- it decides how idiomatic the typed renderings look, never
    program structure -- so unresolved slots safely stay ``Object``.
    """
    functions = result.spec.functions
    by_subtokens = {fn.name_subtokens: fn for fn in functions}
    for _ in range(max_rounds):
        changed = False
        for fn in functions:
            for stmt in _walk_stmts(fn.body):
                changed |= _infer_stmt(stmt)
                for expr in _walk_exprs(stmt):
                    changed |= _infer_expr(expr, by_subtokens)
            if fn.return_type == OBJECT:
                for stmt in _walk_stmts(fn.body):
                    if isinstance(stmt, Return) and stmt.value is not None:
                        tag = _safe_type(stmt.value)
                        if tag != OBJECT:
                            fn.return_type = tag
                            changed = True
                            break
        if not changed:
            break
    # Untyped empty-literal declarations: adopt the literal's default type.
    for fn in functions:
        for stmt in _walk_stmts(fn.body):
            if (
                isinstance(stmt, Decl)
                and isinstance(stmt.init, NewCollection)
                and stmt.slot.type == OBJECT
            ):
                stmt.slot.type = stmt.init.type


def _infer_stmt(stmt: Stmt) -> bool:
    changed = False
    if isinstance(stmt, (Decl, Assign)):
        slot = stmt.slot if isinstance(stmt, Decl) else stmt.target.slot if isinstance(stmt.target, Var) else None
        value = stmt.init if isinstance(stmt, Decl) else stmt.value
        if slot is not None and value is not None:
            changed |= _set(slot, _safe_type(value))
            if (
                isinstance(value, NewCollection)
                and slot.type in (LIST_INT, LIST_STRING, MAP_STR_INT)
                and value.type != slot.type
            ):
                value.type = slot.type
                changed = True
    elif isinstance(stmt, Aug):
        tag = _safe_type(stmt.value)
        if tag in (INT, DOUBLE, STRING):
            changed |= _set(stmt.target.slot, tag)
        if stmt.target.slot.type in (INT, DOUBLE, STRING) and isinstance(stmt.value, Var):
            changed |= _set(stmt.value.slot, stmt.target.slot.type)
    elif isinstance(stmt, Incr):
        changed |= _set(stmt.target.slot, INT)
    elif isinstance(stmt, Append):
        collection, value = stmt.collection, stmt.value
        if isinstance(collection, Var):
            tag = _safe_type(value)
            if tag in _LIST_OF:
                changed |= _set(collection.slot, _LIST_OF[tag])
            element = _ELEMENT_OF.get(collection.slot.type)
            if element and isinstance(value, Var):
                changed |= _set(value.slot, element)
    elif isinstance(stmt, MapPut):
        if isinstance(stmt.map, Var):
            changed |= _set(stmt.map.slot, MAP_STR_INT)
        if isinstance(stmt.key, Var):
            changed |= _set(stmt.key.slot, STRING)
        if isinstance(stmt.value, Var):
            changed |= _set(stmt.value.slot, INT)
    elif isinstance(stmt, ForEach):
        iterable, slot = stmt.iterable, stmt.slot
        if isinstance(iterable, Var):
            element = _ELEMENT_OF.get(iterable.slot.type)
            if element:
                changed |= _set(slot, element)
            if slot.type in _LIST_OF:
                changed |= _set(iterable.slot, _LIST_OF[slot.type])
    elif isinstance(stmt, ForRange):
        if isinstance(stmt.stop, Var):
            changed |= _set(stmt.stop.slot, INT)
    elif isinstance(stmt, (If, While)):
        if isinstance(stmt.cond, Var):
            changed |= _set(stmt.cond.slot, BOOL)
    return changed


def _infer_expr(expr: Expr, by_subtokens: Dict[Tuple[str, ...], Function]) -> bool:
    changed = False
    if isinstance(expr, MapHas):
        if isinstance(expr.map, Var):
            changed |= _set(expr.map.slot, MAP_STR_INT)
        if isinstance(expr.key, Var):
            changed |= _set(expr.key.slot, STRING)
    elif isinstance(expr, (Index, MapGet)):
        collection = expr.collection if isinstance(expr, Index) else expr.map
        key = expr.index if isinstance(expr, Index) else expr.key
        if isinstance(collection, Var):
            if _safe_type(key) == STRING:
                changed |= _set(collection.slot, MAP_STR_INT)
            if collection.slot.type == MAP_STR_INT and isinstance(key, Var):
                changed |= _set(key.slot, STRING)
            element = _ELEMENT_OF.get(collection.slot.type)
            if collection.slot.type in _ELEMENT_OF and isinstance(key, Var):
                changed |= _set(key.slot, INT)
    elif isinstance(expr, StrCat):
        for side in (expr.left, expr.right):
            if isinstance(side, Var):
                changed |= _set(side.slot, STRING)
    elif isinstance(expr, Bin):
        left_tag, right_tag = _safe_type(expr.left), _safe_type(expr.right)
        if expr.op in ("<", ">", "<=", ">=", "-", "*", "/", "%"):
            if left_tag in (INT, DOUBLE) and isinstance(expr.right, Var):
                changed |= _set(expr.right.slot, left_tag)
            if right_tag in (INT, DOUBLE) and isinstance(expr.left, Var):
                changed |= _set(expr.left.slot, right_tag)
        elif expr.op in ("==", "!=", "+"):
            for tag, other in ((left_tag, expr.right), (right_tag, expr.left)):
                if tag in (INT, DOUBLE, STRING) and isinstance(other, Var):
                    changed |= _set(other.slot, tag)
    elif isinstance(expr, Not):
        if isinstance(expr.operand, Var):
            changed |= _set(expr.operand.slot, BOOL)
    elif isinstance(expr, CallLocal):
        fn = by_subtokens.get(tuple(expr.name_subtokens))
        if fn is not None:
            if expr.return_type != fn.return_type:
                expr.return_type = fn.return_type
                changed = True
            for param, arg in zip(fn.params, expr.args):
                tag = _safe_type(arg)
                if tag != OBJECT:
                    changed |= _set(param, tag)
                if param.type != OBJECT and isinstance(arg, Var):
                    changed |= _set(arg.slot, param.type)
    return changed
