"""Resilience: crash-safe artifacts, resumable training, fault injection.

This subsystem is the ROADMAP's "production retraining loop" enabler:
every durable artifact the stack writes (saved pipelines, shard files,
merge manifests, training checkpoints, benchmark baselines) commits
atomically, every long-running build or train can resume from where a
crash killed it with **bit-identical** results, and every failure path
can be exercised deterministically from a seeded fault plan instead of
hand-rolled kills.

:mod:`repro.resilience.atomicio`
    :func:`atomic_write_bytes`: write-to-temp + fsync + rename +
    parent-dir fsync, so readers observe either the old artifact or the
    complete new one, never a torn write.  :func:`write_stamped_json` /
    :func:`read_stamped_json` add a blake2b digest over the payload;
    loads that hit a truncated or bit-flipped file raise a structured
    :class:`CorruptArtifactError` naming the file, the expected vs.
    actual digest, and a recovery hint -- quarantine, not a traceback.
:mod:`repro.resilience.checkpoint`
    :class:`TrainerCheckpoint`: per-epoch, digest-stamped trainer state
    (CRF accumulator dicts + shuffle rng/order, SGNS matrices + PCG64
    state) bound to the RunSpec and a corpus fingerprint so a
    checkpoint can never silently resume against different data.
    ``pigeon train --resume`` continues an interrupted run and saves a
    model bit-identical to the uninterrupted one -- the same oracle
    discipline as ``ReferencePathExtractor``.  Shard builds keep a
    journal (:mod:`repro.shards.build`) so ``pigeon shard build
    --resume`` skips digest-verified completed shards.
:mod:`repro.resilience.faults`
    :class:`FaultPlan`: seeded, named injection sites threaded through
    shard writes, pipeline/checkpoint saves, replica HTTP
    accept/respond, and router forwarding.  Activated via
    ``PIGEON_FAULTS='shard.write:crash@3;router.forward:timeout@0.1'``;
    every firing is recorded (optionally to a JSONL log) so chaos runs
    in ``tests/test_chaos.py`` are reproducible from the seed alone.

The contract the chaos suite enforces: under any planned fault, the
system ends in one of exactly three states -- a correct result, a
structured :class:`CorruptArtifactError`-family error, or a clean 5xx
with zero wrong predictions.  No torn artifacts, no silent partial
state.
"""

from repro.resilience.atomicio import (
    CorruptArtifactError,
    artifact_digest,
    atomic_write_bytes,
    fsync_directory,
    read_stamped_json,
    write_stamped_json,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointMismatchError,
    TrainerCheckpoint,
    corpus_fingerprint,
    shards_fingerprint,
)
from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    fire,
    install,
    plan,
    reset,
)

__all__ = [
    "CorruptArtifactError",
    "artifact_digest",
    "atomic_write_bytes",
    "fsync_directory",
    "read_stamped_json",
    "write_stamped_json",
    "CHECKPOINT_FORMAT",
    "CheckpointMismatchError",
    "TrainerCheckpoint",
    "corpus_fingerprint",
    "shards_fingerprint",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "fire",
    "install",
    "plan",
    "reset",
]
