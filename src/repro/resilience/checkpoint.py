"""Per-epoch trainer checkpoints bound to spec + corpus fingerprints.

A :class:`TrainerCheckpoint` wraps one digest-stamped JSON file that a
trainer rewrites atomically at every epoch boundary.  The file carries
the serialized :class:`~repro.api.spec.RunSpec` and a fingerprint of
the training corpus, so ``--resume`` refuses (with
:class:`CheckpointMismatchError`) to continue a run against different
data or a different spec -- the failure mode that silently produces a
wrong model.

The state payload is trainer-owned and opaque here; the contract is
that restoring it and finishing the remaining epochs yields a saved
model **bit-identical** to the uninterrupted run.  Both trainers keep
that promise by checkpointing their full accumulator state including
RNG internals (``random.Random.getstate`` for the CRF shuffle, the
PCG64 bit-generator state for SGNS) -- see ``tests/test_chaos.py``.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Iterable, Optional

from repro.resilience import faults
from repro.resilience.atomicio import (
    CorruptArtifactError,
    read_stamped_json,
    write_stamped_json,
)

CHECKPOINT_FORMAT = "pigeon-checkpoint/1"


class CheckpointMismatchError(ValueError):
    """A checkpoint does not match the run asked to resume from it."""


def corpus_fingerprint(sources: Iterable[str]) -> str:
    """Order-sensitive fingerprint of the training sources."""
    digest = hashlib.blake2b(digest_size=16)
    count = 0
    for source in sources:
        body = source.encode("utf-8")
        digest.update(str(len(body)).encode("ascii"))
        digest.update(b":")
        digest.update(body)
        count += 1
    digest.update(f";n={count}".encode("ascii"))
    return digest.hexdigest()


def shards_fingerprint(shard_set: Any) -> str:
    """Fingerprint a ShardSet by its ordered per-shard digests."""
    digest = hashlib.blake2b(digest_size=16)
    count = 0
    for reader in shard_set:
        digest.update(reader.digest.encode("ascii"))
        digest.update(b";")
        count += 1
    digest.update(f"n={count}".encode("ascii"))
    return digest.hexdigest()


class TrainerCheckpoint:
    """One atomic checkpoint file a trainer rewrites each epoch."""

    def __init__(
        self,
        path: str,
        *,
        spec: dict,
        corpus: str,
        epochs_done: int = 0,
        state: Optional[dict] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.spec = spec
        self.corpus = corpus
        self.epochs_done = epochs_done
        self.state = state

    @classmethod
    def fresh(cls, path: str, *, spec: dict, corpus: str) -> "TrainerCheckpoint":
        return cls(path, spec=spec, corpus=corpus)

    @classmethod
    def resume(cls, path: str, *, spec: dict, corpus: str) -> "TrainerCheckpoint":
        """Load an existing checkpoint, verifying it belongs to this run."""
        payload = read_stamped_json(
            path,
            require_digest=True,
            hint="delete the checkpoint and restart the run",
        )
        if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
            raise CorruptArtifactError(
                os.fspath(path),
                detail=(
                    f"not a trainer checkpoint "
                    f"(format {payload.get('format') if isinstance(payload, dict) else None!r}; "
                    f"expected {CHECKPOINT_FORMAT!r})"
                ),
                hint="pass the file written by 'pigeon train --checkpoint'",
            )
        if payload["spec"] != spec:
            raise CheckpointMismatchError(
                f"checkpoint {os.fspath(path)!r} was written for a different run "
                f"spec; resume with the original spec or delete the checkpoint"
            )
        if payload["corpus"] != corpus:
            raise CheckpointMismatchError(
                f"checkpoint {os.fspath(path)!r} was written against a different "
                f"corpus (fingerprint {payload['corpus']}, this run {corpus}); "
                f"resuming would silently train a wrong model"
            )
        return cls(
            path,
            spec=spec,
            corpus=corpus,
            epochs_done=int(payload["epochs_done"]),
            state=payload["state"],
        )

    @classmethod
    def open(
        cls, path: str, *, spec: dict, corpus: str, resume: bool
    ) -> "TrainerCheckpoint":
        """Resume from ``path`` when asked and it exists, else start fresh."""
        if resume and os.path.exists(path):
            return cls.resume(path, spec=spec, corpus=corpus)
        return cls.fresh(path, spec=spec, corpus=corpus)

    def save_epoch(self, epochs_done: int, state: dict) -> None:
        """Atomically persist trainer state at an epoch boundary."""
        faults.fire("checkpoint.save")
        write_stamped_json(
            self.path,
            {
                "format": CHECKPOINT_FORMAT,
                "spec": self.spec,
                "corpus": self.corpus,
                "epochs_done": epochs_done,
                "state": state,
            },
        )
        self.epochs_done = epochs_done
        self.state = state
