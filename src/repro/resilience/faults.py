"""Deterministic fault injection: seeded plans over named sites.

A :class:`FaultPlan` is parsed from a compact grammar::

    PIGEON_FAULTS='shard.write:crash@3;router.forward:timeout@0.1'

Each rule is ``site:kind@arg``:

``crash@N``
    hard-kill the process (``os._exit(137)``) on the N-th hit of the
    site -- the chaos suite's SIGKILL stand-in.
``error@N``
    raise :class:`FaultInjected` on the N-th hit.
``timeout@P`` / ``unavail@P``
    with probability ``P`` per hit (per-site ``random.Random`` seeded
    from the plan seed, so runs are reproducible), tell the site to
    stall or report unavailability.  Sites act on the returned action.

Sites are plain strings fired through the module-level singleton:
``faults.fire("shard.write")``.  With no plan installed ``fire`` is a
few-nanosecond no-op, so production paths pay nothing.  Every firing is
recorded in memory and, when ``PIGEON_FAULT_LOG`` is set, appended as a
JSONL line -- CI uploads those logs when a chaos job fails.

Known sites: ``atomic.commit``, ``shard.write``, ``pipeline.save``,
``checkpoint.save``, ``train.epoch``, ``replica.accept``,
``replica.respond``, ``router.forward``, ``translate`` (the entry of
:meth:`repro.translate.Translator.translate`: ``timeout`` stalls the
translation, ``unavail``/``error`` raise :class:`FaultInjected`, which
serving surfaces as a 500).
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Exit status used by ``crash`` rules -- matches SIGKILL's 128+9.
CRASH_EXIT_CODE = 137

#: How long a site sleeps when a ``timeout`` rule fires.
TIMEOUT_SLEEP_S = 0.5

ENV_PLAN = "PIGEON_FAULTS"
ENV_SEED = "PIGEON_FAULTS_SEED"
ENV_LOG = "PIGEON_FAULT_LOG"

_KINDS = ("crash", "error", "timeout", "unavail")


class FaultInjected(RuntimeError):
    """An ``error`` fault rule fired at a named site."""

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"injected fault at site {site!r}")


@dataclass(frozen=True)
class FaultRule:
    site: str
    kind: str  # crash | error | timeout | unavail
    arg: float  # hit count (crash/error) or probability (timeout/unavail)


@dataclass
class FaultPlan:
    """A seeded set of fault rules with per-site hit accounting."""

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0
    log_path: Optional[str] = None
    hits: Dict[str, int] = field(default_factory=dict)
    fired: List[dict] = field(default_factory=list)
    _rngs: Dict[str, random.Random] = field(default_factory=dict)

    @classmethod
    def parse(
        cls,
        text: str,
        seed: Optional[int] = None,
        log_path: Optional[str] = None,
    ) -> "FaultPlan":
        if seed is None:
            seed = int(os.environ.get(ENV_SEED, "0"))
        if log_path is None:
            log_path = os.environ.get(ENV_LOG) or None
        rules = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            try:
                site, spec = chunk.split(":", 1)
                kind, arg = spec.split("@", 1)
                value = float(arg)
            except ValueError:
                raise ValueError(
                    f"bad fault rule {chunk!r}: expected 'site:kind@arg'"
                ) from None
            site, kind = site.strip(), kind.strip()
            if kind not in _KINDS:
                raise ValueError(
                    f"bad fault rule {chunk!r}: unknown kind {kind!r} "
                    f"(expected one of {', '.join(_KINDS)})"
                )
            if kind in ("crash", "error") and (value < 1 or value != int(value)):
                raise ValueError(
                    f"bad fault rule {chunk!r}: {kind} takes a hit count >= 1"
                )
            if kind in ("timeout", "unavail") and not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"bad fault rule {chunk!r}: {kind} takes a probability in [0, 1]"
                )
            rules.append(FaultRule(site, kind, value))
        return cls(rules=rules, seed=seed, log_path=log_path)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        text = os.environ.get(ENV_PLAN)
        if not text:
            return None
        return cls.parse(text)

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random(f"{self.seed}:{site}")
        return rng

    def _record(self, site: str, kind: str, hit: int) -> None:
        event = {"site": site, "kind": kind, "hit": hit, "seed": self.seed}
        self.fired.append(event)
        if self.log_path:
            line = json.dumps(event, separators=(",", ":")) + "\n"
            try:
                with open(self.log_path, "a", encoding="utf-8") as handle:
                    handle.write(line)
                    handle.flush()
                    os.fsync(handle.fileno())
            except OSError:
                pass  # logging must never mask the fault itself

    def fire(self, site: str) -> Optional[str]:
        """Account a hit at ``site``; crash, raise, or return an action.

        Returns ``None`` (no fault), or ``"timeout"`` / ``"unavail"``
        for the site to act on.  ``crash`` rules ``os._exit`` after
        recording; ``error`` rules raise :class:`FaultInjected`.
        """
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        for rule in self.rules:
            if rule.site != site:
                continue
            if rule.kind == "crash":
                if hit == int(rule.arg):
                    self._record(site, "crash", hit)
                    os._exit(CRASH_EXIT_CODE)
            elif rule.kind == "error":
                if hit == int(rule.arg):
                    self._record(site, "error", hit)
                    raise FaultInjected(site)
            elif self._rng(site).random() < rule.arg:
                self._record(site, rule.kind, hit)
                return rule.kind
        return None


_active: Optional[FaultPlan] = None
_env_checked = False


def install(plan_: Optional[FaultPlan]) -> None:
    """Install (or clear, with ``None``) the process-wide fault plan."""
    global _active, _env_checked
    _active = plan_
    _env_checked = True


def reset() -> None:
    """Clear the plan and re-arm the environment lookup."""
    global _active, _env_checked
    _active = None
    _env_checked = False


def plan() -> Optional[FaultPlan]:
    """The active plan, lazily loaded from ``PIGEON_FAULTS`` once."""
    global _env_checked, _active
    if not _env_checked:
        _env_checked = True
        _active = FaultPlan.from_env()
    return _active


def fire(site: str) -> Optional[str]:
    """Fire ``site`` against the active plan; no-op when none is set."""
    active = plan()
    if active is None:
        return None
    return active.fire(site)
