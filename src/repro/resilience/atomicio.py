"""Atomic durable writes and digest-stamped JSON artifacts.

Every durable artifact in the stack funnels through two primitives:

:func:`atomic_write_bytes`
    write to a temp file in the destination directory, ``fsync`` it,
    ``os.replace`` over the destination, then ``fsync`` the parent
    directory.  A crash at any point leaves either the old file or the
    complete new one -- never a torn artifact.
:func:`write_stamped_json` / :func:`read_stamped_json`
    compact-JSON payloads with a blake2b digest appended as the last
    key.  Readers re-derive the digest; a truncated or bit-flipped file
    raises :class:`CorruptArtifactError` naming the file, the expected
    vs. actual digest, and a recovery hint.  Files written before the
    digest era load unchanged (the digest key is simply absent).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Optional

from repro.resilience import faults

#: Hex length of the blake2b digest stamped into artifacts (16 bytes).
DIGEST_BYTES = 16

#: Key under which the digest is stored in stamped JSON artifacts.
DIGEST_KEY = "digest"


class CorruptArtifactError(ValueError):
    """A durable artifact failed integrity verification on load.

    Structured so callers (and humans reading one-line CLI errors) see
    the file, what digest was expected vs. computed, and how to
    recover -- quarantine semantics, never a bare traceback.
    """

    def __init__(
        self,
        path: str,
        *,
        expected: Optional[str] = None,
        actual: Optional[str] = None,
        hint: Optional[str] = None,
        detail: Optional[str] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.expected_digest = expected
        self.actual_digest = actual
        self.hint = hint
        parts = [f"{self.path!r} is corrupt"]
        if detail:
            parts.append(detail)
        if expected is not None or actual is not None:
            parts.append(
                f"expected digest {expected or '<missing>'}, "
                f"computed {actual or '<none>'}"
            )
        if hint:
            parts.append(hint)
        super().__init__("; ".join(parts))


def artifact_digest(body: bytes) -> str:
    """blake2b hex digest (16 bytes) used to stamp artifacts."""
    return hashlib.blake2b(body, digest_size=DIGEST_BYTES).hexdigest()


def fsync_directory(path: str) -> None:
    """Best-effort fsync of a directory so a rename inside it is durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; rename is still atomic
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Durably write ``data`` to ``path``: temp + fsync + rename + dir fsync."""
    path = os.fspath(path)
    parent = os.path.dirname(path) or "."
    base = os.path.basename(path)
    fd, temp_path = tempfile.mkstemp(prefix=f".{base}.", suffix=".tmp", dir=parent)
    try:
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        faults.fire("atomic.commit")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    fsync_directory(parent)


def atomic_write_text(path: str, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


def stamped_json_bytes(payload: dict) -> bytes:
    """Serialize ``payload`` compactly with its digest appended as last key."""
    body = json.dumps(payload, separators=(",", ":"))
    digest = artifact_digest(body.encode("utf-8"))
    return f'{body[:-1]},"{DIGEST_KEY}":"{digest}"}}'.encode("utf-8")


def write_stamped_json(path: str, payload: dict) -> None:
    """Atomically write ``payload`` as digest-stamped compact JSON."""
    if not isinstance(payload, dict) or not payload:
        raise ValueError("stamped artifacts must be non-empty JSON objects")
    if DIGEST_KEY in payload:
        raise ValueError(f"payload already contains the reserved {DIGEST_KEY!r} key")
    atomic_write_bytes(os.fspath(path), stamped_json_bytes(payload))


def read_stamped_json(
    path: str, *, require_digest: bool = False, hint: Optional[str] = None
) -> Any:
    """Load a digest-stamped JSON artifact, verifying its integrity.

    Raises :class:`CorruptArtifactError` when the file is not valid
    JSON or its stamped digest does not match the payload.  Files
    without a digest key load as-is (pre-digest artifacts) unless
    ``require_digest`` is set.  Missing files raise ``OSError`` --
    absence is not corruption.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        data = handle.read()
    try:
        raw = data.decode("utf-8")
        payload = json.loads(raw)
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CorruptArtifactError(
            path,
            detail=f"not valid JSON ({error})",
            hint=hint or "the file is truncated or torn -- regenerate it",
        ) from error
    if not isinstance(payload, dict) or DIGEST_KEY not in payload:
        if require_digest:
            raise CorruptArtifactError(
                path,
                detail="missing its integrity digest",
                hint=hint or "regenerate the artifact",
            )
        return payload
    expected = payload.pop(DIGEST_KEY)
    body = json.dumps(payload, separators=(",", ":"))
    actual = artifact_digest(body.encode("utf-8"))
    if actual != expected:
        raise CorruptArtifactError(
            path,
            expected=expected,
            actual=actual,
            hint=hint or "the file is truncated or corrupted -- regenerate it",
        )
    return payload
