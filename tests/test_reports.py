"""Unit tests for report formatting."""

import pytest

from repro.eval.harness import ExperimentResult
from repro.eval.reports import (
    accuracy_cell,
    format_comparison_rows,
    format_grid,
    format_series,
    format_table,
    format_table2,
)


def result(name="model", accuracy=50.0, **extra):
    return ExperimentResult(name=name, accuracy=accuracy, n=100, extra=extra)


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table("Title", [("a", "1"), ("longer", "22")], ("x", "y"))
        lines = text.splitlines()
        header = lines[2]
        row = lines[4]
        assert header.index("y") == row.index("1") or "1" in row

    def test_title_and_separators(self):
        text = format_table("My Table", [("a", "b")], ("h1", "h2"))
        assert text.startswith("My Table\n-")
        assert text.count("\n-") >= 2

    def test_empty_rows(self):
        text = format_table("T", [], ("only", "headers"))
        assert "only" in text


class TestCells:
    def test_accuracy_cell(self):
        assert accuracy_cell(result(accuracy=42.123)) == "42.1%"
        assert accuracy_cell(None) == "-"


class TestFigureFormats:
    def test_series_includes_x_values(self):
        results = [
            result(accuracy=10.0, keep_probability=0.2),
            result(accuracy=20.0, keep_probability=1.0),
        ]
        text = format_series("Fig", results, "keep_probability", "p")
        assert "0.2" in text and "1" in text
        assert "10.0%" in text and "20.0%" in text

    def test_grid_layout(self):
        results = [
            result(accuracy=10.0, max_length=3.0, max_width=1.0),
            result(accuracy=20.0, max_length=4.0, max_width=1.0),
            result(accuracy=30.0, max_length=3.0, max_width=2.0),
            result(accuracy=40.0, max_length=4.0, max_width=2.0),
        ]
        text = format_grid("Grid", results)
        assert "3" in text and "4" in text
        assert "40.0%" in text

    def test_comparison_rows(self):
        text = format_comparison_rows([("a", result()), ("b", result(accuracy=60.0))], "Cmp")
        assert "60.0%" in text

    def test_table2_sections(self):
        text = format_table2(
            [
                ("Variable names", [("paths", result())]),
                ("Method names", [("paths", result(accuracy=47.0))]),
            ]
        )
        assert "Variable names" in text and "Method names" in text


class TestExperimentResult:
    def test_summary(self):
        assert result(name="x", accuracy=51.26).summary() == "x: 51.3% (n=100)"

    def test_extra_dict(self):
        r = result(foo=1.5)
        assert r.extra["foo"] == 1.5
