"""Shared fixtures: small corpora, parsed ASTs, tiny trained models."""

from __future__ import annotations

import pytest

from repro.corpus import deduplicate, generate_corpus, split_corpus
from repro.corpus.generator import CorpusConfig
from repro.lang.base import parse_source


from fixtures import (  # noqa: F401  (re-exported for fixtures below)
    COUNT_CSHARP,
    COUNT_JAVA,
    FIG1_JS,
    FIG4_JS,
    FIG5_JS,
    SH3_PYTHON,
)


@pytest.fixture(scope="session")
def fig1_ast():
    return parse_source("javascript", FIG1_JS)


@pytest.fixture(scope="session")
def count_java_ast():
    return parse_source("java", COUNT_JAVA)


@pytest.fixture(scope="session")
def sh3_python_ast():
    return parse_source("python", SH3_PYTHON)


@pytest.fixture(scope="session")
def count_csharp_ast():
    return parse_source("csharp", COUNT_CSHARP)


def small_corpus(language: str, n_projects: int = 6, seed: int = 5):
    files = generate_corpus(
        CorpusConfig(language=language, n_projects=n_projects, files_per_project=(3, 6), seed=seed)
    )
    kept, _ = deduplicate(files)
    return kept


@pytest.fixture(scope="session")
def js_corpus():
    return small_corpus("javascript")


@pytest.fixture(scope="session")
def java_corpus():
    return small_corpus("java")


@pytest.fixture(scope="session")
def python_corpus():
    return small_corpus("python")


@pytest.fixture(scope="session")
def csharp_corpus():
    return small_corpus("csharp")


@pytest.fixture(scope="session")
def js_split(js_corpus):
    return split_corpus(js_corpus, seed=3)


@pytest.fixture(scope="session")
def js_asts(js_corpus):
    return {f.path: parse_source("javascript", f.source) for f in js_corpus}
