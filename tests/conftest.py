"""Shared fixtures: small corpora, parsed ASTs, tiny trained models."""

from __future__ import annotations

import pytest

from repro.corpus import deduplicate, generate_corpus, split_corpus
from repro.corpus.generator import CorpusConfig
from repro.lang.base import parse_source


FIG1_JS = """
var d = false;
while (!d) {
  if (someCondition()) {
    d = true;
  }
}
"""

FIG4_JS = "var item = array[i];"

FIG5_JS = "var a, b, c, d;"

COUNT_JAVA = """
package com.example.app;
import java.util.List;

public class Counter {
    private int total;

    public int count(List<Integer> values, int value) {
        int c = 0;
        for (int r : values) {
            if (r == value) {
                c++;
            }
        }
        return c;
    }
}
"""

SH3_PYTHON = '''
def sh3(cmd):
    process = popen(cmd)
    retcode = process.returncode
    if retcode:
        raise CalledProcessError(retcode, cmd)
    return retcode
'''

COUNT_CSHARP = """
using System;
using System.Collections.Generic;

namespace Demo.App {
    public class Counter {
        public int Count(List<int> values, int value) {
            int c = 0;
            foreach (int r in values) {
                if (r == value) {
                    c++;
                }
            }
            return c;
        }
    }
}
"""


@pytest.fixture(scope="session")
def fig1_ast():
    return parse_source("javascript", FIG1_JS)


@pytest.fixture(scope="session")
def count_java_ast():
    return parse_source("java", COUNT_JAVA)


@pytest.fixture(scope="session")
def sh3_python_ast():
    return parse_source("python", SH3_PYTHON)


@pytest.fixture(scope="session")
def count_csharp_ast():
    return parse_source("csharp", COUNT_CSHARP)


def small_corpus(language: str, n_projects: int = 6, seed: int = 5):
    files = generate_corpus(
        CorpusConfig(language=language, n_projects=n_projects, files_per_project=(3, 6), seed=seed)
    )
    kept, _ = deduplicate(files)
    return kept


@pytest.fixture(scope="session")
def js_corpus():
    return small_corpus("javascript")


@pytest.fixture(scope="session")
def java_corpus():
    return small_corpus("java")


@pytest.fixture(scope="session")
def python_corpus():
    return small_corpus("python")


@pytest.fixture(scope="session")
def csharp_corpus():
    return small_corpus("csharp")


@pytest.fixture(scope="session")
def js_split(js_corpus):
    return split_corpus(js_corpus, seed=3)


@pytest.fixture(scope="session")
def js_asts(js_corpus):
    return {f.path: parse_source("javascript", f.source) for f in js_corpus}
