"""Tests for the interning layer and the id-keyed model persistence."""

import json
import os

import pytest

from repro.core.extraction import ExtractionConfig, PathExtractor
from repro.core.interning import (
    DEFAULT_SPACE,
    ContextVocab,
    FeatureSpace,
    FrozenVocabError,
    OverlayVocab,
    PathVocab,
    Vocab,
)
from repro.learning.crf import CrfGraph, CrfModel, CrfTrainer, TrainingConfig, map_inference
from repro.tasks.variable_naming import build_crf_graph, element_contexts
from repro.lang.base import parse_source


class TestVocab:
    def test_dense_first_seen_ids(self):
        vocab = Vocab()
        assert vocab.intern("a") == 0
        assert vocab.intern("b") == 1
        assert vocab.intern("a") == 0
        assert len(vocab) == 2
        assert vocab.value(1) == "b"
        assert list(vocab) == ["a", "b"]

    def test_id_of_misses_return_none(self):
        vocab = Vocab(["x"])
        assert vocab.id_of("x") == 0
        assert vocab.id_of("y") is None
        assert "x" in vocab and "y" not in vocab

    def test_round_trip(self):
        vocab = PathVocab(["A↑B", "B↓C", "*"])
        restored = PathVocab.from_list(vocab.to_list())
        assert restored.to_list() == vocab.to_list()
        assert restored.id_of("B↓C") == vocab.id_of("B↓C")


class TestFeatureSpace:
    def test_encode_decode_context(self):
        space = FeatureSpace()
        triple = space.encode_context("x", "A↑B↓C", "y")
        assert space.decode_context(triple) == ("x", "A↑B↓C", "y")

    def test_round_trip(self):
        space = FeatureSpace()
        space.encode_context("x", "A↑B", "y")
        space.encode_context("z", "B↓C", "x")
        restored = FeatureSpace.from_dict(space.to_dict())
        assert restored.to_dict() == space.to_dict()
        assert restored.paths.id_of("B↓C") == space.paths.id_of("B↓C")
        assert restored.values.id_of("z") == space.values.id_of("z")

    def test_paths_and_values_are_separate_vocabs(self):
        space = FeatureSpace()
        pid = space.paths.intern("token")
        vid = space.values.intern("token")
        assert space.paths.value(pid) == space.values.value(vid) == "token"


class TestExtractionInterning:
    def test_ids_decode_to_context_strings(self, fig1_ast):
        space = FeatureSpace()
        extractor = PathExtractor(ExtractionConfig(), space=space)
        for extracted in extractor.extract(fig1_ast):
            assert space.paths.value(extracted.rel_id) == extracted.context.path
            assert space.values.value(extracted.start_value_id) == extracted.context.start_value
            assert space.values.value(extracted.end_value_id) == extracted.context.end_value

    def test_independent_extractors_share_default_space(self, fig1_ast):
        a = PathExtractor(ExtractionConfig())
        b = PathExtractor(ExtractionConfig())
        assert a.space is DEFAULT_SPACE and b.space is DEFAULT_SPACE
        rel_a = {e.rel_id: e.context.path for e in a.extract(fig1_ast)}
        rel_b = {e.rel_id: e.context.path for e in b.extract(fig1_ast)}
        assert rel_a == rel_b

    def test_graph_interns_strings_and_ids_equivalently(self):
        space = FeatureSpace()
        graph = CrfGraph("g", space=space)
        index = graph.add_unknown("e", gold="x")
        graph.add_known_factor(index, "rel", "label")
        graph.add_known_factor(index, space.paths.intern("rel"), space.values.intern("label"))
        assert graph.unknowns[0].known[0] == graph.unknowns[0].known[1]


class TestIdKeyedModelPersistence:
    def _trained_model(self):
        sources = [
            "function f(a, b) { return a + b; }",
            "function g(x) { var y = x + 1; return y; }",
            "var d = false;\nwhile (!d) { if (someCondition()) { d = true; } }",
        ]
        space = FeatureSpace()
        extractor = PathExtractor(ExtractionConfig(), space=space)
        graphs = [
            build_crf_graph(parse_source("javascript", source), extractor)
            for source in sources
        ]
        model, _stats = CrfTrainer(TrainingConfig(epochs=3)).train(graphs)
        return model, graphs

    def test_keys_are_int_tuples(self):
        model, _graphs = self._trained_model()
        assert model.pair_weights or model.unary_weights
        for key in model.pair_weights:
            assert len(key) == 3 and all(isinstance(part, int) for part in key)
        for key in model.unary_weights:
            assert len(key) == 2 and all(isinstance(part, int) for part in key)
        for key in model.candidate_index:
            assert all(isinstance(part, int) for part in key)
        assert all(isinstance(label, int) for label in model.label_counts)

    def test_state_is_json_serializable(self):
        model, _graphs = self._trained_model()
        payload = json.dumps(model.to_dict())
        restored = CrfModel.from_dict(json.loads(payload))
        assert restored.pair_weights == model.pair_weights
        assert restored.unary_weights == model.unary_weights

    def test_save_load_predicts_identically(self, tmp_path):
        model, graphs = self._trained_model()
        path = os.path.join(tmp_path, "model.json")
        model.save(path)
        loaded = CrfModel.load(path, space=graphs[0].space)
        for graph in graphs:
            assert map_inference(loaded, graph) == map_inference(model, graph)

    def test_standalone_load_remaps_onto_default_space(self, tmp_path):
        """A model saved in one process must score graphs built by fresh
        default extractors in another: load() translates snapshot ids
        into DEFAULT_SPACE."""
        source = "function f(a, b) { return a + b; }"
        # "Process A": private space, train, save.
        space = FeatureSpace()
        extractor = PathExtractor(ExtractionConfig(), space=space)
        graphs = [build_crf_graph(parse_source("javascript", source), extractor)]
        model, _ = CrfTrainer(TrainingConfig(epochs=2)).train(graphs)
        path = os.path.join(tmp_path, "model.json")
        model.save(path)
        # "Process B": default extractor (DEFAULT_SPACE), fresh graph.
        loaded = CrfModel.load(path)
        assert loaded.space is DEFAULT_SPACE
        fresh_graph = build_crf_graph(
            parse_source("javascript", source), PathExtractor(ExtractionConfig())
        )
        assert map_inference(loaded, fresh_graph) == map_inference(model, graphs[0])

    def test_model_uses_graph_space(self):
        model, graphs = self._trained_model()
        assert model.space is graphs[0].space

    def test_mixed_spaces_rejected(self):
        graph_a = CrfGraph("a", space=FeatureSpace())
        graph_b = CrfGraph("b", space=FeatureSpace())
        with pytest.raises(ValueError, match="FeatureSpace"):
            CrfTrainer(TrainingConfig(epochs=1)).train([graph_a, graph_b])


class TestW2vIdPairs:
    def test_tokens_are_id_pairs(self, fig1_ast):
        space = FeatureSpace()
        extractor = PathExtractor(ExtractionConfig(), space=space)
        contexts = element_contexts(fig1_ast, extractor)
        _gold, tokens = next(iter(contexts.values()))
        assert tokens
        for rel_id, value_id in tokens:
            assert isinstance(rel_id, int) and isinstance(value_id, int)
            assert space.paths.value(rel_id)  # decodes
            assert space.values.value(value_id)


class TestFreeze:
    def test_frozen_vocab_rejects_new_strings(self):
        vocab = Vocab(["a", "b"])
        vocab.freeze()
        assert vocab.frozen
        assert vocab.intern("a") == 0  # known strings still resolve
        with pytest.raises(FrozenVocabError):
            vocab.intern("c")

    def test_freeze_space_freezes_both_vocabs(self):
        space = FeatureSpace()
        space.encode_context("x", "A↑B", "y")
        assert not space.frozen
        space.freeze()
        assert space.frozen and space.paths.frozen and space.values.frozen
        with pytest.raises(FrozenVocabError):
            space.encode_context("x", "NEW", "y")

    def test_frozen_space_round_trips(self):
        space = FeatureSpace()
        space.encode_context("x", "A↑B", "y")
        space.freeze()
        restored = FeatureSpace.from_dict(space.to_dict())
        assert restored.to_dict() == space.to_dict()
        assert not restored.frozen  # freezing is runtime state, not data


class TestOverlay:
    def test_base_ids_preserved(self):
        base = Vocab(["a", "b"])
        overlay = OverlayVocab(base)
        assert overlay.intern("a") == 0
        assert overlay.intern("b") == 1
        assert overlay.id_of("b") == 1

    def test_unseen_strings_get_local_ids_without_touching_base(self):
        base = Vocab(["a", "b"])
        base.freeze()
        overlay = OverlayVocab(base)
        assert overlay.intern("c") == 2
        assert overlay.intern("d") == 3
        assert overlay.intern("c") == 2
        assert len(base) == 2 and "c" not in base
        assert overlay.value(2) == "c" and overlay.value(0) == "a"
        assert len(overlay) == 4
        assert list(overlay) == ["a", "b", "c", "d"]
        assert "c" in overlay and "e" not in overlay
        assert overlay.id_of("e") is None

    def test_two_overlays_are_independent(self):
        base = Vocab(["a"])
        base.freeze()
        first, second = OverlayVocab(base), OverlayVocab(base)
        assert first.intern("x") == 1
        assert second.intern("y") == 1  # local ids may collide across overlays
        assert first.id_of("y") is None and second.id_of("x") is None

    def test_space_overlay(self):
        space = FeatureSpace()
        triple = space.encode_context("x", "A↑B", "y")
        space.freeze()
        overlay = space.overlay()
        # known strings keep their base ids, new ones stay local
        assert overlay.encode_context("x", "A↑B", "y") == triple
        new_triple = overlay.encode_context("x", "NEW", "z")
        assert overlay.decode_context(new_triple) == ("x", "NEW", "z")
        assert "NEW" not in space.paths and "z" not in space.values
        assert space.frozen  # base untouched and still frozen
