"""Unit tests for the baselines of Sec. 5.3."""

import pytest

from repro.baselines import (
    NAIVE_TYPE,
    build_ngram_graph,
    build_no_paths_graph,
    build_unuglify_graph,
    naive_type_predictions,
    path_neighbor_contexts,
    path_neighbor_pairs,
    rule_based_predictions,
    token_stream_contexts,
    token_stream_pairs,
)
from repro.core.interning import DEFAULT_SPACE
from repro.lang.base import parse_source
from repro.tasks.variable_naming import decode_w2v_token, element_groups

from fixtures import COUNT_JAVA, FIG1_JS


class TestNoPaths:
    def test_all_relations_collapse(self, fig1_ast):
        graph = build_no_paths_graph(fig1_ast)
        rels = {graph.decode_rel(f.rel) for n in graph.unknowns for f in n.known}
        rels |= {graph.decode_rel(r) for n in graph.unknowns for r in n.unary}
        assert rels == {"*"}

    def test_same_elements_as_paths(self, fig1_ast):
        graph = build_no_paths_graph(fig1_ast)
        assert [n.gold for n in graph.unknowns] == ["d"]


class TestNgram:
    def test_graph_relations_are_offsets(self, count_java_ast):
        graph = build_ngram_graph(COUNT_JAVA, count_java_ast, "java", n=4)
        rels = {graph.decode_rel(f.rel) for n in graph.unknowns for f in n.known}
        assert rels and all(r.startswith("g") for r in rels)
        offsets = {int(r[1:]) for r in rels}
        assert offsets <= set(range(-3, 4)) - {0}

    def test_window_limits_offsets(self, count_java_ast):
        graph = build_ngram_graph(COUNT_JAVA, count_java_ast, "java", n=2)
        offsets = {
            int(graph.decode_rel(f.rel)[1:])
            for node in graph.unknowns
            for f in node.known
        }
        assert offsets <= {-1, 1}

    def test_unknown_edges_between_variables(self, count_java_ast):
        graph = build_ngram_graph(COUNT_JAVA, count_java_ast, "java", n=4)
        assert any(n.edges for n in graph.unknowns)

    def test_gold_labels_match_task(self, count_java_ast):
        graph = build_ngram_graph(COUNT_JAVA, count_java_ast, "java", n=4)
        golds = {n.gold for n in graph.unknowns}
        assert {"values", "value", "c", "r"} <= golds


class TestUnuglify:
    def test_fig3_indistinguishable(self):
        """The paper's Fig. 3: the loop and straight-line variants produce
        the same relation multiset for d under single-statement features,
        while AST paths distinguish them."""
        loop_src = """
var d = false;
while (!d) {
  doSomething2();
  if (someCondition()) {
    d = true;
  }
}
"""
        straight_src = """
someCondition();
doSomething2();
var d = false;
d = true;
"""
        def d_relations(source):
            ast = parse_source("javascript", source)
            graph = build_unuglify_graph(ast)
            node = next(n for n in graph.unknowns if n.gold == "d")
            known = sorted((f.rel, f.label) for f in node.known)
            unary = sorted(node.unary)
            return known, unary

        assert d_relations(loop_src) == d_relations(straight_src)

        # AST paths DO distinguish the two programs.
        from repro.core.extraction import ExtractionConfig, PathExtractor
        from repro.tasks.variable_naming import build_crf_graph

        extractor = PathExtractor(ExtractionConfig())
        def d_paths(source):
            ast = parse_source("javascript", source)
            graph = build_crf_graph(ast, extractor)
            node = next(n for n in graph.unknowns if n.gold == "d")
            return sorted(node.unary)

        assert d_paths(loop_src) != d_paths(straight_src)

    def test_relations_never_cross_statements(self, fig1_ast):
        graph = build_unuglify_graph(fig1_ast)
        node = graph.unknowns[0]
        # No relation may span from the while-condition to the assignment;
        # the longest possible in-statement path here is within Assign=.
        assert all("While" not in graph.decode_rel(f.rel) for f in node.known)
        assert all("While" not in graph.decode_rel(r) for r in node.unary)

    def test_in_statement_relations_exist(self, count_java_ast):
        graph = build_unuglify_graph(count_java_ast)
        assert any(n.known or n.edges or n.unary for n in graph.unknowns)


class TestRuleBased:
    def test_for_loop_index(self):
        source = (
            "public class T { void m(java.util.List<Integer> xs) {"
            " for (int i = 0; i < xs.size(); i++) { use(xs.get(i)); } } }"
        )
        ast = parse_source("java", source)
        predictions = rule_based_predictions(ast)
        golds = {b: occ[0].value for b, occ in element_groups(ast).items()}
        index_binding = next(b for b, g in golds.items() if g == "i")
        assert predictions[index_binding] == "i"

    def test_setter_parameter(self):
        source = (
            "public class T { private String name;"
            " public void setName(String x) { this.name = x; } }"
        )
        ast = parse_source("java", source)
        predictions = rule_based_predictions(ast)
        golds = {b: occ[0].value for b, occ in element_groups(ast).items()}
        x_binding = next(b for b, g in golds.items() if g == "x")
        assert predictions[x_binding] == "name"

    def test_catch_exception(self):
        source = (
            "public class T { void m() {"
            " try { f(); } catch (Exception ex) { g(ex); } } }"
        )
        ast = parse_source("java", source)
        predictions = rule_based_predictions(ast)
        golds = {b: occ[0].value for b, occ in element_groups(ast).items()}
        ex_binding = next(b for b, g in golds.items() if g == "ex")
        assert predictions[ex_binding] == "e"

    def test_type_derived_fallback(self):
        source = "public class T { void m(Connection conn) { use(conn); } }"
        ast = parse_source("java", source)
        predictions = rule_based_predictions(ast)
        assert "connection" in {p for p in predictions.values() if p}

    def test_primitive_fallback(self):
        source = "public class T { void m() { boolean b = true; use(b); } }"
        ast = parse_source("java", source)
        assert "flag" in set(rule_based_predictions(ast).values())


class TestW2vBaselines:
    def test_token_contexts_mask_unknowns(self, fig1_ast):
        contexts = token_stream_contexts(FIG1_JS, fig1_ast, "javascript")
        _gold, tokens = next(iter(contexts.values()))
        assert tokens
        assert all("|d" not in t for t in tokens)

    def test_token_contexts_include_keywords(self, fig1_ast):
        contexts = token_stream_contexts(FIG1_JS, fig1_ast, "javascript")
        _gold, tokens = next(iter(contexts.values()))
        assert any(t.endswith("while") for t in tokens)

    def test_token_pairs(self, fig1_ast):
        pairs = token_stream_pairs(FIG1_JS, fig1_ast, "javascript")
        assert pairs and all(w == "d" for w, _ in pairs)

    def test_neighbor_contexts_hide_path(self, fig1_ast):
        contexts = path_neighbor_contexts(fig1_ast)
        _gold, tokens = next(iter(contexts.values()))
        assert tokens
        decoded = [decode_w2v_token(t, DEFAULT_SPACE) for t in tokens]
        assert all(t.startswith("*\x1d") for t in decoded)

    def test_neighbor_contexts_keep_ancestor_kinds(self, fig1_ast):
        contexts = path_neighbor_contexts(fig1_ast)
        _gold, tokens = next(iter(contexts.values()))
        decoded = [decode_w2v_token(t, DEFAULT_SPACE) for t in tokens]
        assert any(t == "*\x1dWhile" for t in decoded)

    def test_neighbor_pairs(self, fig1_ast):
        pairs = path_neighbor_pairs(fig1_ast)
        assert pairs and all(w == "d" for w, _ in pairs)


class TestNaiveType:
    def test_predicts_string_for_every_target(self, count_java_ast):
        predictions = naive_type_predictions(count_java_ast)
        assert predictions
        assert set(predictions.values()) == {NAIVE_TYPE}
